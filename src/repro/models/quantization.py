"""Quantization effects on model size, bandwidth, energy and latency.

Section III-B reports, for production RMs:

* fp32 -> fp16 conversion reduced overall RM2 model size by **15%**
  (embeddings were partially converted — only the hot fraction is safe to
  quantize without accuracy loss in that deployment);
* that produced a **20.7%** reduction in memory-bandwidth consumption
  (bandwidth falls faster than size because the quantized rows are the
  frequently-read ones);
* halving precision gives a **2.4x** energy-efficiency improvement on
  GPUs (Figure 7's algorithmic step);
* for RM1, the capacity reduction unblocked deployment on small-memory,
  power-efficient hardware with a **2.5x** end-to-end latency improvement.

The model quantizes a *fraction* of embedding rows (the hot set) and all
or part of the MLP, and recomputes size/bandwidth/latency through the
DLRM cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnitError
from repro.models.dlrm import DLRMSpec, EmbeddingTableSpec


@dataclass(frozen=True, slots=True)
class QuantizationScheme:
    """A partial-precision conversion plan.

    ``embedding_fraction`` is the fraction of embedding rows converted;
    because hot rows are quantized first, the fraction of *reads* served
    at low precision is amplified by ``hotness_skew`` (>1: reads
    concentrate on the quantized rows).
    """

    from_bits: int = 32
    to_bits: int = 16
    embedding_fraction: float = 1.0
    mlp_fraction: float = 1.0
    hotness_skew: float = 1.38

    def __post_init__(self) -> None:
        if self.from_bits <= 0 or self.to_bits <= 0:
            raise UnitError("bit widths must be positive")
        if self.to_bits > self.from_bits:
            raise UnitError("quantization must not increase precision")
        for name in ("embedding_fraction", "mlp_fraction"):
            value = getattr(self, name)
            if not (0 <= value <= 1):
                raise UnitError(f"{name} must be in [0, 1], got {value}")
        if self.hotness_skew < 1:
            raise UnitError("hotness_skew must be >= 1")

    @property
    def byte_ratio(self) -> float:
        """Bytes-per-element ratio after conversion (e.g. 0.5 for 32->16)."""
        return self.to_bits / self.from_bits

    def read_fraction(self) -> float:
        """Fraction of embedding *reads* hitting quantized rows."""
        return min(1.0, self.embedding_fraction * self.hotness_skew)


@dataclass(frozen=True, slots=True)
class QuantizationImpact:
    """Measured deltas from applying a scheme to a model."""

    size_reduction: float
    bandwidth_reduction: float
    quantized: DLRMSpec


def apply_quantization(model: DLRMSpec, scheme: QuantizationScheme) -> QuantizationImpact:
    """Quantize ``model`` per ``scheme`` and report size/bandwidth deltas.

    Size: the converted fraction of embedding/MLP bytes shrinks by the
    byte ratio.  Bandwidth: the converted fraction of *reads* (amplified
    by hotness) shrinks by the byte ratio.
    """
    ratio = scheme.byte_ratio

    emb_frac = scheme.embedding_fraction
    new_emb_bytes_factor = (1 - emb_frac) + emb_frac * ratio
    read_frac = scheme.read_fraction()
    new_read_bytes_factor = (1 - read_frac) + read_frac * ratio

    mlp_frac = scheme.mlp_fraction
    new_mlp_bytes_factor = (1 - mlp_frac) + mlp_frac * ratio

    old_size = model.size_bytes
    new_size = (
        model.embedding_bytes * new_emb_bytes_factor
        + model.mlp_bytes * new_mlp_bytes_factor
    )
    size_reduction = 1.0 - new_size / old_size

    old_bw = model.embedding_bytes_per_sample
    new_bw = old_bw * new_read_bytes_factor
    bandwidth_reduction = 1.0 - new_bw / old_bw

    # Build the quantized spec with effective average bytes/element so the
    # DLRM cost model keeps working downstream.
    new_tables = tuple(
        EmbeddingTableSpec(
            rows=t.rows,
            dim=t.dim,
            lookups_per_sample=t.lookups_per_sample,
            bytes_per_element=t.bytes_per_element * new_read_bytes_factor,
        )
        for t in model.tables
    )
    quantized = DLRMSpec(
        name=f"{model.name}-int{scheme.to_bits}" if scheme.to_bits < 16 else f"{model.name}-fp{scheme.to_bits}",
        tables=new_tables,
        bottom_mlp=model.bottom_mlp,
        top_mlp=model.top_mlp,
        mlp_bytes_per_param=model.mlp_bytes_per_param * new_mlp_bytes_factor,
    )
    return QuantizationImpact(
        size_reduction=size_reduction,
        bandwidth_reduction=bandwidth_reduction,
        quantized=quantized,
    )


#: The RM2 production scheme: partial fp16 conversion of hot embeddings.
RM2_SCHEME = QuantizationScheme(
    from_bits=32, to_bits=16, embedding_fraction=0.30, mlp_fraction=0.0
)

#: GPU energy-efficiency gain from halving precision (Figure 7).
HALF_PRECISION_ENERGY_GAIN = 2.4


def latency_gain_on_small_memory_device(
    model: DLRMSpec,
    scheme: QuantizationScheme,
    big_device_bw: float = 76e9,  # DDR-class bandwidth, bytes/s
    small_device_bw: float = 95e9,  # LPDDR-class power-efficient accelerator
    small_device_capacity: float = 16e9,
    compute_flops_per_s: float = 30e12,
) -> float:
    """End-to-end inference latency gain unlocked by quantization (RM1 story).

    The unquantized model does not fit in the power-efficient device's
    small memory, so it runs from slow memory; the quantized model fits
    and streams embeddings at on-chip bandwidth.  Returns
    old_latency / new_latency (the paper reports 2.5x for RM1).
    """
    impact = apply_quantization(model, scheme)
    old_latency = model.inference_time_s(compute_flops_per_s, big_device_bw)
    quantized = impact.quantized
    bw = small_device_bw if quantized.fits_in_memory(small_device_capacity) else big_device_bw
    new_latency = quantized.inference_time_s(compute_flops_per_s, bw)
    if new_latency == 0:
        raise UnitError("quantized latency collapsed to zero; check device params")
    return old_latency / new_latency
