"""Embedding-table sharding across training devices (Section IV-B).

"Significant research has gone into algorithmic approaches to efficiently
scale training ... by reducing communication cost via compression,
pipelining, and sharding."  For recommendation models the dominant
sharding problem is placing embedding tables (terabytes) across devices
under a memory cap while balancing load — each training step then pays
an all-to-all exchange of looked-up embeddings.

Provides a greedy balanced-sharding planner, per-step communication
volume, and the end-to-end comparison that links sharding to carbon:
compressed tables (TT-Rec) need fewer devices and move fewer bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import UnitError
from repro.models.dlrm import DLRMSpec


@dataclass(frozen=True)
class ShardingPlan:
    """Assignment of embedding tables to devices."""

    assignments: tuple[int, ...]  # table index -> device index
    device_bytes: np.ndarray
    device_memory_bytes: float

    @property
    def n_devices(self) -> int:
        return len(self.device_bytes)

    @property
    def imbalance(self) -> float:
        """max/mean device load (1.0 = perfectly balanced)."""
        mean = float(np.mean(self.device_bytes))
        if mean == 0:
            return 1.0
        return float(np.max(self.device_bytes)) / mean

    def device_of(self, table_index: int) -> int:
        return self.assignments[table_index]


def shard_tables(
    model: DLRMSpec, device_memory_bytes: float, memory_headroom: float = 0.85
) -> ShardingPlan:
    """Greedy largest-first sharding under a per-device memory cap.

    Tables are placed largest-first onto the least-loaded device that can
    still hold them; new devices open as needed.  This is the standard
    balanced-greedy heuristic production sharders start from.
    """
    if device_memory_bytes <= 0:
        raise UnitError("device memory must be positive")
    if not (0 < memory_headroom <= 1):
        raise UnitError("headroom must be in (0, 1]")
    usable = device_memory_bytes * memory_headroom

    sizes = np.array([t.size_bytes for t in model.tables])
    if np.any(sizes > usable):
        raise UnitError(
            "a table exceeds one device's usable memory; row-wise "
            "sharding (not modeled) would be required"
        )
    order = np.argsort(sizes)[::-1]
    loads: list[float] = [0.0]
    assignment = [0] * len(sizes)
    for idx in order:
        size = float(sizes[idx])
        # Least-loaded device with room.
        candidates = [i for i, load in enumerate(loads) if load + size <= usable]
        if candidates:
            device = min(candidates, key=lambda i: loads[i])
        else:
            loads.append(0.0)
            device = len(loads) - 1
        loads[device] += size
        assignment[int(idx)] = device
    return ShardingPlan(
        assignments=tuple(assignment),
        device_bytes=np.array(loads),
        device_memory_bytes=device_memory_bytes,
    )


def alltoall_bytes_per_step(
    model: DLRMSpec, plan: ShardingPlan, batch_size: int
) -> float:
    """Bytes exchanged per training step in the embedding all-to-all.

    Each device needs every sample's looked-up vectors; a table's lookups
    travel from its host device to all others (forward) and gradients
    return (backward), so each remote lookup crosses the network twice.
    """
    if batch_size <= 0:
        raise UnitError("batch size must be positive")
    n = plan.n_devices
    if n == 1:
        return 0.0
    total = 0.0
    for table in model.tables:
        per_sample = table.bytes_read_per_sample
        remote_fraction = (n - 1) / n  # samples are sharded evenly
        total += 2.0 * per_sample * batch_size * remote_fraction
    return total


@dataclass(frozen=True, slots=True)
class ShardingStudyRow:
    """Devices and communication for one model variant."""

    variant: str
    n_devices: int
    imbalance: float
    alltoall_gb_per_step: float
    step_comm_time_s: float


def sharding_study(
    model: DLRMSpec,
    compressed: DLRMSpec,
    device_memory_bytes: float = 32e9,
    batch_size: int = 8192,
    network_gb_per_s: float = 25.0,
) -> list[ShardingStudyRow]:
    """Uncompressed vs compressed sharding: devices and network time.

    The carbon link: device count drives embodied amortization; per-step
    communication time extends training wall-clock (operational energy).
    """
    if network_gb_per_s <= 0:
        raise UnitError("network bandwidth must be positive")
    rows = []
    for variant, spec in (("uncompressed", model), ("compressed", compressed)):
        plan = shard_tables(spec, device_memory_bytes)
        volume = alltoall_bytes_per_step(spec, plan, batch_size)
        rows.append(
            ShardingStudyRow(
                variant=variant,
                n_devices=plan.n_devices,
                imbalance=plan.imbalance,
                alltoall_gb_per_step=volume / 1e9,
                step_comm_time_s=volume / 1e9 / network_gb_per_s,
            )
        )
    return rows
