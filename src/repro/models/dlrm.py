"""Deep learning recommendation model (DLRM) cost model.

Section III-B: an RM has two sub-nets — a compute-intensive dense MLP
stack and a memory-intensive sparse embedding stack.  The embedding
tables "can easily contribute to over 95% of the total model size" and
dominate inference time for important use cases.

This model captures exactly the quantities the paper's RM analysis needs:
parameter counts and bytes by sub-net, per-sample FLOPs, per-sample
embedding bytes read (memory bandwidth demand), and inference latency on
a device with limited on-chip memory.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import UnitError
from repro.models.flops import mlp_forward_flops, mlp_params


@dataclass(frozen=True, slots=True)
class EmbeddingTableSpec:
    """One sparse-feature embedding table."""

    rows: int
    dim: int
    lookups_per_sample: int = 1
    bytes_per_element: float = 4.0  # fp32 by default

    def __post_init__(self) -> None:
        if min(self.rows, self.dim, self.lookups_per_sample) <= 0:
            raise UnitError("table dimensions and lookups must be positive")
        if self.bytes_per_element <= 0:
            raise UnitError("bytes per element must be positive")

    @property
    def n_params(self) -> int:
        return self.rows * self.dim

    @property
    def size_bytes(self) -> float:
        return self.n_params * self.bytes_per_element

    @property
    def bytes_read_per_sample(self) -> float:
        return self.lookups_per_sample * self.dim * self.bytes_per_element


@dataclass(frozen=True, slots=True)
class DLRMSpec:
    """A recommendation model: embedding tables + bottom/top MLPs."""

    name: str
    tables: tuple[EmbeddingTableSpec, ...]
    bottom_mlp: tuple[int, ...]
    top_mlp: tuple[int, ...]
    mlp_bytes_per_param: float = 4.0

    def __post_init__(self) -> None:
        if not self.tables:
            raise UnitError("a DLRM needs at least one embedding table")
        if self.mlp_bytes_per_param <= 0:
            raise UnitError("MLP bytes per parameter must be positive")

    # -- size --------------------------------------------------------------
    @property
    def embedding_params(self) -> int:
        return sum(t.n_params for t in self.tables)

    @property
    def mlp_params(self) -> int:
        return mlp_params(self.bottom_mlp) + mlp_params(self.top_mlp)

    @property
    def n_params(self) -> int:
        return self.embedding_params + self.mlp_params

    @property
    def embedding_bytes(self) -> float:
        return sum(t.size_bytes for t in self.tables)

    @property
    def mlp_bytes(self) -> float:
        return self.mlp_params * self.mlp_bytes_per_param

    @property
    def size_bytes(self) -> float:
        return self.embedding_bytes + self.mlp_bytes

    @property
    def embedding_size_share(self) -> float:
        """Fraction of total model bytes held in embedding tables (>95%
        for production RMs, per the paper)."""
        return self.embedding_bytes / self.size_bytes

    # -- per-sample cost ----------------------------------------------------
    @property
    def flops_per_sample(self) -> float:
        return mlp_forward_flops(self.bottom_mlp) + mlp_forward_flops(self.top_mlp)

    @property
    def embedding_bytes_per_sample(self) -> float:
        return sum(t.bytes_read_per_sample for t in self.tables)

    def inference_time_s(
        self,
        compute_flops_per_s: float,
        memory_bytes_per_s: float,
        batch_size: int = 1,
    ) -> float:
        """Roofline-style per-batch latency: max of compute and memory time.

        Embedding lookups are bandwidth-bound; MLPs are compute-bound.  The
        slower of the two paths determines latency — for production RMs it
        is the embedding path, which is why quantization's bandwidth
        reduction translates directly to latency (Section III-B).
        """
        if compute_flops_per_s <= 0 or memory_bytes_per_s <= 0:
            raise UnitError("device throughput values must be positive")
        if batch_size <= 0:
            raise UnitError("batch size must be positive")
        compute_time = batch_size * self.flops_per_sample / compute_flops_per_s
        memory_time = batch_size * self.embedding_bytes_per_sample / memory_bytes_per_s
        return max(compute_time, memory_time)

    def fits_in_memory(self, capacity_bytes: float) -> bool:
        """Whether the full model fits on a device with this capacity."""
        if capacity_bytes <= 0:
            raise UnitError("capacity must be positive")
        return self.size_bytes <= capacity_bytes

    def with_tables(self, tables: tuple[EmbeddingTableSpec, ...]) -> "DLRMSpec":
        return replace(self, tables=tables)

    def scaled_embeddings(self, row_factor: float = 1.0, dim_factor: float = 1.0) -> "DLRMSpec":
        """Scale embedding cardinality (rows) and/or dimension of all tables."""
        if row_factor <= 0 or dim_factor <= 0:
            raise UnitError("scale factors must be positive")
        new_tables = tuple(
            EmbeddingTableSpec(
                rows=max(1, round(t.rows * row_factor)),
                dim=max(1, round(t.dim * dim_factor)),
                lookups_per_sample=t.lookups_per_sample,
                bytes_per_element=t.bytes_per_element,
            )
            for t in self.tables
        )
        return self.with_tables(new_tables)


def make_dlrm(
    name: str,
    n_tables: int = 50,
    rows_per_table: int = 5_000_000,
    dim: int = 64,
    lookups_per_sample: int = 40,
    mlp_width: int = 512,
) -> DLRMSpec:
    """Construct a production-shaped DLRM with uniform tables.

    Defaults give a model whose embedding share of bytes is >95%, matching
    the paper's characterization.
    """
    if n_tables <= 0:
        raise UnitError("table count must be positive")
    per_table_lookups = max(1, lookups_per_sample // n_tables)
    tables = tuple(
        EmbeddingTableSpec(rows=rows_per_table, dim=dim, lookups_per_sample=per_table_lookups)
        for _ in range(n_tables)
    )
    dense_in = 13  # classic DLRM dense-feature count
    bottom = (dense_in, mlp_width, mlp_width // 2, dim)
    # Top MLP consumes dim + pairwise interactions (approximated as 2*dim).
    top = (3 * dim, mlp_width, mlp_width // 2, 1)
    return DLRMSpec(name=name, tables=tables, bottom_mlp=bottom, top_mlp=top)
