"""Sparsely-activated (mixture-of-experts) model trade-offs.

Section I and III-D: "While training large, sparsely-activated neural
networks improves model scalability, achieving higher accuracy at lower
operational energy footprint, it can incur higher embodied carbon
footprint from the increase in the system resource requirement."

The Figure-4 data shows it concretely: Switch Transformer (1.5T params,
sparse) emitted far less training carbon than GPT-3 (175B, dense).  This
module quantifies both sides of the trade:

* **operational** — per-token compute touches only the activated experts,
  so training energy scales with *activated* parameters;
* **embodied** — all experts must be resident in accelerator memory, so
  the system (and its manufacturing carbon) scales with *total*
  parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.carbon.embodied import GPU_SERVER_EMBODIED
from repro.carbon.intensity import CarbonIntensity, US_AVERAGE
from repro.core.quantities import Carbon, Energy
from repro.errors import UnitError
from repro.models.flops import TRAIN_FLOPS_PER_PARAM_TOKEN


@dataclass(frozen=True, slots=True)
class SparseModelConfig:
    """A mixture-of-experts model described at the parameter level."""

    name: str
    backbone_params: float  # dense (always-active) parameters
    n_experts: int
    params_per_expert: float
    experts_per_token: int = 1

    def __post_init__(self) -> None:
        if self.backbone_params < 0 or self.params_per_expert <= 0:
            raise UnitError("parameter counts must be positive")
        if self.n_experts <= 0:
            raise UnitError("expert count must be positive")
        if not (1 <= self.experts_per_token <= self.n_experts):
            raise UnitError("experts_per_token must be in [1, n_experts]")

    @property
    def total_params(self) -> float:
        return self.backbone_params + self.n_experts * self.params_per_expert

    @property
    def activated_params(self) -> float:
        return self.backbone_params + self.experts_per_token * self.params_per_expert

    @property
    def sparsity_gain(self) -> float:
        """Total / activated parameters: the compute saving factor."""
        return self.total_params / self.activated_params


def dense_equivalent(config: SparseModelConfig) -> SparseModelConfig:
    """The dense model with the same total parameter count."""
    return SparseModelConfig(
        name=f"{config.name}-dense-equivalent",
        backbone_params=config.total_params,
        n_experts=1,
        params_per_expert=1e-9,
        experts_per_token=1,
    )


@dataclass(frozen=True, slots=True)
class TrainingSystemModel:
    """Hardware sizing and energy for training one model configuration."""

    device_memory_bytes: float = 32e9
    bytes_per_param: float = 16.0  # weights + optimizer state (Adam, fp32)
    devices_per_server: int = 8
    joules_per_flop: float = 1.5e-10  # achieved, system level
    server_embodied: Carbon = GPU_SERVER_EMBODIED
    server_lifetime_hours: float = 4.0 * units.HOURS_PER_YEAR
    training_wall_hours: float = 30.0 * 24.0

    def __post_init__(self) -> None:
        if self.device_memory_bytes <= 0 or self.bytes_per_param <= 0:
            raise UnitError("memory parameters must be positive")
        if self.joules_per_flop <= 0:
            raise UnitError("energy per FLOP must be positive")
        if self.training_wall_hours <= 0 or self.server_lifetime_hours <= 0:
            raise UnitError("durations must be positive")

    def devices_required(self, config: SparseModelConfig) -> int:
        """Accelerators needed to hold the model + optimizer state."""
        bytes_needed = config.total_params * self.bytes_per_param
        return max(1, int(-(-bytes_needed // self.device_memory_bytes)))

    def training_energy(self, config: SparseModelConfig, n_tokens: float) -> Energy:
        """Compute energy for training on ``n_tokens`` tokens."""
        if n_tokens < 0:
            raise UnitError("token count must be non-negative")
        flops = TRAIN_FLOPS_PER_PARAM_TOKEN * config.activated_params * n_tokens
        return Energy.from_joules(flops * self.joules_per_flop)

    def training_embodied(self, config: SparseModelConfig) -> Carbon:
        """Embodied carbon of the servers occupied for the training run."""
        devices = self.devices_required(config)
        servers = -(-devices // self.devices_per_server)
        share = self.training_wall_hours / self.server_lifetime_hours
        return Carbon(self.server_embodied.kg * servers * share)


@dataclass(frozen=True, slots=True)
class SparseVsDenseResult:
    """The trade the paper describes, quantified for one configuration."""

    sparse_operational: Carbon
    dense_operational: Carbon
    sparse_embodied: Carbon
    dense_embodied: Carbon

    @property
    def operational_saving(self) -> float:
        if self.dense_operational.kg == 0:
            return 0.0
        return 1.0 - self.sparse_operational.kg / self.dense_operational.kg

    @property
    def embodied_ratio(self) -> float:
        """Sparse embodied / dense embodied (== 1: same resident memory)."""
        if self.dense_embodied.kg == 0:
            return 0.0
        return self.sparse_embodied.kg / self.dense_embodied.kg

    @property
    def sparse_total(self) -> Carbon:
        return self.sparse_operational + self.sparse_embodied

    @property
    def dense_total(self) -> Carbon:
        return self.dense_operational + self.dense_embodied


def compare_sparse_vs_dense(
    config: SparseModelConfig,
    n_tokens: float = 3e11,
    system: TrainingSystemModel | None = None,
    intensity: CarbonIntensity = US_AVERAGE,
    pue: float = 1.1,
) -> SparseVsDenseResult:
    """Sparse model vs a dense model of equal *total* capacity.

    The dense equivalent activates every parameter per token (k times the
    compute) while occupying the same memory footprint — matching the
    Switch-vs-GPT-3 comparison direction of Figure 4.
    """
    if pue < 1.0:
        raise UnitError("PUE must be >= 1")
    system = system or TrainingSystemModel()
    dense = dense_equivalent(config)

    sparse_energy = system.training_energy(config, n_tokens) * pue
    dense_energy = system.training_energy(dense, n_tokens) * pue
    return SparseVsDenseResult(
        sparse_operational=intensity.emissions(sparse_energy),
        dense_operational=intensity.emissions(dense_energy),
        sparse_embodied=system.training_embodied(config),
        dense_embodied=system.training_embodied(dense),
    )


def compare_vs_quality_matched_dense(
    config: SparseModelConfig,
    n_tokens: float = 3e11,
    quality_matched_params_factor: float = 5.0,
    system: TrainingSystemModel | None = None,
    intensity: CarbonIntensity = US_AVERAGE,
    pue: float = 1.1,
) -> SparseVsDenseResult:
    """Sparse model vs the *smaller* dense model of equal quality.

    This is the paper's embodied-side warning: a sparse model matches the
    quality of a dense model with ``quality_matched_params_factor`` x its
    *activated* parameters (published MoE results place this around
    3-7x), so the dense alternative is far smaller than the sparse
    model's total capacity.  The sparse model still wins operationally
    per token, but must keep every expert resident — a much larger
    (higher-embodied-carbon) system.
    """
    if quality_matched_params_factor <= 0:
        raise UnitError("quality-match factor must be positive")
    system = system or TrainingSystemModel()
    dense = SparseModelConfig(
        name=f"{config.name}-quality-matched-dense",
        backbone_params=config.activated_params * quality_matched_params_factor,
        n_experts=1,
        params_per_expert=1e-9,
        experts_per_token=1,
    )
    sparse_energy = system.training_energy(config, n_tokens) * pue
    dense_energy = system.training_energy(dense, n_tokens) * pue
    return SparseVsDenseResult(
        sparse_operational=intensity.emissions(sparse_energy),
        dense_operational=intensity.emissions(dense_energy),
        sparse_embodied=system.training_embodied(config),
        dense_embodied=system.training_embodied(dense),
    )


#: A Switch-Transformer-shaped configuration: ~1.5T total params, ~10B
#: activated (backbone + one expert per token).
SWITCH_LIKE = SparseModelConfig(
    name="switch-like",
    backbone_params=7e9,
    n_experts=512,
    params_per_expert=2.9e9,
    experts_per_token=1,
)
