"""Model cost models: FLOPs, DLRM, quantization, compression, scaling laws."""

from repro.models.compression import (
    CompressionResult,
    dhe,
    embodied_operational_tradeoff,
    tt_rec,
    uncompressed,
)
from repro.models.dlrm import DLRMSpec, EmbeddingTableSpec, make_dlrm
from repro.models.moe import (
    SparseModelConfig,
    SparseVsDenseResult,
    SWITCH_LIKE,
    TrainingSystemModel,
    compare_sparse_vs_dense,
    compare_vs_quality_matched_dense,
    dense_equivalent,
)
from repro.models.flops import (
    TRANSFORMER_BIG,
    TransformerConfig,
    XLMR_LM,
    device_hours_for_flops,
    mlp_forward_flops,
    mlp_params,
)
from repro.models.sharding import (
    ShardingPlan,
    ShardingStudyRow,
    alltoall_bytes_per_step,
    shard_tables,
    sharding_study,
)
from repro.models.quantization import (
    HALF_PRECISION_ENERGY_GAIN,
    QuantizationImpact,
    QuantizationScheme,
    RM2_SCHEME,
    apply_quantization,
    latency_gain_on_small_memory_device,
)
from repro.models.scaling_laws import (
    BAIDU_AUC_LAW,
    GPT3_BLEU_LAW,
    LogLinearQuality,
    RecommendationScalingLaw,
    pareto_front,
)

__all__ = [
    "BAIDU_AUC_LAW",
    "CompressionResult",
    "DLRMSpec",
    "EmbeddingTableSpec",
    "GPT3_BLEU_LAW",
    "HALF_PRECISION_ENERGY_GAIN",
    "LogLinearQuality",
    "QuantizationImpact",
    "QuantizationScheme",
    "RM2_SCHEME",
    "RecommendationScalingLaw",
    "ShardingPlan",
    "ShardingStudyRow",
    "alltoall_bytes_per_step",
    "shard_tables",
    "sharding_study",
    "SWITCH_LIKE",
    "SparseModelConfig",
    "SparseVsDenseResult",
    "TRANSFORMER_BIG",
    "TrainingSystemModel",
    "compare_sparse_vs_dense",
    "compare_vs_quality_matched_dense",
    "dense_equivalent",
    "TransformerConfig",
    "XLMR_LM",
    "apply_quantization",
    "device_hours_for_flops",
    "dhe",
    "embodied_operational_tradeoff",
    "latency_gain_on_small_memory_device",
    "make_dlrm",
    "mlp_forward_flops",
    "mlp_params",
    "pareto_front",
    "tt_rec",
    "uncompressed",
]
