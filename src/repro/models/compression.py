"""Memory-efficient embedding architectures: TT-Rec and DHE (Section IV-B).

Two published alternatives to raw embedding tables:

* **TT-Rec** (Yin et al., MLSys 2021) — tensor-train factorization of the
  embedding table.  Achieves >100x memory capacity reduction with
  "negligible training time and accuracy trade-off".
* **DHE** (Kang et al., 2021) — Deep Hash Embeddings replace the table
  with hash encodings + a small MLP: near-zero table memory, but extra
  compute per lookup (higher training time).

Both trade memory capacity (embodied carbon: fewer/larger-memory servers)
against compute time (operational carbon), exactly the design-space the
paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import UnitError
from repro.models.dlrm import EmbeddingTableSpec


@dataclass(frozen=True, slots=True)
class CompressionResult:
    """Memory/compute profile of one compressed embedding table."""

    technique: str
    params: float
    memory_reduction: float  # original_params / compressed_params
    lookup_flops: float  # FLOPs to materialize one embedding row
    training_time_factor: float  # relative to uncompressed training


def uncompressed(table: EmbeddingTableSpec) -> CompressionResult:
    """Reference profile of the raw table (lookup is a memory read)."""
    return CompressionResult(
        technique="table",
        params=float(table.n_params),
        memory_reduction=1.0,
        lookup_flops=0.0,
        training_time_factor=1.0,
    )


def tt_rec(
    table: EmbeddingTableSpec, rank: int = 16, n_cores: int = 3
) -> CompressionResult:
    """Tensor-train factorization of an (rows x dim) table.

    Rows and dim are factorized into ``n_cores`` balanced factors; each TT
    core holds r * (row_factor * dim_factor) * r parameters with boundary
    ranks of 1.  Materializing a row chains (n_cores - 1) small matrix
    products.
    """
    if rank <= 0 or n_cores < 2:
        raise UnitError("rank must be positive and n_cores >= 2")
    row_factor = max(2, round(table.rows ** (1.0 / n_cores)))
    dim_factor = max(1, round(table.dim ** (1.0 / n_cores)))

    params = 0.0
    lookup_flops = 0.0
    for core in range(n_cores):
        r_left = 1 if core == 0 else rank
        r_right = 1 if core == n_cores - 1 else rank
        core_params = r_left * row_factor * dim_factor * r_right
        params += core_params
        # Materializing a row: contract cores left-to-right; each step is
        # a (1 x r_left) . (r_left x dim_factor*r_right) product repeated
        # over the accumulated dim factors.
        lookup_flops += 2.0 * r_left * dim_factor * r_right * dim_factor**core

    reduction = table.n_params / params
    # Published result: training time within ~1.1x of the baseline for
    # practical ranks; scale mildly with how aggressive the rank is.
    training_time_factor = 1.0 + min(0.15, 2.0 / rank)
    return CompressionResult(
        technique=f"tt-rec(r={rank})",
        params=params,
        memory_reduction=reduction,
        lookup_flops=lookup_flops,
        training_time_factor=training_time_factor,
    )


def dhe(
    table: EmbeddingTableSpec, n_hashes: int = 1024, mlp_hidden: int = 512, mlp_layers: int = 4
) -> CompressionResult:
    """Deep Hash Embedding: k hash encodings decoded by a small MLP.

    Table memory disappears entirely; each lookup costs a full MLP forward
    pass, and training slows accordingly (the paper: DHE trades training
    time for memory).
    """
    if n_hashes <= 0 or mlp_hidden <= 0 or mlp_layers < 1:
        raise UnitError("DHE parameters must be positive")
    sizes = [n_hashes] + [mlp_hidden] * (mlp_layers - 1) + [table.dim]
    params = float(sum(a * b + b for a, b in zip(sizes[:-1], sizes[1:])))
    lookup_flops = float(sum(2 * a * b for a, b in zip(sizes[:-1], sizes[1:])))
    reduction = table.n_params / params
    # Each embedding access now costs an MLP forward; published DHE runs
    # report meaningfully slower training for large lookup counts.
    training_time_factor = 1.0 + 0.25 * mlp_layers / 4.0
    return CompressionResult(
        technique=f"dhe(k={n_hashes})",
        params=params,
        memory_reduction=reduction,
        lookup_flops=lookup_flops,
        training_time_factor=training_time_factor,
    )


def embodied_operational_tradeoff(
    result: CompressionResult,
    baseline_server_memory_gb: float = 512.0,
    table_bytes: float = 4e9,
    samples_per_training_run: float = 1e10,
    joules_per_flop: float = 2e-10,
) -> dict[str, float]:
    """Quantify the compression trade-off the paper describes.

    Returns the fraction of embedding-server memory freed (a proxy for
    embodied carbon avoided — fewer or cheaper servers) and the extra
    compute energy in kWh per training run (operational carbon added).
    """
    if result.memory_reduction <= 0:
        raise UnitError("memory reduction must be positive")
    freed_bytes = table_bytes * (1.0 - 1.0 / result.memory_reduction)
    memory_freed_fraction = min(1.0, freed_bytes / (baseline_server_memory_gb * 1e9))
    extra_joules = result.lookup_flops * samples_per_training_run * joules_per_flop
    return {
        "memory_freed_fraction": memory_freed_fraction,
        "extra_compute_kwh_per_run": extra_joules / 3.6e6,
        "training_time_factor": result.training_time_factor,
    }
