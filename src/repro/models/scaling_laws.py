"""Scaling laws: model quality versus data, model size, and energy.

Two figures rest on these laws:

* **Figure 2(a)** — model quality grows ~linearly in the *log* of model
  size: GPT-3-family translation needed a 1000x larger model to move BLEU
  from 5 to 40; Baidu's ranking model gained +0.030 AUC from 1000x.
* **Figure 12** — recommendation-model quality (normalized entropy, NE;
  lower is better) follows an additive power law in data size D and model
  (embedding) size M::

      NE(D, M) = NE_inf + a * D^-alpha + b * M^-beta

  while the energy footprint per training step grows sublinearly with
  model size (embedding lookups dominate), ``E_step(M) = e0 * M^gamma``.
  Scaling D and M *in tandem* traces the energy-optimal frontier; scaling
  either alone deviates from it.  The paper's highlighted operating
  points: the "yellow star" (2x data, 2x model) uses ~4x less energy per
  step than the "green star" (8x data, 16x model) for only 0.004 NE
  degradation, and the NE-vs-energy power-law exponent is tiny
  (0.002-0.004) — quality via brute scaling is energy-expensive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CalibrationError, UnitError


# ---------------------------------------------------------------------------
# Figure 2(a): quality vs model size (log-linear)
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class LogLinearQuality:
    """Quality improving linearly per decade of model-size growth."""

    base_quality: float
    gain_per_decade: float
    metric: str = "quality"

    def quality_at(self, size_ratio: float) -> float:
        """Quality at ``size_ratio`` times the base model size."""
        if size_ratio <= 0:
            raise UnitError(f"size ratio must be positive, got {size_ratio}")
        return self.base_quality + self.gain_per_decade * np.log10(size_ratio)

    def size_ratio_for(self, target_quality: float) -> float:
        """Model-size ratio needed to reach ``target_quality``."""
        if self.gain_per_decade <= 0:
            raise CalibrationError("gain per decade must be positive to invert")
        decades = (target_quality - self.base_quality) / self.gain_per_decade
        return float(10.0**decades)


#: GPT-3 translation: BLEU 5 -> 40 across 1000x size (Figure 2a).
GPT3_BLEU_LAW = LogLinearQuality(base_quality=5.0, gain_per_decade=35.0 / 3.0, metric="BLEU")
#: Baidu search ranking: +0.030 AUC across 1000x size.
BAIDU_AUC_LAW = LogLinearQuality(base_quality=0.770, gain_per_decade=0.010, metric="AUC")


# ---------------------------------------------------------------------------
# Figure 12: recommendation NE vs data/model scaling and energy
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class RecommendationScalingLaw:
    """Additive power law for NE plus a per-step energy model.

    ``D`` and ``M`` are expressed as *ratios* to a reference configuration
    (1.0 = today's production data/model size).  Defaults are calibrated
    so the yellow/green star comparison reproduces the paper: ~4x energy
    per step and ~0.004 NE between (2, 2) and (8, 16).
    """

    ne_inf: float = 0.750
    a: float = 0.0125
    alpha: float = 0.15
    b: float = 0.0094
    beta: float = 0.12
    e0_kwh_per_step: float = 1.0e-4
    gamma: float = 2.0 / 3.0

    def __post_init__(self) -> None:
        if min(self.a, self.alpha, self.b, self.beta, self.e0_kwh_per_step, self.gamma) <= 0:
            raise CalibrationError("all scaling-law coefficients must be positive")
        if self.ne_inf <= 0:
            raise CalibrationError("asymptotic NE must be positive")

    def normalized_entropy(self, data_ratio: float, model_ratio: float) -> float:
        """NE at a (data, model) scaling point; lower is better."""
        if data_ratio <= 0 or model_ratio <= 0:
            raise UnitError("scaling ratios must be positive")
        return (
            self.ne_inf
            + self.a * data_ratio**-self.alpha
            + self.b * model_ratio**-self.beta
        )

    def energy_per_step_kwh(self, model_ratio: float) -> float:
        """Per-training-step energy at a model-size ratio (Fig 12 x-axis)."""
        if model_ratio <= 0:
            raise UnitError("model ratio must be positive")
        return self.e0_kwh_per_step * model_ratio**self.gamma

    def total_training_energy_kwh(
        self, data_ratio: float, model_ratio: float, base_steps: float = 1e6
    ) -> float:
        """Total training energy: steps scale with data, cost with model."""
        if data_ratio <= 0:
            raise UnitError("data ratio must be positive")
        return base_steps * data_ratio * self.energy_per_step_kwh(model_ratio)

    # -- sweeps -------------------------------------------------------------
    def model_scaling_curve(
        self, model_ratios: np.ndarray, data_ratio: float = 1.0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Figure 12 blue line: sweep model size at fixed data size.

        Returns (energy-per-step, NE) arrays.
        """
        m = np.asarray(model_ratios, dtype=float)
        energy = np.array([self.energy_per_step_kwh(x) for x in m])
        ne = np.array([self.normalized_entropy(data_ratio, x) for x in m])
        return energy, ne

    def data_scaling_curve(
        self, data_ratios: np.ndarray, model_ratio: float = 1.0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Figure 12 red dashed line: sweep data size at fixed model size."""
        d = np.asarray(data_ratios, dtype=float)
        energy = np.full(len(d), self.energy_per_step_kwh(model_ratio))
        ne = np.array([self.normalized_entropy(x, model_ratio) for x in d])
        return energy, ne

    def tandem_curve(
        self, scales: np.ndarray, model_exponent: float = 4.0 / 3.0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Energy-optimal tandem scaling: D = s, M = s**model_exponent.

        ``model_exponent`` = log(16)/log(8) = 4/3 follows the paper's
        highlighted stars ((2,2) -> (8,16) direction).
        """
        s = np.asarray(scales, dtype=float)
        energy = np.array([self.energy_per_step_kwh(x**model_exponent) for x in s])
        ne = np.array(
            [self.normalized_entropy(x, x**model_exponent) for x in s]
        )
        return energy, ne

    def star_comparison(self) -> dict[str, float]:
        """The yellow-star vs green-star numbers the paper quotes."""
        yellow_ne = self.normalized_entropy(2.0, 2.0)
        green_ne = self.normalized_entropy(8.0, 16.0)
        yellow_e = self.energy_per_step_kwh(2.0)
        green_e = self.energy_per_step_kwh(16.0)
        return {
            "yellow_ne": yellow_ne,
            "green_ne": green_ne,
            "ne_degradation": yellow_ne - green_ne,
            "energy_ratio": green_e / yellow_e,
        }

    def fitted_energy_exponent(
        self, scales: np.ndarray | None = None
    ) -> float:
        """Fit p in NE ∝ E^-p along the tandem frontier.

        The paper: "the power of the power law is extremely small
        (0.002-0.004)".
        """
        if scales is None:
            scales = np.geomspace(1.0, 16.0, 25)
        energy, ne = self.tandem_curve(np.asarray(scales, dtype=float))
        slope = np.polyfit(np.log(energy), np.log(ne), 1)[0]
        return float(-slope)


def pareto_front(points: np.ndarray) -> np.ndarray:
    """Boolean mask of Pareto-optimal rows for (cost, error) minimization.

    ``points`` is (n, 2): column 0 and 1 are both to be minimized.  A point
    is Pareto-optimal if no other point is <= in both coordinates and < in
    at least one.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise UnitError("points must be an (n, 2) array")
    n = len(pts)
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        dominated = (
            (pts[:, 0] <= pts[i, 0])
            & (pts[:, 1] <= pts[i, 1])
            & ((pts[:, 0] < pts[i, 0]) | (pts[:, 1] < pts[i, 1]))
        )
        if np.any(dominated & mask):
            mask[i] = False
    return mask
