"""Library-wide exception types.

A small, flat hierarchy: callers who want to catch *any* library error can
catch :class:`SustainableAIError`; more specific handling is possible via
the subclasses.
"""

from __future__ import annotations


class SustainableAIError(Exception):
    """Base class for all errors raised by this library."""


class UnitError(SustainableAIError, ValueError):
    """A quantity was constructed or combined with invalid units/values."""


class CalibrationError(SustainableAIError, ValueError):
    """A model could not be calibrated to the requested anchors."""


class SimulationError(SustainableAIError, RuntimeError):
    """A simulator reached an invalid state."""


class SchedulingError(SustainableAIError, RuntimeError):
    """A scheduler could not place or shift work under its constraints."""


class TelemetryError(SustainableAIError, RuntimeError):
    """The telemetry subsystem was used incorrectly (e.g. double-start)."""


class RegistryError(SustainableAIError, KeyError):
    """An unknown experiment or catalog entry was requested."""


class InvariantViolation(SustainableAIError, AssertionError):
    """A physical law of the carbon accounting failed on concrete inputs.

    Raised by the invariant registry (:mod:`repro.testing.invariants`) and
    by the runtime self-checks in :mod:`repro.core` when enabled via
    ``SUSTAINABLE_AI_CHECK_INVARIANTS=1`` / ``--check-invariants``.
    """


class InjectedFault(SustainableAIError, RuntimeError):
    """A deliberately injected fault (:mod:`repro.testing.faults`)."""


class ServiceError(SustainableAIError, RuntimeError):
    """The carbon-query service was misconfigured or misused."""


class QueryError(SustainableAIError, ValueError):
    """A service query could not be parsed or validated.

    Maps to an HTTP 400 with a structured error body; raised before any
    execution is scheduled, so a bad query never consumes worker budget.
    """
