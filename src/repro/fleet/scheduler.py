"""A simple GPU-cluster job scheduler for the fleet simulator.

FIFO with backfill over hourly ticks: jobs request a GPU count for a
duration; the scheduler places them when enough GPUs are free, skipping
over blocked jobs when a later, smaller job fits (conservative backfill).
Produces the hourly busy-GPU series that drives energy accounting and the
utilization metrics of Figure 10.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.series import HourlySeries
from repro.errors import SchedulingError, UnitError
from repro.workloads.traces import ExperimentStream


@dataclass(frozen=True, slots=True)
class JobRecord:
    """Placement outcome for one job."""

    job_id: int
    submit_hour: float
    start_hour: float
    end_hour: float
    n_gpus: int

    @property
    def wait_hours(self) -> float:
        return self.start_hour - self.submit_hour

    @property
    def duration_hours(self) -> float:
        return self.end_hour - self.start_hour


@dataclass
class ClusterSchedule:
    """Result of scheduling a job stream onto a fixed GPU pool."""

    records: list[JobRecord]
    busy_gpus: np.ndarray  # hourly busy-GPU counts
    total_gpus: int

    @property
    def mean_utilization(self) -> float:
        return float(np.mean(self.busy_gpus)) / self.total_gpus

    @property
    def peak_utilization(self) -> float:
        return float(np.max(self.busy_gpus)) / self.total_gpus if len(self.busy_gpus) else 0.0

    @property
    def mean_wait_hours(self) -> float:
        if not self.records:
            return 0.0
        return float(np.mean([r.wait_hours for r in self.records]))

    def utilization_series(self) -> np.ndarray:
        return self.busy_gpus / self.total_gpus

    def busy_series(self) -> HourlySeries:
        """The hourly busy-GPU counts as an accounting series."""
        return HourlySeries(self.busy_gpus)


def schedule_fifo(
    stream: ExperimentStream,
    total_gpus: int,
    horizon_hours: int | None = None,
    backfill: bool = True,
) -> ClusterSchedule:
    """Schedule an experiment stream FIFO (+ optional backfill).

    Time advances hour by hour; each hour, completed jobs release GPUs and
    queued jobs are placed in submission order.  With ``backfill``, jobs
    behind a blocked head-of-queue job may start if they fit.

    Jobs that cannot start within ``horizon_hours`` stay queued and are
    absent from the returned records — size the horizon generously when
    full placement matters (the default horizon covers the whole stream).
    """
    if total_gpus <= 0:
        raise UnitError("cluster needs at least one GPU")
    n = len(stream)
    order = np.argsort(stream.start_hours, kind="stable")
    submit = stream.start_hours[order]
    durations = stream.duration_hours[order]
    gpus = stream.n_gpus[order]
    if np.any(gpus > total_gpus):
        raise SchedulingError(
            "a job requests more GPUs than the cluster has; it can never run"
        )

    if horizon_hours is None:
        horizon_hours = int(np.ceil(submit[-1] + durations.sum())) + 1 if n else 1

    free = total_gpus
    releases: list[tuple[float, int]] = []  # (end_hour, gpus) min-heap
    queue: list[int] = []
    next_job = 0
    records: list[JobRecord] = []
    busy = np.zeros(horizon_hours)

    # Event-driven sweep: cluster state only changes at integer hours where
    # a running job has released its GPUs or a new job has been submitted,
    # so the hourly loop skips straight between those events and fills the
    # busy series in constant slices (placements are impossible in between:
    # ``free`` only grows at releases and the queue only grows at submits).
    hour = 0
    while hour < horizon_hours:
        t = float(hour)
        # Release finished jobs.
        while releases and releases[0][0] <= t:
            _, released = heapq.heappop(releases)
            free += released
        # Admit newly submitted jobs to the queue.
        while next_job < n and submit[next_job] <= t:
            queue.append(next_job)
            next_job += 1
        # Place queued jobs.
        placed: list[int] = []
        for pos, job_idx in enumerate(queue):
            need = int(gpus[job_idx])
            if need <= free:
                free -= need
                end = t + float(durations[job_idx])
                heapq.heappush(releases, (end, need))
                records.append(
                    JobRecord(
                        job_id=int(order[job_idx]),
                        submit_hour=float(submit[job_idx]),
                        start_hour=t,
                        end_hour=end,
                        n_gpus=need,
                    )
                )
                placed.append(pos)
            elif not backfill:
                break
        for pos in reversed(placed):
            queue.pop(pos)

        next_hour = horizon_hours
        if releases:
            next_hour = min(next_hour, int(np.ceil(releases[0][0])))
        if next_job < n:
            next_hour = min(next_hour, int(np.ceil(submit[next_job])))
        next_hour = min(max(next_hour, hour + 1), horizon_hours)
        busy[hour:next_hour] = total_gpus - free
        hour = next_hour

    return ClusterSchedule(records=records, busy_gpus=busy, total_gpus=total_gpus)
