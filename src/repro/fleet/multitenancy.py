"""Accelerator virtualization and multi-tenancy (Section IV-C).

"Virtualization and workload consolidation technologies can help maximize
accelerator utilization ... Multi-tenancy for AI accelerators is gaining
traction as an effective way to improve resource utilization, thereby
amortizing the upfront embodied carbon footprint of customized system
hardware for AI at the expense of potential operational carbon footprint
increase."

The model: experimentation workloads, each needing a fraction of a GPU's
compute (Figure 10 shows most use 30-50%), are packed onto shared
accelerators by first-fit-decreasing.  Sharing raises per-device
utilization and cuts device count (embodied win), but co-located tenants
interfere — each tenant's work costs ``1 + interference * (n_tenants-1)``
extra compute (operational cost).  The study sweeps tenancy limits and
reports the net carbon effect.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.carbon.embodied import (
    AmortizationPolicy,
    DEFAULT_LIFETIME_YEARS,
    GPU_SERVER_EMBODIED,
)
from repro.carbon.intensity import CarbonIntensity, US_AVERAGE
from repro.core.quantities import Carbon
from repro.energy.devices import DeviceSpec, V100
from repro.energy.power_model import PowerModel
from repro.errors import UnitError
from repro.fleet.utilization import EXPERIMENTATION_UTILIZATION, UtilizationDistribution


@dataclass(frozen=True)
class PackingResult:
    """Outcome of packing tenant workloads onto shared devices."""

    n_devices: int
    device_loads: np.ndarray
    tenants_per_device: np.ndarray

    @property
    def mean_utilization(self) -> float:
        return float(np.mean(self.device_loads))

    @property
    def mean_tenancy(self) -> float:
        return float(np.mean(self.tenants_per_device))


def _validate_packing_args(
    demands: np.ndarray, max_tenants: int, capacity: float
) -> np.ndarray:
    d = np.asarray(demands, dtype=float)
    if np.any((d <= 0) | (d > 1)):
        raise UnitError("demands must be in (0, 1]")
    if max_tenants <= 0:
        raise UnitError("max tenants must be positive")
    if not (0 < capacity <= 1):
        raise UnitError("capacity must be in (0, 1]")
    return d


def pack_first_fit_decreasing(
    demands: np.ndarray, max_tenants: int = 4, capacity: float = 0.95
) -> PackingResult:
    """First-fit-decreasing packing of fractional-GPU demands.

    ``max_tenants`` = 1 reproduces the dedicated-GPU baseline (one
    workload per device, however small).

    The first-fit scan over open devices is a single vectorized
    feasibility mask per workload (equivalent to, and bit-exact with,
    :func:`_reference_pack_first_fit_decreasing`'s inner Python loop).
    """
    d = _validate_packing_args(demands, max_tenants, capacity)
    order = np.argsort(d)[::-1]
    n = len(d)
    loads = np.zeros(n)
    counts = np.zeros(n, dtype=int)
    n_bins = 0
    for demand in d[order]:
        feasible = (counts[:n_bins] < max_tenants) & (
            loads[:n_bins] + demand <= capacity
        )
        if feasible.any():
            i = int(np.argmax(feasible))
            loads[i] += demand
            counts[i] += 1
        else:
            loads[n_bins] = demand
            counts[n_bins] = 1
            n_bins += 1
    return PackingResult(
        n_devices=n_bins,
        device_loads=loads[:n_bins].copy(),
        tenants_per_device=counts[:n_bins].copy(),
    )


def _reference_pack_first_fit_decreasing(
    demands: np.ndarray, max_tenants: int = 4, capacity: float = 0.95
) -> PackingResult:
    """Pre-vectorization packer (bit-exactness tests only)."""
    d = _validate_packing_args(demands, max_tenants, capacity)
    order = np.argsort(d)[::-1]
    loads: list[float] = []
    counts: list[int] = []
    for demand in d[order]:
        placed = False
        for i in range(len(loads)):
            if counts[i] < max_tenants and loads[i] + demand <= capacity:
                loads[i] += demand
                counts[i] += 1
                placed = True
                break
        if not placed:
            loads.append(float(demand))
            counts.append(1)
    return PackingResult(
        n_devices=len(loads),
        device_loads=np.array(loads),
        tenants_per_device=np.array(counts),
    )


@dataclass(frozen=True, slots=True)
class TenancyStudyRow:
    """Carbon accounting at one tenancy limit."""

    max_tenants: int
    n_devices: int
    mean_utilization: float
    operational: Carbon
    embodied: Carbon

    @property
    def total(self) -> Carbon:
        return self.operational + self.embodied


def tenancy_study(
    n_workloads: int = 2000,
    tenancy_limits: tuple[int, ...] = (1, 2, 4, 8),
    interference: float = 0.06,
    window_hours: float = 24.0 * 30.0,
    device: DeviceSpec = V100,
    devices_per_server: int = 8,
    intensity: CarbonIntensity = US_AVERAGE,
    utilization_dist: UtilizationDistribution = EXPERIMENTATION_UTILIZATION,
    seed: int = 0,
) -> list[TenancyStudyRow]:
    """Sweep tenancy limits and account operational + embodied carbon.

    Demands are drawn from the Figure-10 utilization distribution (each
    experimentation workload only needs its utilization fraction of a
    device).  Interference inflates every tenant's compute demand by
    ``interference`` per co-tenant, raising device-time (operational);
    fewer devices cut the amortized embodied share.
    """
    if not (0 <= interference < 1):
        raise UnitError("interference must be in [0, 1)")
    if window_hours <= 0:
        raise UnitError("window must be positive")
    demands = utilization_dist.sample(n_workloads, seed)
    demands = np.clip(demands, 0.05, 0.95)

    model = PowerModel(device)
    # Wall-clock amortization: residency occupies the server regardless of
    # achieved utilization, so the policy's utilization knob is pinned at 1.
    wall_clock = AmortizationPolicy(
        lifetime_years=DEFAULT_LIFETIME_YEARS, average_utilization=1.0
    )
    embodied_rate = wall_clock.rate_per_utilized_hour(GPU_SERVER_EMBODIED)  # kg/server-hour

    rows = []
    for limit in tenancy_limits:
        packing = pack_first_fit_decreasing(demands, max_tenants=limit)
        # Interference: inflate each device's load by the tenant count.
        inflated = packing.device_loads * (
            1.0 + interference * np.maximum(0, packing.tenants_per_device - 1)
        )
        inflated = np.clip(inflated, 0.0, 1.0)
        watts = model.power_series(inflated)
        kwh = float(np.sum(watts)) * window_hours / 1e3
        operational = Carbon(kwh * intensity.kg_per_kwh)
        servers = packing.n_devices / devices_per_server
        embodied = Carbon(embodied_rate * servers * window_hours)
        rows.append(
            TenancyStudyRow(
                max_tenants=limit,
                n_devices=packing.n_devices,
                mean_utilization=float(np.mean(inflated)),
                operational=operational,
                embodied=embodied,
            )
        )
    return rows


def best_tenancy(rows: list[TenancyStudyRow]) -> TenancyStudyRow:
    """The tenancy limit minimizing total carbon."""
    if not rows:
        raise UnitError("study produced no rows")
    return min(rows, key=lambda r: r.total.kg)
