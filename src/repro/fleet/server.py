"""Server SKUs and instances for the fleet simulator.

The paper (Section III-C): Facebook customizes server SKUs — compute,
memcached, storage tiers and ML accelerators — to maximize performance
and power efficiency.  A :class:`ServerSKU` bundles a host device with
optional accelerators plus embodied carbon; a :class:`Server` is one
physical instance with a utilization state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.carbon.embodied import CPU_SERVER_EMBODIED, GPU_SERVER_EMBODIED
from repro.core.quantities import Carbon, Power
from repro.energy.devices import CPU_SERVER, DeviceSpec, V100, WEB_SERVER, STORAGE_SERVER
from repro.energy.power_model import PowerModel
from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class ServerSKU:
    """One server model: host + accelerators + embodied footprint."""

    name: str
    host: DeviceSpec
    accelerator: DeviceSpec | None = None
    n_accelerators: int = 0
    embodied: Carbon = CPU_SERVER_EMBODIED

    def __post_init__(self) -> None:
        if self.n_accelerators < 0:
            raise UnitError("accelerator count must be non-negative")
        if self.accelerator is None and self.n_accelerators > 0:
            raise UnitError("accelerator count set but no accelerator spec")
        if self.accelerator is not None and self.n_accelerators == 0:
            raise UnitError("accelerator spec set but count is zero")

    def power_at(self, utilization: float) -> Power:
        """Whole-server power at a utilization applied to all silicon."""
        host_power = PowerModel(self.host).power_at(utilization)
        if self.accelerator is None:
            return host_power
        accel_power = PowerModel(self.accelerator).power_at(utilization)
        return host_power + accel_power * self.n_accelerators

    def power_series(self, utilization: np.ndarray) -> np.ndarray:
        """Vectorized whole-server power (watts) for a utilization series."""
        host_watts = PowerModel(self.host).power_series(utilization)
        if self.accelerator is None:
            return host_watts
        accel_watts = PowerModel(self.accelerator).power_series(utilization)
        return host_watts + accel_watts * self.n_accelerators

    @property
    def peak_power(self) -> Power:
        return self.power_at(1.0)

    @property
    def idle_power(self) -> Power:
        return self.power_at(0.0)


#: The fleet SKUs the paper names.
AI_TRAINING_SKU = ServerSKU("ai-training", CPU_SERVER, V100, 8, GPU_SERVER_EMBODIED)
AI_INFERENCE_SKU = ServerSKU("ai-inference", CPU_SERVER, V100, 2, Carbon(1400.0))
WEB_SKU = ServerSKU("web", WEB_SERVER, embodied=Carbon(800.0))
STORAGE_SKU = ServerSKU("storage", STORAGE_SERVER, embodied=Carbon(1200.0))


@dataclass
class Server:
    """One powered server instance with a mutable utilization."""

    sku: ServerSKU
    server_id: int
    utilization: float = 0.0
    powered: bool = True

    def set_utilization(self, utilization: float) -> None:
        if not (0.0 <= utilization <= 1.0):
            raise UnitError(f"utilization must be in [0, 1], got {utilization}")
        self.utilization = utilization

    def current_power(self) -> Power:
        if not self.powered:
            return Power.zero()
        return self.sku.power_at(self.utilization)
