"""GPU utilization distributions across experimentation workflows (Figure 10).

The paper: "A vast majority of model experimentation (over tens of
thousands of training workflows) utilizes GPUs at only 30-50%".

Workflow utilizations are modeled with a Beta distribution whose default
parameters put the mode in the 30-50% band with a thin high-utilization
tail; :func:`utilization_histogram` produces the Figure-10 bars.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class UtilizationDistribution:
    """Beta-distributed per-workflow GPU utilization."""

    alpha: float = 7.0
    beta: float = 9.5

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise UnitError("Beta parameters must be positive")

    @property
    def mean(self) -> float:
        return self.alpha / (self.alpha + self.beta)

    @property
    def mode(self) -> float:
        if self.alpha <= 1:
            return 0.0
        return (self.alpha - 1.0) / (self.alpha + self.beta - 2.0)

    def sample(self, n: int, seed: int = 0) -> np.ndarray:
        if n < 0:
            raise UnitError("sample count must be non-negative")
        rng = np.random.default_rng(seed)
        return rng.beta(self.alpha, self.beta, size=n)

    def fraction_in_band(self, low: float, high: float) -> float:
        """Probability mass of utilization in [low, high]."""
        if not (0 <= low <= high <= 1):
            raise UnitError("band must satisfy 0 <= low <= high <= 1")
        dist = stats.beta(self.alpha, self.beta)
        return float(dist.cdf(high) - dist.cdf(low))

    def fractions_in_bands(
        self, bands: tuple[tuple[float, float], ...]
    ) -> np.ndarray:
        """Probability mass per (low, high) band, in one vectorized pass.

        Builds the frozen scipy distribution once and evaluates its CDF
        over all band edges together; each band's mass is bit-exact with
        a per-band :meth:`fraction_in_band` call (the CDF is an
        elementwise ufunc, so array evaluation matches scalar).
        """
        if not bands:
            return np.empty(0)
        edges = np.asarray(bands, dtype=float)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise UnitError("bands must be (low, high) pairs")
        if np.any(edges[:, 0] > edges[:, 1]) or np.any((edges < 0) | (edges > 1)):
            raise UnitError("band must satisfy 0 <= low <= high <= 1")
        dist = stats.beta(self.alpha, self.beta)
        cdf = dist.cdf(edges)
        return cdf[:, 1] - cdf[:, 0]

    def _reference_fractions_in_bands(
        self, bands: tuple[tuple[float, float], ...]
    ) -> np.ndarray:
        """Per-band scalar loop (bit-exactness tests only)."""
        return np.array([self.fraction_in_band(lo, hi) for lo, hi in bands])


#: Research-cluster experimentation (Figure 10): mode in the 30-50% band.
EXPERIMENTATION_UTILIZATION = UtilizationDistribution(7.0, 9.5)
#: Production training after optimization: pushed toward 60-80%.
OPTIMIZED_TRAINING_UTILIZATION = UtilizationDistribution(8.0, 4.0)


def utilization_histogram(
    dist: UtilizationDistribution = EXPERIMENTATION_UTILIZATION,
    n_workflows: int = 50_000,
    bin_width: float = 0.1,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """(bin lower edges, workflow fraction per bin) for Figure 10."""
    if not (0 < bin_width <= 1):
        raise UnitError("bin width must be in (0, 1]")
    samples = dist.sample(n_workflows, seed)
    edges = np.arange(0.0, 1.0 + bin_width / 2, bin_width)
    counts, _ = np.histogram(samples, bins=edges)
    return edges[:-1], counts / n_workflows
