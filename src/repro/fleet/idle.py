"""Processor idle-state management (Section III-C).

"Static power consumption plays a non-trivial role in the context of the
overall data center electricity footprint.  This motivates more
effective processor idle state management."

Model: a server's idle intervals are exponentially distributed; entering
a deeper C-state saves power but pays a wake-up latency (which both
costs energy and can violate a responsiveness SLO).  An
:class:`IdleGovernor` picks the deepest state whose break-even residency
is shorter than the expected interval — the classic menu-based governor —
and the simulator measures realized savings and SLO violations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.quantities import Energy
from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class CState:
    """One idle state: residual power and transition cost."""

    name: str
    power_fraction: float  # of the shallow-idle power
    wake_latency_ms: float
    entry_energy_j: float = 0.0

    def __post_init__(self) -> None:
        if not (0 <= self.power_fraction <= 1):
            raise UnitError("power fraction must be in [0, 1]")
        if self.wake_latency_ms < 0 or self.entry_energy_j < 0:
            raise UnitError("latency and entry energy must be non-negative")


#: A typical server-class menu (C1 halt .. C6 deep sleep).
DEFAULT_MENU: tuple[CState, ...] = (
    CState("C1", power_fraction=1.00, wake_latency_ms=0.002),
    CState("C1E", power_fraction=0.70, wake_latency_ms=0.01, entry_energy_j=0.001),
    CState("C3", power_fraction=0.45, wake_latency_ms=0.08, entry_energy_j=0.01),
    CState("C6", power_fraction=0.15, wake_latency_ms=0.6, entry_energy_j=0.1),
)


@dataclass(frozen=True, slots=True)
class IdleGovernor:
    """Menu-based governor choosing a C-state per predicted idle interval."""

    menu: tuple[CState, ...] = DEFAULT_MENU
    shallow_idle_watts: float = 140.0
    latency_slo_ms: float = 1.0

    def __post_init__(self) -> None:
        if not self.menu:
            raise UnitError("governor needs at least one idle state")
        if self.shallow_idle_watts <= 0:
            raise UnitError("idle power must be positive")
        if self.latency_slo_ms <= 0:
            raise UnitError("latency SLO must be positive")

    def break_even_ms(self, state: CState) -> float:
        """Minimum residency for ``state`` to save energy vs C1."""
        saved_watts = self.shallow_idle_watts * (1.0 - state.power_fraction)
        if saved_watts <= 0:
            return 0.0
        return state.entry_energy_j / saved_watts * 1e3

    def choose(self, predicted_idle_ms: float) -> CState:
        """Deepest SLO-compliant state with residency past break-even."""
        if predicted_idle_ms < 0:
            raise UnitError("predicted idle must be non-negative")
        best = self.menu[0]
        for state in self.menu:
            if state.wake_latency_ms > self.latency_slo_ms:
                continue
            if predicted_idle_ms >= self.break_even_ms(state) + state.wake_latency_ms:
                if state.power_fraction <= best.power_fraction:
                    best = state
        return best

    def choose_indices(self, predicted_idle_ms: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`choose`: menu index per predicted interval.

        Replays the scalar selection rule over the whole array at once —
        ties resolve to the later menu entry, exactly as ``choose`` does.
        """
        predictions = np.asarray(predicted_idle_ms, dtype=float)
        if np.any(predictions < 0):
            raise UnitError("predicted idle must be non-negative")
        best_idx = np.zeros(len(predictions), dtype=np.intp)
        best_frac = np.full(len(predictions), self.menu[0].power_fraction)
        for index, state in enumerate(self.menu):
            if state.wake_latency_ms > self.latency_slo_ms:
                continue
            eligible = predictions >= self.break_even_ms(state) + state.wake_latency_ms
            better = eligible & (state.power_fraction <= best_frac)
            best_idx[better] = index
            best_frac[better] = state.power_fraction
        return best_idx


@dataclass(frozen=True, slots=True)
class IdleSimResult:
    """Outcome of simulating a governor over an idle-interval stream."""

    baseline_energy: Energy  # always-C1
    governed_energy: Energy
    slo_violations: int
    n_intervals: int
    state_counts: dict[str, int]

    @property
    def energy_saving_fraction(self) -> float:
        if self.baseline_energy.kwh == 0:
            return 0.0
        return 1.0 - self.governed_energy.kwh / self.baseline_energy.kwh

    @property
    def violation_rate(self) -> float:
        return self.slo_violations / self.n_intervals if self.n_intervals else 0.0


def simulate_idle_management(
    governor: IdleGovernor,
    mean_idle_ms: float = 50.0,
    n_intervals: int = 20_000,
    prediction_error: float = 0.3,
    seed: int = 0,
) -> IdleSimResult:
    """Run the governor over exponential idle intervals.

    The governor sees a noisy prediction of each interval (lognormal
    multiplicative error ``prediction_error``); an SLO violation occurs
    when the chosen state's wake latency exceeds the SLO *and* the
    interval ends with a latency-sensitive wake (modeled for every
    interval, conservatively).
    """
    if mean_idle_ms <= 0 or n_intervals <= 0:
        raise UnitError("interval parameters must be positive")
    if prediction_error < 0:
        raise UnitError("prediction error must be non-negative")
    rng = np.random.default_rng(seed)
    intervals = rng.exponential(mean_idle_ms, n_intervals)
    predictions = intervals * rng.lognormal(0.0, prediction_error, n_intervals)

    baseline_j = float(np.sum(intervals)) / 1e3 * governor.shallow_idle_watts

    chosen = governor.choose_indices(predictions)
    power_fracs = np.array([s.power_fraction for s in governor.menu])
    entry_j = np.array([s.entry_energy_j for s in governor.menu])
    wake_ms = np.array([s.wake_latency_ms for s in governor.menu])

    governed_j = float(
        np.sum(
            governor.shallow_idle_watts * power_fracs[chosen] * (intervals / 1e3)
            + entry_j[chosen]
        )
    )
    violations = int(np.sum(wake_ms[chosen] > governor.latency_slo_ms))
    occupancy = np.bincount(chosen, minlength=len(governor.menu))
    # Keyed in order of first use, matching the sequential accumulation.
    counts = {
        governor.menu[index].name: int(occupancy[index])
        for index in dict.fromkeys(chosen.tolist())
    }

    return IdleSimResult(
        baseline_energy=Energy.from_joules(baseline_j),
        governed_energy=Energy.from_joules(governed_j),
        slo_violations=violations,
        n_intervals=n_intervals,
        state_counts=counts,
    )


def idle_saving_sweep(
    mean_idle_ms_values: np.ndarray,
    governor: IdleGovernor | None = None,
    seed: int = 0,
) -> list[tuple[float, float]]:
    """(mean idle, energy saving) curve: longer idles unlock deeper states."""
    governor = governor or IdleGovernor()
    out = []
    for mean_idle in np.asarray(mean_idle_ms_values, dtype=float):
        result = simulate_idle_management(governor, float(mean_idle), seed=seed)
        out.append((float(mean_idle), result.energy_saving_fraction))
    return out
