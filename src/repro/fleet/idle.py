"""Processor idle-state management (Section III-C).

"Static power consumption plays a non-trivial role in the context of the
overall data center electricity footprint.  This motivates more
effective processor idle state management."

Model: a server's idle intervals are exponentially distributed; entering
a deeper C-state saves power but pays a wake-up latency (which both
costs energy and can violate a responsiveness SLO).  An
:class:`IdleGovernor` picks the deepest state whose break-even residency
is shorter than the expected interval — the classic menu-based governor —
and the simulator measures realized savings and SLO violations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.quantities import Energy
from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class CState:
    """One idle state: residual power and transition cost."""

    name: str
    power_fraction: float  # of the shallow-idle power
    wake_latency_ms: float
    entry_energy_j: float = 0.0

    def __post_init__(self) -> None:
        if not (0 <= self.power_fraction <= 1):
            raise UnitError("power fraction must be in [0, 1]")
        if self.wake_latency_ms < 0 or self.entry_energy_j < 0:
            raise UnitError("latency and entry energy must be non-negative")


#: A typical server-class menu (C1 halt .. C6 deep sleep).
DEFAULT_MENU: tuple[CState, ...] = (
    CState("C1", power_fraction=1.00, wake_latency_ms=0.002),
    CState("C1E", power_fraction=0.70, wake_latency_ms=0.01, entry_energy_j=0.001),
    CState("C3", power_fraction=0.45, wake_latency_ms=0.08, entry_energy_j=0.01),
    CState("C6", power_fraction=0.15, wake_latency_ms=0.6, entry_energy_j=0.1),
)


@dataclass(frozen=True, slots=True)
class IdleGovernor:
    """Menu-based governor choosing a C-state per predicted idle interval."""

    menu: tuple[CState, ...] = DEFAULT_MENU
    shallow_idle_watts: float = 140.0
    latency_slo_ms: float = 1.0

    def __post_init__(self) -> None:
        if not self.menu:
            raise UnitError("governor needs at least one idle state")
        if self.shallow_idle_watts <= 0:
            raise UnitError("idle power must be positive")
        if self.latency_slo_ms <= 0:
            raise UnitError("latency SLO must be positive")

    def break_even_ms(self, state: CState) -> float:
        """Minimum residency for ``state`` to save energy vs C1."""
        saved_watts = self.shallow_idle_watts * (1.0 - state.power_fraction)
        if saved_watts <= 0:
            return 0.0
        return state.entry_energy_j / saved_watts * 1e3

    def choose(self, predicted_idle_ms: float) -> CState:
        """Deepest SLO-compliant state with residency past break-even."""
        if predicted_idle_ms < 0:
            raise UnitError("predicted idle must be non-negative")
        best = self.menu[0]
        for state in self.menu:
            if state.wake_latency_ms > self.latency_slo_ms:
                continue
            if predicted_idle_ms >= self.break_even_ms(state) + state.wake_latency_ms:
                if state.power_fraction <= best.power_fraction:
                    best = state
        return best


@dataclass(frozen=True, slots=True)
class IdleSimResult:
    """Outcome of simulating a governor over an idle-interval stream."""

    baseline_energy: Energy  # always-C1
    governed_energy: Energy
    slo_violations: int
    n_intervals: int
    state_counts: dict[str, int]

    @property
    def energy_saving_fraction(self) -> float:
        if self.baseline_energy.kwh == 0:
            return 0.0
        return 1.0 - self.governed_energy.kwh / self.baseline_energy.kwh

    @property
    def violation_rate(self) -> float:
        return self.slo_violations / self.n_intervals if self.n_intervals else 0.0


def simulate_idle_management(
    governor: IdleGovernor,
    mean_idle_ms: float = 50.0,
    n_intervals: int = 20_000,
    prediction_error: float = 0.3,
    seed: int = 0,
) -> IdleSimResult:
    """Run the governor over exponential idle intervals.

    The governor sees a noisy prediction of each interval (lognormal
    multiplicative error ``prediction_error``); an SLO violation occurs
    when the chosen state's wake latency exceeds the SLO *and* the
    interval ends with a latency-sensitive wake (modeled for every
    interval, conservatively).
    """
    if mean_idle_ms <= 0 or n_intervals <= 0:
        raise UnitError("interval parameters must be positive")
    if prediction_error < 0:
        raise UnitError("prediction error must be non-negative")
    rng = np.random.default_rng(seed)
    intervals = rng.exponential(mean_idle_ms, n_intervals)
    predictions = intervals * rng.lognormal(0.0, prediction_error, n_intervals)

    baseline_j = float(np.sum(intervals)) / 1e3 * governor.shallow_idle_watts

    governed_j = 0.0
    violations = 0
    counts: dict[str, int] = {}
    for actual, predicted in zip(intervals, predictions):
        state = governor.choose(float(predicted))
        counts[state.name] = counts.get(state.name, 0) + 1
        residency_s = actual / 1e3
        governed_j += (
            governor.shallow_idle_watts * state.power_fraction * residency_s
            + state.entry_energy_j
        )
        if state.wake_latency_ms > governor.latency_slo_ms:
            violations += 1

    return IdleSimResult(
        baseline_energy=Energy.from_joules(baseline_j),
        governed_energy=Energy.from_joules(governed_j),
        slo_violations=violations,
        n_intervals=n_intervals,
        state_counts=counts,
    )


def idle_saving_sweep(
    mean_idle_ms_values: np.ndarray,
    governor: IdleGovernor | None = None,
    seed: int = 0,
) -> list[tuple[float, float]]:
    """(mean idle, energy saving) curve: longer idles unlock deeper states."""
    governor = governor or IdleGovernor()
    out = []
    for mean_idle in np.asarray(mean_idle_ms_values, dtype=float):
        result = simulate_idle_management(governor, float(mean_idle), seed=seed)
        out.append((float(mean_idle), result.energy_saving_fraction))
    return out
