"""Live carbon-aware fleet loop: streaming feed -> forecast -> autoscale.

The batch studies in this package answer "what would auto-scaling have
saved over a known trace".  This module closes the live loop the paper's
operational story implies: a fleet consumes the tick-level intensity
feed of :mod:`repro.carbon.stream` as it arrives (late data, revisions,
stalls and all), asks the rolling forecast for schedule advice each
hour, defers the deferrable slice of demand on dirty hours, drains the
backlog on clean ones (with a hard per-item deadline), and hands the
realized demand trace to :func:`repro.fleet.autoscale.autoscale_tier`.

Everything is a pure function of :class:`LiveFleetParams`, so outcomes
are deterministic and replayable.  Realized emissions are priced on the
*true* grid trace through :class:`repro.core.series.HourlySeries` — the
single home of the kWh x intensity identity — never multiplied here.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.carbon.stream import (
    StreamSpec,
    advice_at,
    load_profile,
    simulate_tick_trace,
    truth_trace,
)
from repro.core.incremental import IncrementalAccounting
from repro.core.series import HourlySeries
from repro.errors import UnitError
from repro.fleet.autoscale import AutoScalerConfig, autoscale_tier
from repro.fleet.server import ServerSKU, WEB_SKU

#: Residual below which a backlog entry counts as fully drained.
_DRAIN_EPS = 1e-12


@dataclass(frozen=True, slots=True)
class LiveFleetParams:
    """One live fleet run: a stream plus tier and deferral policy."""

    spec: StreamSpec = field(default_factory=StreamSpec)
    tier_size: int = 100
    deferrable_fraction: float = 0.3
    max_defer_hours: int = 12

    def __post_init__(self) -> None:
        if self.tier_size < 1:
            raise UnitError(f"tier_size must be >= 1, got {self.tier_size}")
        if not (0.0 <= self.deferrable_fraction < 1.0):
            raise UnitError("deferrable_fraction must be in [0, 1)")
        if self.max_defer_hours < 1:
            raise UnitError("max_defer_hours must be >= 1")


@dataclass(frozen=True)
class LiveFleetOutcome:
    """Deterministic summary of one live fleet run."""

    hours: int
    baseline_kg: float
    live_kg: float
    saving_fraction: float
    baseline_kwh: float
    live_kwh: float
    deferred_demand_hours: float
    drained_demand_hours: float
    leftover_demand_hours: float
    peak_backlog_demand_hours: float
    defer_decisions: int
    stalled_decisions: int
    forecast_sources: dict[str, int]
    mean_powered_fraction: float
    peak_freed_fraction: float

    def to_payload(self) -> dict[str, object]:
        return {
            "hours": self.hours,
            "baseline_kg": self.baseline_kg,
            "live_kg": self.live_kg,
            "saving_fraction": self.saving_fraction,
            "baseline_kwh": self.baseline_kwh,
            "live_kwh": self.live_kwh,
            "deferred_demand_hours": self.deferred_demand_hours,
            "drained_demand_hours": self.drained_demand_hours,
            "leftover_demand_hours": self.leftover_demand_hours,
            "peak_backlog_demand_hours": self.peak_backlog_demand_hours,
            "defer_decisions": self.defer_decisions,
            "stalled_decisions": self.stalled_decisions,
            "forecast_sources": dict(self.forecast_sources),
            "mean_powered_fraction": self.mean_powered_fraction,
            "peak_freed_fraction": self.peak_freed_fraction,
        }


def run_live_fleet(
    params: LiveFleetParams,
    sku: ServerSKU = WEB_SKU,
    config: AutoScalerConfig | None = None,
) -> LiveFleetOutcome:
    """Drive the autoscaler live against the rolling forecast.

    Hour ``h`` is *decided* once the feed's contiguous observation
    frontier passes it.  On a decision, backlog entries past their
    ``max_defer_hours`` deadline are force-drained first (deadlines beat
    carbon), then the advice either defers the deferrable slice of new
    demand or drains backlog into spare capacity.  The realized relative
    demand trace goes to :func:`autoscale_tier`; both the static baseline
    and the live autoscaled power profile are priced on the true grid.
    """
    spec = params.spec
    cfg = config or AutoScalerConfig()
    ticks = simulate_tick_trace(spec)
    load = load_profile(spec)
    base_demand = load.values / load.peak()
    acct = IncrementalAccounting(load, pue=spec.pue, window_hours=spec.window_hours)

    hours = spec.hours
    realized = np.zeros(hours)
    backlog: deque[list[float]] = deque()  # [hour_added, remaining_amount]
    backlog_total = 0.0
    deferred = drained = peak_backlog = 0.0
    defer_decisions = stalled_decisions = 0
    sources: dict[str, int] = {}
    decided = 0

    def _drain_into(serve: float, hour: int, forced_only: bool) -> float:
        nonlocal backlog_total, drained
        while backlog and serve < 1.0 - _DRAIN_EPS:
            entry = backlog[0]
            if forced_only and (hour - entry[0]) < params.max_defer_hours:
                break
            take = min(entry[1], 1.0 - serve)
            entry[1] -= take
            serve += take
            backlog_total -= take
            drained += take
            if entry[1] <= _DRAIN_EPS:
                backlog.popleft()
        return serve

    for tick in ticks:
        acct.fold(tick.hour, tick.intensity_kg_per_kwh)
        while decided < acct.contiguous_hours:
            h = decided
            advice = advice_at(spec, acct, tick.emit_slot)
            sources[advice.forecast_source] = sources.get(advice.forecast_source, 0) + 1
            if advice.stalled:
                stalled_decisions += 1
            serve = float(base_demand[h])
            serve = _drain_into(serve, h, forced_only=True)
            if advice.defer_recommended and params.deferrable_fraction > 0.0:
                amount = params.deferrable_fraction * float(base_demand[h])
                serve -= amount
                backlog.append([float(h), amount])
                backlog_total += amount
                deferred += amount
                defer_decisions += 1
            else:
                serve = _drain_into(serve, h, forced_only=False)
            realized[h] = serve
            peak_backlog = max(peak_backlog, backlog_total)
            decided += 1

    realized = np.clip(realized, 0.0, 1.0)
    live = autoscale_tier(realized, params.tier_size, sku, cfg)
    baseline = autoscale_tier(base_demand, params.tier_size, sku, cfg)
    truth = truth_trace(spec)
    assert baseline.static_watts is not None and live.autoscaled_watts is not None
    baseline_series = HourlySeries.from_power_watts(baseline.static_watts).scale(spec.pue)
    live_series = HourlySeries.from_power_watts(live.autoscaled_watts).scale(spec.pue)
    baseline_kg = baseline_series.emissions(truth).kg
    live_kg = live_series.emissions(truth).kg
    saving = 1.0 - live_kg / baseline_kg if baseline_kg > 0.0 else 0.0
    return LiveFleetOutcome(
        hours=hours,
        baseline_kg=baseline_kg,
        live_kg=live_kg,
        saving_fraction=saving,
        baseline_kwh=baseline_series.total(),
        live_kwh=live_series.total(),
        deferred_demand_hours=deferred,
        drained_demand_hours=drained,
        leftover_demand_hours=backlog_total,
        peak_backlog_demand_hours=peak_backlog,
        defer_decisions=defer_decisions,
        stalled_decisions=stalled_decisions,
        forecast_sources=sources,
        mean_powered_fraction=float(np.mean(live.powered_servers)) / params.tier_size,
        peak_freed_fraction=live.peak_freed_fraction,
    )


__all__ = ["LiveFleetParams", "LiveFleetOutcome", "run_live_fleet"]
