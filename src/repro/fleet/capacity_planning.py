"""AI capacity planning and the efficiency of scale (Section III-C).

Two at-scale effects the paper describes, made computable:

* **growth → embodied carbon**: translating the 2.9x/2.5x AI capacity
  growth into servers bought per year, their manufacturing carbon, and
  the datacenter building embodied carbon per MW provisioned;
* **efficiency of scale**: "higher throughput performance density
  achieved with ML accelerators reduces the total number of processors
  deployed ... more effective amortization of shared infrastructure
  overheads" — fewer, denser servers for the same delivered throughput
  means less embodied carbon per unit of AI work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.quantities import Carbon, Power
from repro.errors import UnitError
from repro.fleet.server import AI_TRAINING_SKU, ServerSKU
from repro.workloads.growthtrends import GrowthTrend, TRAINING_CAPACITY_GROWTH

#: Embodied carbon of datacenter construction per MW of IT capacity
#: (building shell, power distribution, cooling plant; public LCA studies
#: put this at hundreds of tonnes per MW).
BUILDING_EMBODIED_PER_MW = Carbon.from_tonnes(600.0)


@dataclass(frozen=True, slots=True)
class CapacityPlan:
    """Year-by-year fleet buildout for a growing AI capacity demand."""

    years: np.ndarray
    servers_total: np.ndarray
    servers_added: np.ndarray
    it_power_mw: np.ndarray
    server_embodied: np.ndarray  # kg added per year
    building_embodied: np.ndarray  # kg added per year

    def total_embodied(self) -> Carbon:
        return Carbon(
            float(np.sum(self.server_embodied) + np.sum(self.building_embodied))
        )

    def embodied_in_year(self, index: int) -> Carbon:
        return Carbon(
            float(self.server_embodied[index] + self.building_embodied[index])
        )


def plan_capacity(
    initial_servers: int = 10_000,
    horizon_years: int = 4,
    growth: GrowthTrend = TRAINING_CAPACITY_GROWTH,
    sku: ServerSKU = AI_TRAINING_SKU,
    replacement_rate: float = 0.0,
) -> CapacityPlan:
    """Servers, power, and embodied carbon for a growth trajectory.

    ``replacement_rate`` adds end-of-life replacements (fraction of the
    installed base re-bought each year) on top of growth purchases.
    """
    if initial_servers <= 0 or horizon_years <= 0:
        raise UnitError("plan needs servers and a horizon")
    if not (0 <= replacement_rate <= 1):
        raise UnitError("replacement rate must be in [0, 1]")

    years = np.arange(horizon_years + 1)
    totals = initial_servers * growth.values_at(years)
    added = np.diff(totals, prepend=totals[0])
    added[0] = 0.0
    replacements = totals * replacement_rate
    replacements[0] = 0.0
    purchased = added + replacements

    peak_watts = sku.peak_power.watts
    it_power_mw = totals * peak_watts / 1e6
    power_added_mw = np.diff(it_power_mw, prepend=it_power_mw[0])
    power_added_mw[0] = 0.0

    return CapacityPlan(
        years=years,
        servers_total=totals,
        servers_added=purchased,
        it_power_mw=it_power_mw,
        server_embodied=purchased * sku.embodied.kg,
        building_embodied=power_added_mw * BUILDING_EMBODIED_PER_MW.kg,
    )


def _reference_capacity_totals(
    initial_servers: int, years: np.ndarray, growth: GrowthTrend
) -> np.ndarray:
    """Pre-vectorization per-year totals loop (bit-exactness tests only)."""
    return np.array([initial_servers * growth.value_at(float(y)) for y in years])


@dataclass(frozen=True, slots=True)
class ConsolidationResult:
    """CPU fleet vs accelerator fleet for the same delivered throughput."""

    cpu_servers: int
    accelerator_servers: int
    cpu_embodied: Carbon
    accelerator_embodied: Carbon
    cpu_power: Power
    accelerator_power: Power

    @property
    def server_reduction(self) -> float:
        return 1.0 - self.accelerator_servers / self.cpu_servers

    @property
    def embodied_saving(self) -> float:
        if self.cpu_embodied.kg == 0:
            return 0.0
        return 1.0 - self.accelerator_embodied.kg / self.cpu_embodied.kg


def consolidation_study(
    required_tflops: float = 100_000.0,
    cpu_sku: ServerSKU | None = None,
    accel_sku: ServerSKU = AI_TRAINING_SKU,
    cpu_tflops_per_server: float = 3.0,
) -> ConsolidationResult:
    """Efficiency of scale: deliver a throughput on CPUs vs accelerators.

    Accelerator throughput per server comes from its device specs; the
    CPU fleet needs many more boxes, paying more embodied carbon and more
    power for the same work.
    """
    if required_tflops <= 0 or cpu_tflops_per_server <= 0:
        raise UnitError("throughput parameters must be positive")
    from repro.fleet.server import ServerSKU as _SKU
    from repro.energy.devices import CPU_SERVER

    cpu_sku = cpu_sku or _SKU("cpu-compute", CPU_SERVER, embodied=Carbon(1000.0))

    if accel_sku.accelerator is None:
        raise UnitError("accelerator SKU must carry accelerators")
    accel_tflops = accel_sku.accelerator.peak_tflops * accel_sku.n_accelerators

    cpu_servers = int(np.ceil(required_tflops / cpu_tflops_per_server))
    accel_servers = int(np.ceil(required_tflops / accel_tflops))
    return ConsolidationResult(
        cpu_servers=cpu_servers,
        accelerator_servers=accel_servers,
        cpu_embodied=cpu_sku.embodied * cpu_servers,
        accelerator_embodied=accel_sku.embodied * accel_servers,
        cpu_power=cpu_sku.peak_power * cpu_servers,
        accelerator_power=accel_sku.peak_power * accel_servers,
    )
