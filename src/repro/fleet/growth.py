"""Fleet growth dynamics and Jevons' paradox (Figures 6 and 8).

Section III-B: "we reduce the power footprint across the machine learning
hardware-software stack by 20% every 6 months.  But at the same time, AI
infrastructure continued to scale out.  The net effect, with Jevons'
Paradox, is a 28.5% operational power footprint reduction over two
years."

The model: operational power at half-year step ``t`` is::

    P(t) = P0 * demand(t) * efficiency(t)

where efficiency compounds (1 - gain) per half and demand compounds its
own per-half growth.  The paper's numbers pin both rates: 0.8^4 = 0.41
efficiency factor over 4 halves and a net 0.715 power factor imply
demand grew ~1.75x over the same two years.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CalibrationError, UnitError

#: Per-half-year operational power reduction from cross-stack optimization.
EFFICIENCY_GAIN_PER_HALF = 0.20
#: Net two-year operational power reduction the paper reports (Figure 8).
NET_TWO_YEAR_REDUCTION = 0.285


def implied_demand_growth(
    efficiency_gain_per_half: float = EFFICIENCY_GAIN_PER_HALF,
    net_reduction: float = NET_TWO_YEAR_REDUCTION,
    halves: int = 4,
) -> float:
    """Per-half demand growth implied by the efficiency and net numbers.

    Solves ``(1 - gain)^halves * g^halves = 1 - net_reduction`` for ``g``.
    """
    if not (0 <= efficiency_gain_per_half < 1):
        raise CalibrationError("efficiency gain must be in [0, 1)")
    if not (0 <= net_reduction < 1):
        raise CalibrationError("net reduction must be in [0, 1)")
    if halves <= 0:
        raise CalibrationError("halves must be positive")
    total = (1.0 - net_reduction) / (1.0 - efficiency_gain_per_half) ** halves
    return float(total ** (1.0 / halves))


@dataclass(frozen=True, slots=True)
class JevonsModel:
    """Compounding efficiency gains against compounding demand growth."""

    efficiency_gain_per_half: float = EFFICIENCY_GAIN_PER_HALF
    demand_growth_per_half: float | None = None

    def __post_init__(self) -> None:
        if not (0 <= self.efficiency_gain_per_half < 1):
            raise UnitError("efficiency gain must be in [0, 1)")
        if self.demand_growth_per_half is not None and self.demand_growth_per_half <= 0:
            raise UnitError("demand growth must be positive")

    def _demand_growth(self) -> float:
        if self.demand_growth_per_half is not None:
            return self.demand_growth_per_half
        return implied_demand_growth(self.efficiency_gain_per_half)

    def power_trajectory(self, halves: int = 4) -> np.ndarray:
        """Relative operational power at each half-year step (index 0 = 1.0)."""
        if halves < 0:
            raise UnitError("halves must be non-negative")
        t = np.arange(halves + 1)
        eff = (1.0 - self.efficiency_gain_per_half) ** t
        demand = self._demand_growth() ** t
        return eff * demand

    def counterfactual_trajectory(self, halves: int = 4) -> np.ndarray:
        """Power had no optimization happened (demand growth only)."""
        t = np.arange(halves + 1)
        return self._demand_growth() ** t

    def net_reduction(self, halves: int = 4) -> float:
        """Fractional power reduction relative to the starting point."""
        return 1.0 - float(self.power_trajectory(halves)[-1])

    def avoided_power_fraction(self, halves: int = 4) -> float:
        """Power avoided relative to the no-optimization counterfactual."""
        actual = float(self.power_trajectory(halves)[-1])
        counter = float(self.counterfactual_trajectory(halves)[-1])
        return 1.0 - actual / counter


@dataclass(frozen=True, slots=True)
class OptimizationArea:
    """One of the four Figure-6 optimization areas with per-half gains.

    Gains are fractional power reductions contributed by the area in each
    half-year period; areas compose multiplicatively within a half.
    """

    name: str
    gains_per_half: tuple[float, ...]

    def __post_init__(self) -> None:
        for g in self.gains_per_half:
            if not (0 <= g < 1):
                raise UnitError(f"area gain must be in [0, 1), got {g}")


#: Figure 6's four areas over four halves (H2'19 .. H1'21).  Individual
#: contributions vary by half; each half composes to ~20% total.
FIG6_AREAS: tuple[OptimizationArea, ...] = (
    OptimizationArea("model", (0.070, 0.055, 0.065, 0.080)),
    OptimizationArea("platform", (0.050, 0.060, 0.045, 0.040)),
    OptimizationArea("infrastructure", (0.045, 0.050, 0.055, 0.045)),
    OptimizationArea("hardware", (0.050, 0.050, 0.050, 0.050)),
)


def _validate_areas(areas: tuple[OptimizationArea, ...]) -> int:
    if not areas:
        raise CalibrationError("need at least one optimization area")
    n_halves = len(areas[0].gains_per_half)
    for area in areas:
        if len(area.gains_per_half) != n_halves:
            raise CalibrationError("all areas must cover the same halves")
    return n_halves


def composed_half_gains(areas: tuple[OptimizationArea, ...] = FIG6_AREAS) -> np.ndarray:
    """Total per-half power reduction from composing all areas.

    Within one half, area gains compose multiplicatively:
    ``1 - prod(1 - gain_area)``.  ``multiply.reduce`` over the stacked
    area axis multiplies in the same sequential order as the former
    per-area loop, so the composition is bit-exact with
    :func:`_reference_composed_half_gains`.
    """
    _validate_areas(areas)
    gains = np.array([area.gains_per_half for area in areas], dtype=float)
    return 1.0 - np.multiply.reduce(1.0 - gains, axis=0)


def _reference_composed_half_gains(
    areas: tuple[OptimizationArea, ...] = FIG6_AREAS,
) -> np.ndarray:
    """Pre-vectorization per-area loop (bit-exactness tests only)."""
    n_halves = _validate_areas(areas)
    remaining = np.ones(n_halves)
    for area in areas:
        remaining *= 1.0 - np.asarray(area.gains_per_half)
    return 1.0 - remaining


def average_half_gain(areas: tuple[OptimizationArea, ...] = FIG6_AREAS) -> float:
    """Mean per-half total reduction (the paper's 'average of 20%')."""
    return float(np.mean(composed_half_gains(areas)))
