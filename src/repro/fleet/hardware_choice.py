"""General-purpose vs specialized hardware for AI (Section IV-C).

"There is a wide variety of system hardware choices for AI from
general-purpose processors (CPUs), general-purpose accelerators (GPUs or
TPUs), FPGAs, to ASICs ... While ML accelerator deployment brings a
step-function improvement in operational energy efficiency, it may not
necessarily reduce the carbon footprint of AI computing overall ...
the optimal point depends on the compounding factor of operational
efficiency improvement over generations of ML algorithms/models,
deployment lifetime and embodied carbon footprint."

Model: each platform has an operational efficiency (work per kWh), an
embodied cost, and a *flexibility* penalty — when the ML algorithm
generation churns (every ``algorithm_cadence_years``), an inflexible
platform loses a fraction of its efficiency advantage (kernels no longer
fit the silicon) until replaced.  Total carbon per unit of work over a
deployment lifetime then has a platform-dependent optimum, and the
break-even lifetime between platforms is computable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.carbon.intensity import CarbonIntensity, US_AVERAGE
from repro.core.quantities import Carbon
from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class PlatformChoice:
    """One hardware platform's efficiency/flexibility/embodied profile."""

    name: str
    relative_efficiency: float  # work per kWh relative to the CPU baseline
    embodied: Carbon
    flexibility: float  # fraction of efficiency retained per algorithm churn
    power_kw: float

    def __post_init__(self) -> None:
        if self.relative_efficiency <= 0 or self.power_kw <= 0:
            raise UnitError("efficiency and power must be positive")
        if not (0 < self.flexibility <= 1):
            raise UnitError("flexibility must be in (0, 1]")


#: Representative platforms.  Efficiency multipliers follow the published
#: step functions (GPU ~10x CPU for dense ML, ASIC ~3-5x GPU on its target
#: workload); flexibility falls with specialization.
CPU_PLATFORM = PlatformChoice("CPU", 1.0, Carbon(1000.0), 1.00, power_kw=0.4)
GPU_PLATFORM = PlatformChoice("GPU", 10.0, Carbon(2000.0), 0.92, power_kw=2.8)
FPGA_PLATFORM = PlatformChoice("FPGA", 6.0, Carbon(1800.0), 0.97, power_kw=1.2)
#: The ASIC's flexibility reflects fixed-function silicon: each algorithm
#: generation that no longer matches its dataflow halves the remaining
#: advantage (Eyeriss-style accelerators against post-CNN workloads).
ASIC_PLATFORM = PlatformChoice("ASIC", 35.0, Carbon(2600.0), 0.50, power_kw=2.4)

ALL_PLATFORMS: tuple[PlatformChoice, ...] = (
    CPU_PLATFORM,
    GPU_PLATFORM,
    FPGA_PLATFORM,
    ASIC_PLATFORM,
)


def effective_efficiency(
    platform: PlatformChoice, years: float, algorithm_cadence_years: float = 1.5
) -> float:
    """Efficiency after algorithm generations erode specialization.

    Each churn multiplies the platform's efficiency *advantage over CPU*
    by its flexibility factor; a fully flexible platform (CPU) never
    degrades.
    """
    if years < 0:
        raise UnitError("years must be non-negative")
    if algorithm_cadence_years <= 0:
        raise UnitError("algorithm cadence must be positive")
    churns = years / algorithm_cadence_years
    advantage = platform.relative_efficiency - 1.0
    return 1.0 + advantage * platform.flexibility**churns


def carbon_per_exawork(
    platform: PlatformChoice,
    lifetime_years: float,
    intensity: CarbonIntensity = US_AVERAGE,
    algorithm_cadence_years: float = 1.5,
    baseline_kwh_per_work: float = 1.0,
) -> float:
    """kgCO2e per normalized unit of work, averaged over the lifetime.

    Work delivered per year follows the platform's (decaying) effective
    efficiency at its rated power; embodied carbon amortizes over all
    work delivered during the deployment.
    """
    if lifetime_years <= 0:
        raise UnitError("lifetime must be positive")
    years = np.linspace(0.0, lifetime_years, 48)
    eff = np.array(
        [effective_efficiency(platform, y, algorithm_cadence_years) for y in years]
    )
    # Work per year ∝ efficiency; energy per year is constant (always-on).
    annual_kwh = platform.power_kw * units.HOURS_PER_YEAR
    annual_work = annual_kwh * eff / baseline_kwh_per_work
    total_work = float(np.trapezoid(annual_work, years))
    total_operational = intensity.kg_per_kwh * annual_kwh * lifetime_years
    if total_work <= 0:
        raise UnitError("platform delivers no work")
    return (total_operational + platform.embodied.kg) / total_work


def platform_ranking(
    lifetime_years: float,
    intensity: CarbonIntensity = US_AVERAGE,
    algorithm_cadence_years: float = 1.5,
    platforms: tuple[PlatformChoice, ...] = ALL_PLATFORMS,
) -> list[tuple[str, float]]:
    """(platform, kg per unit work) best-first at a deployment lifetime."""
    scored = [
        (p.name, carbon_per_exawork(p, lifetime_years, intensity, algorithm_cadence_years))
        for p in platforms
    ]
    return sorted(scored, key=lambda pair: pair[1])


def break_even_lifetime(
    specialized: PlatformChoice,
    general: PlatformChoice,
    intensity: CarbonIntensity = US_AVERAGE,
    algorithm_cadence_years: float = 1.5,
    max_years: float = 12.0,
) -> float | None:
    """Lifetime beyond which the general platform beats the specialized one.

    With fast algorithm churn, the ASIC's eroding advantage eventually
    loses to the GPU's flexibility; returns None if no crossover occurs
    within ``max_years`` (the specialized platform stays ahead).
    """
    if max_years <= 0:
        raise UnitError("max years must be positive")
    for years in np.linspace(0.5, max_years, 47):
        spec = carbon_per_exawork(specialized, float(years), intensity, algorithm_cadence_years)
        gen = carbon_per_exawork(general, float(years), intensity, algorithm_cadence_years)
        if gen < spec:
            return float(years)
    return None
