"""Auto-scaling: freeing over-provisioned capacity off-peak (Section III-C).

The paper: "For data center fleets ... where the actual server utilization
exhibits a diurnal pattern, Auto-Scaling frees the over-provisioned
capacity during off-peak hours, by up to 25% of the web tier's machines
... it provides opportunistic server capacity for others to use,
including offline ML training."

The auto-scaler maps an hourly demand trace to the number of powered
servers, keeping a headroom margin above instantaneous demand.  Freed
capacity can be handed to an opportunistic consumer (offline training),
raising fleet-level utilization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.quantities import Energy
from repro.energy.meter import integrate_power_hours
from repro.errors import UnitError
from repro.fleet.server import ServerSKU, WEB_SKU


@dataclass(frozen=True, slots=True)
class AutoScalerConfig:
    """Headroom and floor policy for the auto-scaler."""

    headroom: float = 0.15
    min_powered_fraction: float = 0.40
    target_server_utilization: float = 0.75

    def __post_init__(self) -> None:
        if self.headroom < 0:
            raise UnitError("headroom must be non-negative")
        if not (0 < self.min_powered_fraction <= 1):
            raise UnitError("min powered fraction must be in (0, 1]")
        if not (0 < self.target_server_utilization <= 1):
            raise UnitError("target utilization must be in (0, 1]")


@dataclass(frozen=True)
class AutoScaleResult:
    """Hourly outcome of auto-scaling a tier against a demand trace.

    ``static_watts`` / ``autoscaled_watts`` are the hourly tier power
    profiles behind the two energy totals — retained so callers can
    price the same profiles on a *time-varying* grid (the live fleet
    loop in :mod:`repro.fleet.livesim`), not just integrate them.
    """

    powered_servers: np.ndarray
    freed_servers: np.ndarray
    tier_size: int
    static_energy: Energy
    autoscaled_energy: Energy
    static_watts: np.ndarray | None = None
    autoscaled_watts: np.ndarray | None = None

    @property
    def peak_freed_fraction(self) -> float:
        """Largest fraction of the tier freed in any hour (paper: ~25%)."""
        return float(np.max(self.freed_servers)) / self.tier_size

    @property
    def mean_freed_fraction(self) -> float:
        return float(np.mean(self.freed_servers)) / self.tier_size

    @property
    def energy_saving_fraction(self) -> float:
        saved = self.static_energy.kwh - self.autoscaled_energy.kwh
        return saved / self.static_energy.kwh if self.static_energy.kwh else 0.0


def autoscale_tier(
    demand: np.ndarray,
    tier_size: int,
    sku: ServerSKU = WEB_SKU,
    config: AutoScalerConfig | None = None,
) -> AutoScaleResult:
    """Auto-scale a serving tier against an hourly relative-demand trace.

    ``demand`` is relative demand in (0, 1]; the tier is provisioned for
    peak demand = 1.0 at the target per-server utilization.  Without
    auto-scaling every server stays powered at demand-proportional
    utilization; with it, off-peak servers are powered down and the rest
    run at the target utilization.
    """
    config = config or AutoScalerConfig()
    d = np.asarray(demand, dtype=float)
    if np.any(d < 0) or np.any(d > 1):
        raise UnitError("demand must be a relative trace in [0, 1]")
    if tier_size <= 0:
        raise UnitError("tier size must be positive")

    # Servers needed: demand (in units of tier peak) with headroom, at the
    # target per-server utilization, floored by the policy minimum.
    needed = np.ceil(d * (1.0 + config.headroom) * tier_size).astype(int)
    floor = int(np.ceil(config.min_powered_fraction * tier_size))
    powered = np.clip(needed, floor, tier_size)
    freed = tier_size - powered

    # Static provisioning: all servers powered; utilization follows demand
    # scaled so that peak demand hits the target utilization.
    static_util = d * config.target_server_utilization
    static_watts = np.array([sku.power_at(float(u)).watts for u in static_util]) * tier_size

    # Auto-scaled: powered servers carry the same total work, so their
    # per-server utilization is higher (capped at 1.0).
    total_work = d * config.target_server_utilization * tier_size
    with np.errstate(divide="ignore", invalid="ignore"):
        auto_util = np.where(powered > 0, np.minimum(1.0, total_work / powered), 0.0)
    auto_watts = np.array(
        [sku.power_at(float(u)).watts * int(n) for u, n in zip(auto_util, powered)]
    )

    return AutoScaleResult(
        powered_servers=powered,
        freed_servers=freed,
        tier_size=tier_size,
        static_energy=integrate_power_hours(static_watts),
        autoscaled_energy=integrate_power_hours(auto_watts),
        static_watts=static_watts,
        autoscaled_watts=auto_watts,
    )


def opportunistic_training_hours(result: AutoScaleResult, gpus_per_server: int = 0) -> float:
    """Server-hours (or GPU-hours) handed to offline training by freeing.

    With ``gpus_per_server`` == 0 the freed capacity is CPU server-hours;
    otherwise freed servers are counted as GPU-hours.
    """
    server_hours = float(np.sum(result.freed_servers))
    if gpus_per_server < 0:
        raise UnitError("gpus_per_server must be non-negative")
    return server_hours * gpus_per_server if gpus_per_server else server_hours
