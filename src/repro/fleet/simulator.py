"""Hourly fleet simulator: clusters x demand x grid -> energy and carbon.

Ties the fleet substrate together: an AI fleet of training and inference
clusters driven by (i) a diurnal inference demand trace and (ii) an
experiment job stream, evaluated against a grid trace and a PUE, yielding
the hourly power series and totals that the paper's at-scale sections
reason about (Figures 3a, 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.carbon.grid import GridTrace, constant_grid_trace
from repro.carbon.intensity import US_AVERAGE
from repro.core.context import AccountingContext
from repro.core.quantities import Carbon, Energy, Power
from repro.core.series import HourlySeries
from repro.energy.meter import integrate_power_hours
from repro.energy.pue import Datacenter
from repro.errors import SimulationError, UnitError
from repro.fleet.cluster import Cluster
from repro.fleet.scheduler import ClusterSchedule, schedule_fifo
from repro.fleet.server import AI_INFERENCE_SKU, AI_TRAINING_SKU, ServerSKU
from repro.workloads.traces import ExperimentStream, diurnal_demand


@dataclass(frozen=True)
class FleetResult:
    """Hourly and aggregate outcome of one fleet simulation."""

    hours: int
    training_watts: np.ndarray
    inference_watts: np.ndarray
    it_energy: Energy
    facility_energy: Energy
    operational_carbon: Carbon
    embodied_total: Carbon
    training_schedule: ClusterSchedule

    @property
    def it_watts(self) -> np.ndarray:
        return self.training_watts + self.inference_watts

    @property
    def mean_it_power(self) -> Power:
        return Power(float(np.mean(self.it_watts)))

    def capacity_split(self) -> dict[str, float]:
        """Energy split between training-side and inference clusters."""
        train = float(np.sum(self.training_watts))
        infer = float(np.sum(self.inference_watts))
        total = train + infer
        if total == 0:
            return {"training": 0.0, "inference": 0.0}
        return {"training": train / total, "inference": infer / total}


@dataclass
class FleetSimulator:
    """A two-tier AI fleet: training cluster + inference tier."""

    training_gpus: int = 4096
    inference_servers: int = 2000
    training_sku: ServerSKU = AI_TRAINING_SKU
    inference_sku: ServerSKU = AI_INFERENCE_SKU
    datacenter: Datacenter = field(default_factory=Datacenter)
    grid: GridTrace | None = None

    def __post_init__(self) -> None:
        if self.training_gpus <= 0 or self.inference_servers <= 0:
            raise UnitError("fleet tiers must be non-empty")
        if self.training_sku.n_accelerators == 0:
            raise SimulationError("training SKU must carry accelerators")

    def run(
        self,
        experiments: ExperimentStream,
        hours: int = 168,
        inference_demand: np.ndarray | None = None,
        inference_peak_utilization: float = 0.75,
        seed: int = 0,
    ) -> FleetResult:
        """Simulate ``hours`` hours of fleet operation."""
        if hours <= 0:
            raise UnitError("simulation window must be positive")
        demand = (
            np.asarray(inference_demand, dtype=float)
            if inference_demand is not None
            else diurnal_demand(hours, seed=seed)
        )
        if len(demand) < hours:
            raise UnitError("inference demand trace shorter than the window")
        demand = demand[:hours]

        # -- training tier: schedule the experiment stream -----------------
        schedule = schedule_fifo(experiments, self.training_gpus, horizon_hours=hours)
        gpus_per_server = self.training_sku.n_accelerators
        n_training_servers = int(np.ceil(self.training_gpus / gpus_per_server))
        train_util = schedule.busy_gpus / self.training_gpus
        training_watts = self.training_sku.power_series(train_util) * n_training_servers

        # -- inference tier: demand-proportional utilization ---------------
        inf_util = np.clip(demand * inference_peak_utilization, 0.0, 1.0)
        inference_watts = (
            self.inference_sku.power_series(inf_util) * self.inference_servers
        )

        it_watts = training_watts + inference_watts
        it_energy = integrate_power_hours(it_watts)
        facility_energy = self.datacenter.facility_energy(it_energy)

        grid = self.grid or constant_grid_trace(US_AVERAGE, hours)
        context = AccountingContext(grid=grid, pue=self.datacenter.pue)
        operational = context.operational(HourlySeries.from_power_watts(it_watts))

        embodied = (
            self.training_sku.embodied * n_training_servers
            + self.inference_sku.embodied * self.inference_servers
        )

        return FleetResult(
            hours=hours,
            training_watts=training_watts,
            inference_watts=inference_watts,
            it_energy=it_energy,
            facility_energy=facility_energy,
            operational_carbon=operational,
            embodied_total=embodied,
            training_schedule=schedule,
        )


def datacenter_electricity_series(
    years: tuple[int, ...] = (2016, 2017, 2018, 2019, 2020),
    final_mwh: float = 7.17e6,
    annual_growth: float = 1.38,
) -> dict[int, Energy]:
    """Fleet electricity use by year, ending at the paper's 7.17M MWh (2020).

    Figure 3(c): "the overall data center electricity use continues to
    grow, demanding over 7.17 million MWh in 2020".  The back-projected
    series uses the public year-over-year growth of the sustainability
    reports (~38%/year over that period).
    """
    if annual_growth <= 0:
        raise UnitError("growth rate must be positive")
    if final_mwh <= 0:
        raise UnitError("final consumption must be positive")
    series: dict[int, Energy] = {}
    last = years[-1]
    for year in years:
        mwh = final_mwh / annual_growth ** (last - year)
        series[year] = Energy.from_mwh(mwh)
    return series
