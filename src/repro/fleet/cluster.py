"""Clusters: homogeneous pools of servers with power-capacity accounting.

The paper: "datacenter capacity is not only limited by physical space but
also power capacity" — a cluster tracks both its provisioned power budget
and the instantaneous draw of its servers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.quantities import Carbon, Energy, Power
from repro.errors import SimulationError, UnitError
from repro.fleet.server import Server, ServerSKU


@dataclass
class Cluster:
    """A pool of identical servers under one power budget."""

    name: str
    sku: ServerSKU
    n_servers: int
    power_budget: Power | None = None
    _servers: list[Server] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.n_servers <= 0:
            raise UnitError("cluster needs at least one server")
        self._servers = [Server(self.sku, i) for i in range(self.n_servers)]
        peak = self.sku.peak_power * self.n_servers
        if self.power_budget is None:
            self.power_budget = peak
        elif self.power_budget.watts < peak.watts:
            # Over-subscription is the norm in real datacenters; allow it
            # but remember the cap so draw can be validated.
            pass

    @property
    def servers(self) -> list[Server]:
        return self._servers

    def set_uniform_utilization(self, utilization: float) -> None:
        for server in self._servers:
            server.set_utilization(utilization)

    def set_utilizations(self, utilizations: np.ndarray) -> None:
        u = np.asarray(utilizations, dtype=float)
        if len(u) != self.n_servers:
            raise UnitError(
                f"expected {self.n_servers} utilizations, got {len(u)}"
            )
        for server, value in zip(self._servers, u):
            server.set_utilization(float(value))

    def power_servers(self, n_powered: int) -> None:
        """Keep the first ``n_powered`` servers on; power off the rest."""
        if not (0 <= n_powered <= self.n_servers):
            raise SimulationError(
                f"cannot power {n_powered} of {self.n_servers} servers"
            )
        for i, server in enumerate(self._servers):
            server.powered = i < n_powered
            if not server.powered:
                server.utilization = 0.0

    @property
    def powered_count(self) -> int:
        return sum(1 for s in self._servers if s.powered)

    def current_power(self) -> Power:
        return Power(sum(s.current_power().watts for s in self._servers))

    def mean_utilization(self) -> float:
        powered = [s for s in self._servers if s.powered]
        if not powered:
            return 0.0
        return float(np.mean([s.utilization for s in powered]))

    def embodied_total(self) -> Carbon:
        return self.sku.embodied * self.n_servers

    def energy_over_hours(self, hours: float) -> Energy:
        """Energy if the current power state persists for ``hours``."""
        return self.current_power().over_hours(hours)

    def headroom(self) -> Power:
        """Power budget minus current draw (zero if over budget)."""
        budget = self.power_budget.watts if self.power_budget else 0.0
        draw = self.current_power().watts
        return Power(max(0.0, budget - draw))
