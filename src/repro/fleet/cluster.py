"""Clusters: homogeneous pools of servers with power-capacity accounting.

The paper: "datacenter capacity is not only limited by physical space but
also power capacity" — a cluster tracks both its provisioned power budget
and the instantaneous draw of its servers.

State is held as per-server numpy arrays (utilization, powered), so the
per-device operations — setting utilizations, powering a subset, summing
draw — are single vectorized kernels instead of Python loops over
:class:`~repro.fleet.server.Server` objects.  The pre-vectorization
object-loop implementations are retained as ``_reference_*`` methods,
used only by the bit-exactness tests in ``tests/test_vectorized_kernels.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.quantities import Carbon, Energy, Power
from repro.errors import SimulationError, UnitError
from repro.fleet.server import Server, ServerSKU


@dataclass
class Cluster:
    """A pool of identical servers under one power budget."""

    name: str
    sku: ServerSKU
    n_servers: int
    power_budget: Power | None = None
    _utilizations: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]
    _powered: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.n_servers <= 0:
            raise UnitError("cluster needs at least one server")
        self._utilizations = np.zeros(self.n_servers)
        self._powered = np.ones(self.n_servers, dtype=bool)
        peak = self.sku.peak_power * self.n_servers
        if self.power_budget is None:
            self.power_budget = peak
        elif self.power_budget.watts < peak.watts:
            # Over-subscription is the norm in real datacenters; allow it
            # but remember the cap so draw can be validated.
            pass

    @property
    def servers(self) -> list[Server]:
        """Materialized per-server view (a snapshot, not live state)."""
        return [
            Server(
                self.sku,
                i,
                utilization=float(self._utilizations[i]),
                powered=bool(self._powered[i]),
            )
            for i in range(self.n_servers)
        ]

    @property
    def utilizations(self) -> np.ndarray:
        """Read-only per-server utilization array."""
        view = self._utilizations.view()
        view.setflags(write=False)
        return view

    def set_uniform_utilization(self, utilization: float) -> None:
        if not (0.0 <= utilization <= 1.0):
            raise UnitError(f"utilization must be in [0, 1], got {utilization}")
        self._utilizations.fill(utilization)

    def set_utilizations(self, utilizations: np.ndarray) -> None:
        u = np.asarray(utilizations, dtype=float)
        if len(u) != self.n_servers:
            raise UnitError(
                f"expected {self.n_servers} utilizations, got {len(u)}"
            )
        if np.any((u < 0.0) | (u > 1.0)):
            raise UnitError("utilization values must be in [0, 1]")
        self._utilizations[:] = u

    def power_servers(self, n_powered: int) -> None:
        """Keep the first ``n_powered`` servers on; power off the rest."""
        if not (0 <= n_powered <= self.n_servers):
            raise SimulationError(
                f"cannot power {n_powered} of {self.n_servers} servers"
            )
        self._powered[:n_powered] = True
        self._powered[n_powered:] = False
        self._utilizations[n_powered:] = 0.0

    @property
    def powered_count(self) -> int:
        return int(np.count_nonzero(self._powered))

    def current_power(self) -> Power:
        """Instantaneous cluster draw (powered-off servers draw nothing)."""
        watts = self.sku.power_series(self._utilizations)
        # Sequential accumulation over the per-server watts reproduces the
        # reference object-loop sum bit-for-bit (numpy's pairwise
        # summation would not).
        total = 0.0
        for w in np.where(self._powered, watts, 0.0).tolist():
            total += w
        return Power(total)

    def mean_utilization(self) -> float:
        if not np.any(self._powered):
            return 0.0
        return float(np.mean(self._utilizations[self._powered]))

    def embodied_total(self) -> Carbon:
        return self.sku.embodied * self.n_servers

    def energy_over_hours(self, hours: float) -> Energy:
        """Energy if the current power state persists for ``hours``."""
        return self.current_power().over_hours(hours)

    def headroom(self) -> Power:
        """Power budget minus current draw (zero if over budget)."""
        budget = self.power_budget.watts if self.power_budget else 0.0
        draw = self.current_power().watts
        return Power(max(0.0, budget - draw))

    # -- reference implementations (bit-exactness tests only) ---------------

    def _reference_current_power(self) -> Power:
        """Pre-vectorization loop over materialized Server objects."""
        return Power(sum(s.current_power().watts for s in self.servers))

    def _reference_mean_utilization(self) -> float:
        """Pre-vectorization loop over materialized Server objects."""
        powered = [s for s in self.servers if s.powered]
        if not powered:
            return 0.0
        return float(np.mean([s.utilization for s in powered]))
