"""Rack-level memory disaggregation / pooling (Appendix B footnote).

The paper lists "datacenter infrastructure disaggregation" among the
directions for environmentally-sustainable systems.  The concrete win
for memory: servers are provisioned for their *individual peak* DRAM
demand, so most DRAM sits stranded most of the time.  Pooling memory at
rack scale (CXL-style) lets provisioning follow the *rack's* peak of the
summed demand instead of the sum of per-server peaks — statistical
multiplexing — and every avoided DRAM gigabyte avoids manufacturing
carbon (DRAM is among the highest kgCO2e/GB components; see
:mod:`repro.carbon.components`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.carbon.components import DRAM_KG_PER_GB
from repro.core.quantities import Carbon
from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class MemoryDemandModel:
    """Per-server memory demand over time: a baseline plus bursts.

    Each server holds a steady working set and occasionally bursts
    (shuffles, compactions, big joins).  Bursts are what force peak
    provisioning; they are short and rarely simultaneous — exactly the
    behaviour pooling exploits.
    """

    n_servers: int = 32
    baseline_gb: float = 96.0
    burst_gb: float = 160.0
    burst_probability: float = 0.04
    noise_gb: float = 12.0

    def __post_init__(self) -> None:
        if self.n_servers <= 0:
            raise UnitError("need at least one server")
        if self.baseline_gb <= 0 or self.burst_gb < 0 or self.noise_gb < 0:
            raise UnitError("memory quantities must be non-negative")
        if not (0 <= self.burst_probability <= 1):
            raise UnitError("burst probability must be in [0, 1]")

    def sample(self, hours: int = 1000, seed: int = 0) -> np.ndarray:
        """(hours, n_servers) demand matrix in GB."""
        if hours <= 0:
            raise UnitError("window must be positive")
        rng = np.random.default_rng(seed)
        base = self.baseline_gb + rng.normal(
            0.0, self.noise_gb, (hours, self.n_servers)
        )
        bursts = (
            rng.random((hours, self.n_servers)) < self.burst_probability
        ) * self.burst_gb
        return np.maximum(1.0, base + bursts)


@dataclass(frozen=True, slots=True)
class PoolingResult:
    """Provisioning comparison: dedicated per-server vs rack pool."""

    dedicated_gb: float
    pooled_gb: float
    embodied_avoided: Carbon
    stranded_fraction_dedicated: float

    @property
    def dram_saving_fraction(self) -> float:
        if self.dedicated_gb == 0:
            return 0.0
        return 1.0 - self.pooled_gb / self.dedicated_gb


def pooling_study(
    model: MemoryDemandModel | None = None,
    headroom: float = 1.10,
    hours: int = 2000,
    seed: int = 0,
) -> PoolingResult:
    """Quantify DRAM (and embodied carbon) saved by rack-level pooling.

    Dedicated provisioning: every server carries its own observed peak
    (x headroom).  Pooled: the rack carries the peak of the *summed*
    demand (x headroom).  Stranded fraction is the average unused share
    of the dedicated fleet's DRAM.
    """
    if headroom < 1.0:
        raise UnitError("headroom must be >= 1")
    model = model or MemoryDemandModel()
    demand = model.sample(hours, seed)

    per_server_peaks = demand.max(axis=0)
    dedicated = float(np.sum(per_server_peaks)) * headroom
    pooled = float(demand.sum(axis=1).max()) * headroom

    mean_used = float(demand.sum(axis=1).mean())
    stranded = 1.0 - mean_used / dedicated

    avoided_gb = max(0.0, dedicated - pooled)
    return PoolingResult(
        dedicated_gb=dedicated,
        pooled_gb=pooled,
        embodied_avoided=Carbon(avoided_gb * DRAM_KG_PER_GB),
        stranded_fraction_dedicated=stranded,
    )


def pooling_scaling_curve(
    rack_sizes: tuple[int, ...] = (4, 8, 16, 32, 64),
    seed: int = 0,
) -> list[tuple[int, float]]:
    """(rack size, DRAM saving fraction): multiplexing grows with scale."""
    curve = []
    for n in rack_sizes:
        result = pooling_study(MemoryDemandModel(n_servers=n), seed=seed)
        curve.append((n, result.dram_saving_fraction))
    return curve
