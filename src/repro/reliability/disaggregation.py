"""Disaggregating the data-ingestion stage from training (Appendix B).

"Disaggregating the data ingestion and pre-processing stage ... allows
training accelerator, network and storage I/O bandwidth utilization to
scale independently, thereby increasing the overall model training
throughput by 56%."

Model: a training pipeline where each step needs pre-processed batches.

* **Co-located**: ingestion shares the trainer host; CPU cycles stolen
  from data pre-processing stall the accelerators whenever ingest
  throughput < consume throughput.
* **Disaggregated**: ingestion runs on a right-sized separate tier, so
  trainers see full batch throughput; the extra tier costs embodied
  carbon, but fewer trainer-hours per epoch cut both energy and the
  trainers' (much larger) embodied share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quantities import Carbon
from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class PipelineThroughput:
    """Batch-rate capacities of the training pipeline's stages."""

    trainer_batches_per_s: float
    colocated_ingest_batches_per_s: float
    disaggregated_ingest_batches_per_s: float

    def __post_init__(self) -> None:
        if min(
            self.trainer_batches_per_s,
            self.colocated_ingest_batches_per_s,
            self.disaggregated_ingest_batches_per_s,
        ) <= 0:
            raise UnitError("throughputs must be positive")

    @property
    def colocated_rate(self) -> float:
        """End-to-end rate when ingestion shares the trainer host."""
        return min(self.trainer_batches_per_s, self.colocated_ingest_batches_per_s)

    @property
    def disaggregated_rate(self) -> float:
        """End-to-end rate with a right-sized separate ingestion tier."""
        return min(self.trainer_batches_per_s, self.disaggregated_ingest_batches_per_s)

    @property
    def throughput_gain(self) -> float:
        """Fractional throughput improvement from disaggregating."""
        return self.disaggregated_rate / self.colocated_rate - 1.0


#: Calibrated to the paper's reported +56% training throughput: co-located
#: ingestion can only feed ~64% of what the accelerators consume.
PAPER_PIPELINE = PipelineThroughput(
    trainer_batches_per_s=100.0,
    colocated_ingest_batches_per_s=64.0,
    disaggregated_ingest_batches_per_s=110.0,
)


@dataclass(frozen=True, slots=True)
class DisaggregationImpact:
    """Carbon accounting of disaggregating one training workload."""

    throughput_gain: float
    trainer_hours_saved_fraction: float
    embodied_delta: Carbon  # extra embodied carbon of the ingest tier
    trainer_embodied_avoided: Carbon

    @property
    def net_embodied_saving(self) -> float:
        """kg saved net of the new tier (positive = disaggregation wins)."""
        return self.trainer_embodied_avoided.kg - self.embodied_delta.kg


def disaggregation_impact(
    pipeline: PipelineThroughput = PAPER_PIPELINE,
    epoch_trainer_hours: float = 10_000.0,
    trainer_embodied_rate_kg_per_hour: float = 0.127,
    ingest_tier_embodied: Carbon = Carbon(1200.0),
    ingest_tier_share: float = 0.02,
) -> DisaggregationImpact:
    """Quantify the sustainability argument for disaggregation.

    Higher throughput means the same epoch finishes in fewer
    trainer-hours; the avoided trainer embodied amortization is compared
    with the ingest tier's own (shared across many jobs via
    ``ingest_tier_share``).
    """
    if epoch_trainer_hours <= 0:
        raise UnitError("epoch hours must be positive")
    if trainer_embodied_rate_kg_per_hour < 0:
        raise UnitError("embodied rate must be non-negative")
    if not (0 < ingest_tier_share <= 1):
        raise UnitError("ingest tier share must be in (0, 1]")
    gain = pipeline.throughput_gain
    hours_saved_fraction = gain / (1.0 + gain)
    hours_saved = epoch_trainer_hours * hours_saved_fraction
    return DisaggregationImpact(
        throughput_gain=gain,
        trainer_hours_saved_fraction=hours_saved_fraction,
        embodied_delta=ingest_tier_embodied * ingest_tier_share,
        trainer_embodied_avoided=Carbon(
            hours_saved * trainer_embodied_rate_kg_per_hour
        ),
    )
