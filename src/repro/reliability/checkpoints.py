"""Checkpointing and partial recovery for long training runs (Appendix B).

Failures waste the work since the last checkpoint; checkpoints themselves
cost time.  Given a failure rate and checkpoint overhead, there is an
optimal interval (Young/Daly) — and *partial recovery* (CPR-style: only
the failed shard rolls back) cuts the lost work further.

Everything is expressed in hours of training time, so wasted work maps
directly onto wasted energy and carbon.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError, UnitError


@dataclass(frozen=True, slots=True)
class CheckpointPolicy:
    """Fixed-interval checkpointing with a per-checkpoint cost."""

    interval_hours: float
    checkpoint_cost_hours: float = 0.05
    #: Fraction of since-last-checkpoint work lost at a failure.  1.0 is
    #: full rollback; CPR-style partial recovery loses only the failed
    #: shard's work (e.g. 1/16 of the job).
    rollback_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.interval_hours <= 0:
            raise UnitError("checkpoint interval must be positive")
        if self.checkpoint_cost_hours < 0:
            raise UnitError("checkpoint cost must be non-negative")
        if not (0 < self.rollback_fraction <= 1):
            raise UnitError("rollback fraction must be in (0, 1]")


def young_daly_interval(mtbf_hours: float, checkpoint_cost_hours: float) -> float:
    """The classic optimal checkpoint interval: sqrt(2 * C * MTBF)."""
    if mtbf_hours <= 0 or checkpoint_cost_hours <= 0:
        raise UnitError("MTBF and checkpoint cost must be positive")
    return math.sqrt(2.0 * checkpoint_cost_hours * mtbf_hours)


@dataclass(frozen=True, slots=True)
class TrainingRunOutcome:
    """Wall-clock accounting of one simulated run."""

    useful_hours: float
    checkpoint_hours: float
    lost_hours: float
    n_failures: int

    @property
    def total_hours(self) -> float:
        return self.useful_hours + self.checkpoint_hours + self.lost_hours

    @property
    def overhead_fraction(self) -> float:
        total = self.total_hours
        return (self.checkpoint_hours + self.lost_hours) / total if total else 0.0

    @property
    def goodput(self) -> float:
        total = self.total_hours
        return self.useful_hours / total if total else 0.0


def simulate_training_run(
    work_hours: float,
    mtbf_hours: float,
    policy: CheckpointPolicy,
    seed: int = 0,
    max_events: int = 1_000_000,
) -> TrainingRunOutcome:
    """Simulate a run needing ``work_hours`` of useful progress.

    Failures arrive as a Poisson process (exponential inter-arrival with
    mean ``mtbf_hours``).  On failure, work since the last checkpoint is
    lost, scaled by the policy's rollback fraction.
    """
    if work_hours <= 0 or mtbf_hours <= 0:
        raise UnitError("work and MTBF must be positive")
    rng = np.random.default_rng(seed)

    useful = 0.0
    lost = 0.0
    checkpoint_time = 0.0
    n_failures = 0
    progress_since_ckpt = 0.0
    next_failure = rng.exponential(mtbf_hours)
    clock = 0.0
    events = 0

    while useful < work_hours:
        events += 1
        if events > max_events:
            raise SimulationError("checkpoint simulation did not converge")
        remaining_to_ckpt = policy.interval_hours - progress_since_ckpt
        remaining_work = work_hours - useful
        step = min(remaining_to_ckpt, remaining_work)
        if clock + step >= next_failure:
            # Fail mid-segment: progress up to the failure counts, then a
            # rollback discards part of the uncheckpointed work.
            done = max(0.0, next_failure - clock)
            useful += done
            progress_since_ckpt += done
            rollback = progress_since_ckpt * policy.rollback_fraction
            useful -= rollback
            lost += rollback
            progress_since_ckpt -= rollback
            clock = next_failure
            n_failures += 1
            next_failure = clock + rng.exponential(mtbf_hours)
            continue
        clock += step
        useful += step
        progress_since_ckpt += step
        if progress_since_ckpt >= policy.interval_hours - 1e-12 and useful < work_hours:
            clock += policy.checkpoint_cost_hours
            checkpoint_time += policy.checkpoint_cost_hours
            progress_since_ckpt = 0.0

    return TrainingRunOutcome(
        useful_hours=work_hours,
        checkpoint_hours=checkpoint_time,
        lost_hours=lost,
        n_failures=n_failures,
    )


def partial_recovery_benefit(
    work_hours: float = 500.0,
    mtbf_hours: float = 48.0,
    interval_hours: float | None = None,
    shards: int = 16,
    seed: int = 0,
) -> dict[str, float]:
    """Wasted-hours comparison: full rollback vs CPR-style partial recovery."""
    if shards <= 1:
        raise UnitError("partial recovery needs >1 shard")
    interval = interval_hours or young_daly_interval(mtbf_hours, 0.05)
    full = simulate_training_run(
        work_hours, mtbf_hours, CheckpointPolicy(interval, rollback_fraction=1.0), seed
    )
    partial = simulate_training_run(
        work_hours,
        mtbf_hours,
        CheckpointPolicy(interval, rollback_fraction=1.0 / shards),
        seed,
    )
    return {
        "full_overhead": full.overhead_fraction,
        "partial_overhead": partial.overhead_fraction,
        "wasted_hours_saved": full.lost_hours - partial.lost_hours,
    }
