"""Reliability: checkpointing, wear-out/SDC, pipeline disaggregation."""

from repro.reliability.checkpoints import (
    CheckpointPolicy,
    TrainingRunOutcome,
    partial_recovery_benefit,
    simulate_training_run,
    young_daly_interval,
)
from repro.reliability.disaggregation import (
    DisaggregationImpact,
    PAPER_PIPELINE,
    PipelineThroughput,
    disaggregation_impact,
)
from repro.reliability.faults import (
    WearoutModel,
    carbon_optimal_lifetime,
    fleet_sdc_incidents,
)
from repro.reliability.sdc_injection import (
    SDCInjectionConfig,
    SDCRunResult,
    sdc_study,
    train_with_sdc,
)

__all__ = [
    "CheckpointPolicy",
    "DisaggregationImpact",
    "PAPER_PIPELINE",
    "PipelineThroughput",
    "SDCInjectionConfig",
    "SDCRunResult",
    "TrainingRunOutcome",
    "sdc_study",
    "train_with_sdc",
    "WearoutModel",
    "carbon_optimal_lifetime",
    "disaggregation_impact",
    "fleet_sdc_incidents",
    "partial_recovery_benefit",
    "simulate_training_run",
    "young_daly_interval",
]
