"""Silent-data-corruption injection into real model training (Appendix B).

"Hardware ages ... increasingly more errors can surface over time and
result in silent data corruption, leading to erroneous computation,
model accuracy degradation, non-deterministic ML execution ...
Alternatively, algorithmic fault tolerance can be built into deep
learning programming frameworks."

This module *actually injects* SDC-style faults into the library's
BiasMF recommender training and measures the accuracy damage, then
demonstrates the algorithmic mitigation the paper proposes:

* **injection** — at a configurable rate, a random slice of the learned
  parameters is corrupted the way a flipped high-order mantissa/exponent
  bit corrupts a float: multiplied by a large factor or replaced with a
  huge value;
* **mitigation** — a norm-guard pass after each epoch detects parameter
  rows whose magnitude is implausible (far beyond the running median
  norm) and re-initializes them, emulating framework-level fault
  tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataeff.recommenders import BiasMF, evaluate
from repro.dataeff.synthetic import InteractionDataset
from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class SDCInjectionConfig:
    """How faults are injected during training."""

    faults_per_epoch: float = 2.0
    corruption_scale: float = 1e4
    cells_per_fault: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.faults_per_epoch < 0:
            raise UnitError("fault rate must be non-negative")
        if self.corruption_scale <= 1:
            raise UnitError("corruption scale must exceed 1")
        if self.cells_per_fault <= 0:
            raise UnitError("cells per fault must be positive")


def _inject(matrix: np.ndarray, config: SDCInjectionConfig, rng: np.random.Generator) -> int:
    """Corrupt random cells of ``matrix`` in place; returns cells hit."""
    n_faults = rng.poisson(config.faults_per_epoch)
    hit = 0
    for _ in range(n_faults):
        rows = rng.integers(0, matrix.shape[0], config.cells_per_fault)
        cols = rng.integers(0, matrix.shape[1], config.cells_per_fault)
        # A flipped exponent bit typically scales the value by a huge
        # power of two; sign flips happen too.
        factor = config.corruption_scale * rng.choice([-1.0, 1.0])
        matrix[rows, cols] *= factor
        hit += config.cells_per_fault
    return hit


def _norm_guard(matrix: np.ndarray, threshold_factor: float, rng: np.random.Generator) -> int:
    """Re-initialize rows with implausible norms; returns rows repaired."""
    norms = np.linalg.norm(matrix, axis=1)
    median = float(np.median(norms[norms > 0])) if np.any(norms > 0) else 0.0
    if median == 0.0:
        return 0
    bad = norms > threshold_factor * median
    n_bad = int(np.sum(bad))
    if n_bad:
        scale = median / np.sqrt(matrix.shape[1])
        matrix[bad] = rng.normal(0.0, scale, (n_bad, matrix.shape[1]))
    return n_bad


@dataclass(frozen=True, slots=True)
class SDCRunResult:
    """Accuracy outcome of one (possibly faulty, possibly guarded) run."""

    label: str
    ndcg: float
    cells_corrupted: int
    rows_repaired: int


def train_with_sdc(
    data: InteractionDataset,
    config: SDCInjectionConfig | None = None,
    guard: bool = False,
    guard_threshold: float = 8.0,
    n_epochs: int = 10,
    seed: int = 0,
) -> SDCRunResult:
    """Train BiasMF with per-epoch SDC injection (and optional guard).

    The training loop mirrors :class:`BiasMF.fit` epoch structure but
    interleaves fault injection (and the mitigation pass) between epochs,
    then evaluates on the standard held-out protocol.
    """
    if n_epochs <= 0:
        raise UnitError("epochs must be positive")
    if guard_threshold <= 1:
        raise UnitError("guard threshold must exceed 1")
    config = config or SDCInjectionConfig()
    rng = np.random.default_rng(config.seed + 17)

    train, test = data.leave_last_out()
    model = BiasMF(n_epochs=1, seed=seed)
    corrupted = 0
    repaired = 0
    for epoch in range(n_epochs):
        # One epoch of real SGD; BiasMF.fit re-initializes, so drive the
        # internals directly after the first epoch.
        if epoch == 0:
            model.fit(train)
        else:
            epoch_model = BiasMF(n_epochs=1, seed=seed + epoch)
            epoch_model._U, epoch_model._V, epoch_model._bi = (
                model._U,
                model._V,
                model._bi,
            )
            _continue_training(epoch_model, train, seed + epoch)
            model = epoch_model
        corrupted += _inject(model._U, config, rng)
        corrupted += _inject(model._V, config, rng)
        if guard:
            repaired += _norm_guard(model._U, guard_threshold, rng)
            repaired += _norm_guard(model._V, guard_threshold, rng)

    result = evaluate(model, train, test, seed=seed)
    label = "guarded" if guard else "unprotected"
    if config.faults_per_epoch == 0:
        label = "fault-free"
    return SDCRunResult(
        label=label,
        ndcg=result.ndcg_at_k,
        cells_corrupted=corrupted,
        rows_repaired=repaired,
    )


def _continue_training(model: BiasMF, train: InteractionDataset, seed: int) -> None:
    """Run one more SGD epoch on an already-initialized model."""
    rng = np.random.default_rng(seed)
    n = len(train)
    order = rng.permutation(n)
    batch = 512
    for start in range(0, n, batch):
        idx = order[start : start + batch]
        users = train.users[idx]
        pos = train.items[idx]
        model._sgd_step(model._U, model._V, model._bi, users, pos, 1.0)
        for _ in range(model.n_negatives):
            neg = rng.integers(0, train.n_items, len(idx))
            model._sgd_step(model._U, model._V, model._bi, users, neg, 0.0)


def sdc_study(
    data: InteractionDataset,
    fault_rates: tuple[float, ...] = (0.0, 1.0, 4.0),
    seed: int = 0,
) -> list[SDCRunResult]:
    """Fault-free vs faulty vs guarded runs across injection rates."""
    results = []
    for rate in fault_rates:
        config = SDCInjectionConfig(faults_per_epoch=rate, seed=seed)
        results.append(train_with_sdc(data, config, guard=False, seed=seed))
        if rate > 0:
            results.append(train_with_sdc(data, config, guard=True, seed=seed))
    return results
