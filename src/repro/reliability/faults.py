"""Hardware aging and silent data corruption (SDC) at fleet scale.

Appendix B: "hardware ages — depending on the wear-out characteristics,
increasingly more errors can surface over time and result in silent data
corruption ... In a large fleet of processors, silent data corruption can
occur frequently enough to have disruptive impact."

The model answers the lifetime-extension question quantitatively: keeping
servers longer amortizes embodied carbon over more years, but raises the
expected SDC-incident cost — there is a carbon-optimal replacement age,
and *differential reliability* / algorithmic fault tolerance move it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.carbon.embodied import GPU_SERVER_EMBODIED
from repro.core.quantities import Carbon
from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class WearoutModel:
    """Weibull-style increasing hazard of SDC-class faults with age.

    ``base_rate_per_year`` is the year-1 incident rate per server;
    ``shape`` > 1 gives wear-out (increasing hazard).
    """

    base_rate_per_year: float = 0.08
    shape: float = 2.2

    def __post_init__(self) -> None:
        if self.base_rate_per_year <= 0:
            raise UnitError("base rate must be positive")
        if self.shape < 1:
            raise UnitError("shape must be >= 1 (wear-out regime)")

    def incident_rate_at(self, age_years: float) -> float:
        """Instantaneous incidents/server/year at ``age_years``."""
        if age_years < 0:
            raise UnitError("age must be non-negative")
        return self.base_rate_per_year * self.shape * max(age_years, 1e-9) ** (
            self.shape - 1.0
        )

    def expected_incidents(self, lifetime_years: float) -> float:
        """Expected incidents per server over a service life."""
        if lifetime_years <= 0:
            raise UnitError("lifetime must be positive")
        return self.base_rate_per_year * lifetime_years**self.shape


def carbon_optimal_lifetime(
    wearout: WearoutModel,
    server_embodied: Carbon = GPU_SERVER_EMBODIED,
    incident_cost: Carbon = Carbon(800.0),
    lifetimes: np.ndarray | None = None,
    detection_coverage: float = 0.0,
) -> tuple[float, np.ndarray, np.ndarray]:
    """Carbon per service-year vs replacement age; returns the optimum.

    Annualized carbon = embodied / lifetime + incident cost rate, where an
    incident's cost models re-run training corrupted by SDC.
    ``detection_coverage`` is the fraction of incidents neutralized by
    algorithmic fault tolerance (reducing their carbon cost) — the paper's
    proposed mitigation.

    Returns (optimal lifetime, lifetimes, annualized kg per year).
    """
    if not (0 <= detection_coverage <= 1):
        raise UnitError("detection coverage must be in [0, 1]")
    if lifetimes is None:
        lifetimes = np.linspace(1.0, 10.0, 37)
    lifetimes = np.asarray(lifetimes, dtype=float)
    if np.any(lifetimes <= 0):
        raise UnitError("lifetimes must be positive")

    annualized = np.empty(len(lifetimes))
    effective_cost = incident_cost.kg * (1.0 - detection_coverage)
    for i, life in enumerate(lifetimes):
        embodied_rate = server_embodied.kg / life
        incident_rate = wearout.expected_incidents(life) / life * effective_cost
        annualized[i] = embodied_rate + incident_rate
    best = float(lifetimes[int(np.argmin(annualized))])
    return best, lifetimes, annualized


def fleet_sdc_incidents(
    n_servers: int, age_years: float, wearout: WearoutModel, window_years: float = 1.0
) -> float:
    """Expected SDC incidents across a fleet of ``n_servers`` in a window."""
    if n_servers <= 0 or window_years <= 0:
        raise UnitError("fleet size and window must be positive")
    start = wearout.expected_incidents(max(age_years, 1e-9))
    end = wearout.expected_incidents(age_years + window_years)
    return n_servers * (end - start)
