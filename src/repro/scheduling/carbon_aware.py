"""Carbon-aware workload shifting (Section IV-C).

"Elastic carbon-aware workload scheduling techniques can be used in and
across datacenters to predict and exploit the intermittent energy
generation patterns."

Schedulers place deferrable jobs on an hourly grid trace under a shared
power-capacity constraint:

* :func:`schedule_immediate` — the baseline: start at submit (queue on
  capacity only);
* :func:`schedule_carbon_aware` — greedy: within each job's
  [submit, deadline] window, pick the feasible contiguous start hour with
  the lowest total grid carbon.

Both report emissions through the same accounting, so the saving is a
direct like-for-like comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.carbon.grid import GridTrace
from repro.core.quantities import Carbon
from repro.errors import SchedulingError, UnitError
from repro.scheduling.jobs import DeferrableJob


@dataclass(frozen=True)
class ScheduleOutcome:
    """Placement and emissions of one scheduling run."""

    strategy: str
    start_hours: dict[int, int]
    total_carbon: Carbon
    power_profile_kw: np.ndarray
    deadline_misses: int = 0

    @property
    def peak_power_kw(self) -> float:
        return float(np.max(self.power_profile_kw)) if len(self.power_profile_kw) else 0.0


def _fits(
    profile: np.ndarray, job: DeferrableJob, start: int, capacity_kw: float
) -> bool:
    window = profile[start : start + job.duration_hours]
    return bool(np.all(window + job.power_kw <= capacity_kw + 1e-9))


def schedule_immediate(
    jobs: list[DeferrableJob],
    grid: GridTrace,
    horizon_hours: int,
    capacity_kw: float = float("inf"),
) -> ScheduleOutcome:
    """Baseline: earliest feasible start at or after submission."""
    return _greedy(jobs, grid, horizon_hours, capacity_kw, carbon_aware=False)


def schedule_carbon_aware(
    jobs: list[DeferrableJob],
    grid: GridTrace,
    horizon_hours: int,
    capacity_kw: float = float("inf"),
) -> ScheduleOutcome:
    """Greedy carbon-aware: lowest-carbon feasible window per job."""
    return _greedy(jobs, grid, horizon_hours, capacity_kw, carbon_aware=True)


def _greedy(
    jobs: list[DeferrableJob],
    grid: GridTrace,
    horizon_hours: int,
    capacity_kw: float,
    carbon_aware: bool,
) -> ScheduleOutcome:
    if horizon_hours <= 0:
        raise UnitError("horizon must be positive")
    if capacity_kw <= 0:
        raise UnitError("capacity must be positive")
    for job in jobs:
        if job.deadline_hour > horizon_hours:
            raise SchedulingError(
                f"job {job.job_id} deadline {job.deadline_hour} beyond horizon"
            )
        if job.power_kw > capacity_kw:
            raise SchedulingError(
                f"job {job.job_id} power {job.power_kw} kW exceeds capacity"
            )

    profile = np.zeros(horizon_hours)
    starts: dict[int, int] = {}
    total_kg = 0.0
    misses = 0

    # Jobs with the least slack are placed first so tight jobs are not
    # crowded out by flexible ones.
    ordered = sorted(jobs, key=lambda j: (j.slack_hours, j.submit_hour))
    for job in ordered:
        candidates = range(job.submit_hour, job.latest_start + 1)
        feasible = [s for s in candidates if _fits(profile, job, s, capacity_kw)]
        if not feasible:
            # Deadline cannot be met under capacity; run at the earliest
            # feasible hour after submit regardless of deadline.
            misses += 1
            s = job.submit_hour
            while s + job.duration_hours <= horizon_hours and not _fits(
                profile, job, s, capacity_kw
            ):
                s += 1
            if s + job.duration_hours > horizon_hours:
                raise SchedulingError(
                    f"job {job.job_id} cannot be placed within the horizon"
                )
            start = s
        elif carbon_aware:
            start = min(feasible, key=lambda s: job.carbon_at(grid, s).kg)
        else:
            start = feasible[0]

        profile[start : start + job.duration_hours] += job.power_kw
        starts[job.job_id] = start
        total_kg += job.carbon_at(grid, start).kg

    return ScheduleOutcome(
        strategy="carbon-aware" if carbon_aware else "immediate",
        start_hours=starts,
        total_carbon=Carbon(total_kg),
        power_profile_kw=profile,
        deadline_misses=misses,
    )


def carbon_saving(baseline: ScheduleOutcome, aware: ScheduleOutcome) -> float:
    """Fractional emission reduction of ``aware`` vs ``baseline``."""
    base = baseline.total_carbon.kg
    if base == 0:
        return 0.0
    return 1.0 - aware.total_carbon.kg / base
