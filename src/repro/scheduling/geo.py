"""Geographic (cross-datacenter) carbon-aware placement (Section IV-C).

"Elastic carbon-aware workload scheduling techniques can be used in and
*across* datacenters" — with regions on different grids (and different
solar phases), moving deferrable work both in time and space beats
time-shifting alone.

A :class:`Region` couples a grid trace with a power capacity; the geo
scheduler picks, per job, the (region, start hour) pair with the lowest
total emissions among feasible options.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.carbon.grid import GridMixParams, GridTrace, synthesize_grid_trace
from repro.core.quantities import Carbon
from repro.errors import SchedulingError, UnitError
from repro.scheduling.jobs import DeferrableJob


@dataclass(frozen=True)
class Region:
    """One datacenter region: its grid and its schedulable capacity."""

    name: str
    grid: GridTrace
    capacity_kw: float

    def __post_init__(self) -> None:
        if self.capacity_kw <= 0:
            raise UnitError("region capacity must be positive")


@dataclass(frozen=True)
class GeoScheduleOutcome:
    """Placement across regions plus emissions."""

    placements: dict[int, tuple[str, int]]  # job -> (region, start hour)
    total_carbon: Carbon
    region_energy_kwh: dict[str, float]
    deadline_misses: int

    def region_share(self, name: str) -> float:
        total = sum(self.region_energy_kwh.values())
        if total == 0:
            return 0.0
        return self.region_energy_kwh.get(name, 0.0) / total


def schedule_geo(
    jobs: list[DeferrableJob],
    regions: list[Region],
    horizon_hours: int,
    migration_overhead_fraction: float = 0.02,
    home_region: str | None = None,
) -> GeoScheduleOutcome:
    """Greedy geo + time placement of deferrable jobs.

    Each job considers every feasible (region, start) pair within its
    window; moving a job away from ``home_region`` (default: the first
    region) costs ``migration_overhead_fraction`` extra energy (data
    transfer), charged at the destination's intensity.
    """
    if not regions:
        raise UnitError("need at least one region")
    if not (0 <= migration_overhead_fraction < 1):
        raise UnitError("migration overhead must be in [0, 1)")
    home = home_region or regions[0].name
    if home not in {r.name for r in regions}:
        raise UnitError(f"home region {home!r} not among regions")

    profiles = {r.name: np.zeros(horizon_hours) for r in regions}
    placements: dict[int, tuple[str, int]] = {}
    region_energy: dict[str, float] = {r.name: 0.0 for r in regions}
    total_kg = 0.0
    misses = 0

    ordered = sorted(jobs, key=lambda j: (j.slack_hours, j.submit_hour))
    for job in ordered:
        if job.deadline_hour > horizon_hours:
            raise SchedulingError(
                f"job {job.job_id} deadline beyond the scheduling horizon"
            )
        best: tuple[float, str, int] | None = None
        for region in regions:
            if job.power_kw > region.capacity_kw:
                continue
            overhead = 0.0 if region.name == home else migration_overhead_fraction
            profile = profiles[region.name]
            for start in range(job.submit_hour, job.latest_start + 1):
                window = profile[start : start + job.duration_hours]
                if np.any(window + job.power_kw > region.capacity_kw + 1e-9):
                    continue
                kg = job.carbon_at(region.grid, start).kg * (1.0 + overhead)
                if best is None or kg < best[0]:
                    best = (kg, region.name, start)
        if best is None:
            # No deadline-feasible slot anywhere: run at home at the first
            # capacity-feasible hour.
            misses += 1
            profile = profiles[home]
            capacity = next(r for r in regions if r.name == home).capacity_kw
            start = job.submit_hour
            while start + job.duration_hours <= horizon_hours and np.any(
                profile[start : start + job.duration_hours] + job.power_kw
                > capacity + 1e-9
            ):
                start += 1
            if start + job.duration_hours > horizon_hours:
                raise SchedulingError(f"job {job.job_id} cannot be placed anywhere")
            grid = next(r for r in regions if r.name == home).grid
            best = (job.carbon_at(grid, start).kg, home, start)

        kg, region_name, start = best
        profiles[region_name][start : start + job.duration_hours] += job.power_kw
        placements[job.job_id] = (region_name, start)
        region_energy[region_name] += job.energy_kwh
        total_kg += kg

    return GeoScheduleOutcome(
        placements=placements,
        total_carbon=Carbon(total_kg),
        region_energy_kwh=region_energy,
        deadline_misses=misses,
    )


def default_regions(horizon_hours: int = 168, seed: int = 0) -> list[Region]:
    """Three stylized regions with complementary clean-energy profiles.

    * ``solar-west`` — solar-heavy grid (clean at local noon);
    * ``wind-north`` — wind-heavy, clean at night when the wind blows;
    * ``fossil-east`` — the dirty home region with the most capacity.
    """
    solar = synthesize_grid_trace(
        horizon_hours,
        GridMixParams(solar_capacity_fraction=0.55, wind_capacity_fraction=0.10),
        seed=seed,
    )
    wind = synthesize_grid_trace(
        horizon_hours,
        GridMixParams(solar_capacity_fraction=0.05, wind_capacity_fraction=0.55),
        seed=seed + 1,
    )
    fossil = synthesize_grid_trace(
        horizon_hours,
        GridMixParams(solar_capacity_fraction=0.08, wind_capacity_fraction=0.07),
        seed=seed + 2,
    )
    return [
        Region("fossil-east", fossil, capacity_kw=3000.0),
        Region("solar-west", solar, capacity_kw=1500.0),
        Region("wind-north", wind, capacity_kw=1500.0),
    ]
