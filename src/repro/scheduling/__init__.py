"""Carbon-aware scheduling: shifting, storage, 24/7 CFE, provisioning."""

from repro.scheduling.carbon_aware import (
    ScheduleOutcome,
    carbon_saving,
    schedule_carbon_aware,
    schedule_immediate,
)
from repro.scheduling.cfe import (
    annual_matching_score,
    cfe_gap,
    cfe_score,
    solar_procurement,
)
from repro.scheduling.geo import (
    GeoScheduleOutcome,
    Region,
    default_regions,
    schedule_geo,
)
from repro.scheduling.jobs import DeferrableJob, synthesize_jobs
from repro.scheduling.provisioning import (
    ProvisioningPoint,
    baseline_outcome,
    best_factor,
    provisioning_sweep,
)
from repro.scheduling.storage import Battery, StorageOutcome, run_arbitrage

__all__ = [
    "Battery",
    "DeferrableJob",
    "GeoScheduleOutcome",
    "ProvisioningPoint",
    "Region",
    "default_regions",
    "schedule_geo",
    "ScheduleOutcome",
    "StorageOutcome",
    "annual_matching_score",
    "baseline_outcome",
    "best_factor",
    "carbon_saving",
    "cfe_gap",
    "cfe_score",
    "provisioning_sweep",
    "run_arbitrage",
    "schedule_carbon_aware",
    "schedule_immediate",
    "solar_procurement",
    "synthesize_jobs",
]
