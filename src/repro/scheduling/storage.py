"""Energy storage for 24/7 carbon-free operation (Section IV-C).

"Alternatively, energy storage (e.g. batteries, pumped hydro, flywheels,
molten salt) can be used to store renewable energy during peak generation
times for use during low generation times."

A :class:`Battery` with capacity, power limits and round-trip efficiency
runs a threshold arbitrage policy against an hourly grid trace: charge
when grid intensity is below a percentile, discharge (displacing grid
energy) when above.  Emissions of a fixed load are compared with and
without the battery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.carbon.grid import GridTrace
from repro.core.quantities import Carbon
from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class Battery:
    """A stationary battery with symmetric power limits."""

    capacity_kwh: float
    max_power_kw: float
    round_trip_efficiency: float = 0.88

    def __post_init__(self) -> None:
        if self.capacity_kwh <= 0 or self.max_power_kw <= 0:
            raise UnitError("battery capacity and power must be positive")
        if not (0 < self.round_trip_efficiency <= 1):
            raise UnitError("round-trip efficiency must be in (0, 1]")


@dataclass(frozen=True)
class StorageOutcome:
    """Result of running the arbitrage policy."""

    carbon_without: Carbon
    carbon_with: Carbon
    grid_kwh_without: float
    grid_kwh_with: float
    state_of_charge_kwh: np.ndarray

    @property
    def carbon_saving_fraction(self) -> float:
        if self.carbon_without.kg == 0:
            return 0.0
        return 1.0 - self.carbon_with.kg / self.carbon_without.kg


def run_arbitrage(
    load_kw: np.ndarray,
    grid: GridTrace,
    battery: Battery,
    charge_percentile: float = 25.0,
    discharge_percentile: float = 50.0,
) -> StorageOutcome:
    """Threshold arbitrage of ``battery`` under a fixed hourly load.

    Hours below the ``charge_percentile`` of trace intensity charge the
    battery (extra grid draw at *clean* hours); hours above the
    ``discharge_percentile`` discharge it to displace grid energy at
    *dirty* hours.  Round-trip losses are charged on the way in.
    """
    load = np.asarray(load_kw, dtype=float)
    if np.any(load < 0):
        raise UnitError("load must be non-negative")
    if not (0 <= charge_percentile < discharge_percentile <= 100):
        raise UnitError("percentiles must satisfy 0 <= charge < discharge <= 100")
    hours = len(load)
    intensity = grid.intensity_kg_per_kwh[np.arange(hours) % len(grid)]
    low = np.percentile(grid.intensity_kg_per_kwh, charge_percentile)
    high = np.percentile(grid.intensity_kg_per_kwh, discharge_percentile)

    soc = 0.0
    soc_series = np.zeros(hours)
    grid_kwh = np.zeros(hours)
    eff = battery.round_trip_efficiency

    for h in range(hours):
        draw = load[h]
        if intensity[h] <= low and soc < battery.capacity_kwh:
            # Charge: stored energy is discounted by round-trip losses so
            # discharging later is loss-free bookkeeping.
            room = battery.capacity_kwh - soc
            charge = min(battery.max_power_kw, room / eff)
            soc += charge * eff
            draw += charge
        elif intensity[h] >= high and soc > 0:
            discharge = min(battery.max_power_kw, soc, load[h])
            soc -= discharge
            draw -= discharge
        soc_series[h] = soc
        grid_kwh[h] = draw

    carbon_without = Carbon(float(np.sum(load * intensity)))
    carbon_with = Carbon(float(np.sum(grid_kwh * intensity)))
    return StorageOutcome(
        carbon_without=carbon_without,
        carbon_with=carbon_with,
        grid_kwh_without=float(np.sum(load)),
        grid_kwh_with=float(np.sum(grid_kwh)),
        state_of_charge_kwh=soc_series,
    )
