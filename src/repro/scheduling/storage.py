"""Energy storage for 24/7 carbon-free operation (Section IV-C).

"Alternatively, energy storage (e.g. batteries, pumped hydro, flywheels,
molten salt) can be used to store renewable energy during peak generation
times for use during low generation times."

A :class:`Battery` with capacity, power limits and round-trip efficiency
runs a threshold arbitrage policy against an hourly grid trace: charge
when grid intensity is below a percentile, discharge (displacing grid
energy) when above.  Emissions of a fixed load are compared with and
without the battery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.carbon.grid import GridTrace
from repro.core.quantities import Carbon
from repro.core.series import HourlySeries
from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class Battery:
    """A stationary battery with symmetric power limits."""

    capacity_kwh: float
    max_power_kw: float
    round_trip_efficiency: float = 0.88

    def __post_init__(self) -> None:
        if self.capacity_kwh <= 0 or self.max_power_kw <= 0:
            raise UnitError("battery capacity and power must be positive")
        if not (0 < self.round_trip_efficiency <= 1):
            raise UnitError("round-trip efficiency must be in (0, 1]")


@dataclass(frozen=True)
class StorageOutcome:
    """Result of running the arbitrage policy."""

    carbon_without: Carbon
    carbon_with: Carbon
    grid_kwh_without: float
    grid_kwh_with: float
    state_of_charge_kwh: np.ndarray

    @property
    def carbon_saving_fraction(self) -> float:
        if self.carbon_without.kg == 0:
            return 0.0
        return 1.0 - self.carbon_with.kg / self.carbon_without.kg


def run_arbitrage(
    load_kw: np.ndarray,
    grid: GridTrace,
    battery: Battery,
    charge_percentile: float = 25.0,
    discharge_percentile: float = 50.0,
) -> StorageOutcome:
    """Threshold arbitrage of ``battery`` under a fixed hourly load.

    Hours below the ``charge_percentile`` of trace intensity charge the
    battery (extra grid draw at *clean* hours); hours above the
    ``discharge_percentile`` discharge it to displace grid energy at
    *dirty* hours.  Round-trip losses are charged on the way in.
    """
    load = np.asarray(load_kw, dtype=float)
    if np.any(load < 0):
        raise UnitError("load must be non-negative")
    if not (0 <= charge_percentile < discharge_percentile <= 100):
        raise UnitError("percentiles must satisfy 0 <= charge < discharge <= 100")
    hours = len(load)
    if hours == 0:
        return StorageOutcome(
            carbon_without=Carbon(0.0),
            carbon_with=Carbon(0.0),
            grid_kwh_without=0.0,
            grid_kwh_with=0.0,
            state_of_charge_kwh=np.zeros(0),
        )
    intensity = grid.intensity_kg_per_kwh[np.arange(hours) % len(grid)]
    low = np.percentile(grid.intensity_kg_per_kwh, charge_percentile)
    high = np.percentile(grid.intensity_kg_per_kwh, discharge_percentile)

    if low == high:
        # Degenerate (e.g. flat) grid: every hour is simultaneously
        # charge- and discharge-eligible, so the run-based vectorization
        # has a single "segment" and gains nothing — simulate directly.
        soc_series, grid_kwh = _arbitrage_sequential(load, intensity, battery, low, high)
    else:
        soc_series, grid_kwh = _arbitrage_segments(load, intensity, battery, low, high)

    load_series = HourlySeries(load)
    grid_series = HourlySeries(grid_kwh)
    return StorageOutcome(
        carbon_without=load_series.emissions(grid),
        carbon_with=grid_series.emissions(grid),
        grid_kwh_without=load_series.total(),
        grid_kwh_with=grid_series.total(),
        state_of_charge_kwh=soc_series,
    )


def _arbitrage_sequential(
    load: np.ndarray,
    intensity: np.ndarray,
    battery: Battery,
    low: float,
    high: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Reference hour-by-hour simulation of the arbitrage policy."""
    hours = len(load)
    soc = 0.0
    soc_series = np.zeros(hours)
    grid_kwh = np.zeros(hours)
    eff = battery.round_trip_efficiency

    for h in range(hours):
        draw = load[h]
        if intensity[h] <= low and soc < battery.capacity_kwh:
            # Charge: stored energy is discounted by round-trip losses so
            # discharging later is loss-free bookkeeping.
            room = battery.capacity_kwh - soc
            charge = min(battery.max_power_kw, room / eff)
            soc += charge * eff
            draw += charge
        elif intensity[h] >= high and soc > 0:
            discharge = min(battery.max_power_kw, soc, load[h])
            soc -= discharge
            draw -= discharge
        soc_series[h] = soc
        grid_kwh[h] = draw
    return soc_series, grid_kwh


def _arbitrage_segments(
    load: np.ndarray,
    intensity: np.ndarray,
    battery: Battery,
    low: float,
    high: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Run-based vectorized simulation, equivalent to the sequential policy.

    The hourly recursion only has memory through the state of charge, and
    within a run of same-class hours (charge / discharge / neutral) the
    trajectory is an affine recursion until the battery saturates.  Long
    runs are therefore filled with one cumulative sum (``np.cumsum``
    accumulates left-to-right, reproducing the sequential float adds
    bit-for-bit) plus a short scalar tail for the saturation boundary;
    runs shorter than the numpy call overhead is worth stay scalar.
    """
    hours = len(load)
    soc_series = np.zeros(hours)
    grid_kwh = np.zeros(hours)
    cap = battery.capacity_kwh
    power = battery.max_power_kw
    eff = battery.round_trip_efficiency
    # Below this run length the scalar recursion beats the numpy setup
    # cost, so vectorizing would *slow down* choppy (e.g. random) traces.
    short_run = 16

    charge_class = intensity <= low
    discharge_class = ~charge_class & (intensity >= high)
    classes = np.where(charge_class, 1, np.where(discharge_class, 2, 0))
    starts = np.concatenate([[0], np.flatnonzero(np.diff(classes)) + 1])
    ends = np.concatenate([starts[1:], [hours]])

    soc = 0.0
    for i, j in zip(starts, ends):
        cls = classes[i]
        if cls == 0:
            soc_series[i:j] = soc
            grid_kwh[i:j] = load[i:j]
            continue
        k = j - i
        if cls == 1:
            if k < short_run:
                m = 0
            else:
                # Assume full-power charging; the assumption holds exactly
                # up to the first hour where headroom no longer admits it.
                traj = np.cumsum(np.concatenate([[soc], np.full(k, power * eff)]))
                full = (traj[:k] < cap) & ((cap - traj[:k]) / eff >= power)
                m = k if bool(full.all()) else int(np.argmax(~full))
                soc_series[i : i + m] = traj[1 : m + 1]
                grid_kwh[i : i + m] = load[i : i + m] + power
                soc = float(traj[m])
            h = i + m
            while h < j:
                if soc >= cap:
                    # Full battery never drains during a charge run, so the
                    # remaining hours of the run draw the plain load.
                    soc_series[h:j] = soc
                    grid_kwh[h:j] = load[h:j]
                    break
                room = cap - soc
                charge = min(power, room / eff)
                soc += charge * eff
                soc_series[h] = soc
                grid_kwh[h] = load[h] + charge
                h += 1
        else:
            if k < short_run:
                m = 0
            else:
                # Assume the battery covers min(power, load) every hour;
                # the assumption holds exactly until the charge runs out.
                covered = np.minimum(power, load[i:j])
                traj = np.cumsum(np.concatenate([[soc], -covered]))
                okay = traj[:k] >= covered
                m = k if bool(okay.all()) else int(np.argmax(~okay))
                soc_series[i : i + m] = traj[1 : m + 1]
                grid_kwh[i : i + m] = load[i : i + m] - covered[:m]
                soc = float(traj[m])
            h = i + m
            while h < j:
                if soc <= 0.0:
                    # Empty battery never recharges during a discharge run.
                    soc_series[h:j] = soc
                    grid_kwh[h:j] = load[h:j]
                    break
                discharge = min(power, soc, load[h])
                soc -= discharge
                soc_series[h] = soc
                grid_kwh[h] = load[h] - discharge
                h += 1
    return soc_series, grid_kwh
