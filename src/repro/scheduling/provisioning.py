"""Over-provisioning for schedule flexibility: the embodied trade-off.

Section IV-C: "such scheduling algorithms might require server
over-provisioning to allow for flexibility of shifting workloads to times
when carbon-free energy is available.  Furthermore, any additional server
capacity comes with manufacturing carbon cost which needs to be
incorporated into the design space."

The sweep: for a capacity factor f >= 1, run the carbon-aware scheduler
with f x base capacity, charge the extra (f - 1) x servers' amortized
embodied carbon against the window, and report net emissions.  Operational
savings grow with f (more room to shift) but saturate, while embodied cost
grows linearly — producing an interior optimum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.carbon.embodied import AmortizationPolicy, GPU_SERVER_EMBODIED
from repro.carbon.grid import GridTrace
from repro.core.quantities import Carbon
from repro.errors import UnitError
from repro.scheduling.carbon_aware import (
    ScheduleOutcome,
    schedule_carbon_aware,
    schedule_immediate,
)
from repro.scheduling.jobs import DeferrableJob


@dataclass(frozen=True, slots=True)
class ProvisioningPoint:
    """Outcome at one over-provisioning factor."""

    factor: float
    operational: Carbon
    embodied_extra: Carbon
    deadline_misses: int

    @property
    def net(self) -> Carbon:
        return self.operational + self.embodied_extra


def provisioning_sweep(
    jobs: list[DeferrableJob],
    grid: GridTrace,
    horizon_hours: int,
    base_capacity_kw: float,
    factors: np.ndarray,
    server_kw: float = 3.0,
    server_embodied: Carbon = GPU_SERVER_EMBODIED,
    amortization: AmortizationPolicy | None = None,
) -> list[ProvisioningPoint]:
    """Net carbon vs over-provisioning factor.

    The extra capacity's embodied carbon is amortized to the scheduling
    window: extra_servers * rate_per_hour * horizon.
    """
    if base_capacity_kw <= 0 or server_kw <= 0:
        raise UnitError("capacities must be positive")
    amortization = amortization or AmortizationPolicy(average_utilization=1.0)
    rate = amortization.rate_per_utilized_hour(server_embodied)

    points = []
    for f in np.asarray(factors, dtype=float):
        if f < 1.0:
            raise UnitError(f"provisioning factor must be >= 1, got {f}")
        capacity = base_capacity_kw * f
        outcome = schedule_carbon_aware(jobs, grid, horizon_hours, capacity)
        extra_servers = base_capacity_kw * (f - 1.0) / server_kw
        embodied_extra = Carbon(rate * extra_servers * horizon_hours)
        points.append(
            ProvisioningPoint(
                factor=float(f),
                operational=outcome.total_carbon,
                embodied_extra=embodied_extra,
                deadline_misses=outcome.deadline_misses,
            )
        )
    return points


def best_factor(points: list[ProvisioningPoint]) -> ProvisioningPoint:
    """The sweep point with the lowest net carbon."""
    if not points:
        raise UnitError("sweep produced no points")
    return min(points, key=lambda p: p.net.kg)


def baseline_outcome(
    jobs: list[DeferrableJob],
    grid: GridTrace,
    horizon_hours: int,
    base_capacity_kw: float,
) -> ScheduleOutcome:
    """Immediate scheduling at base capacity, for reference."""
    return schedule_immediate(jobs, grid, horizon_hours, base_capacity_kw)
