"""24/7 carbon-free energy (CFE) matching score.

Annual renewable matching (Section III-C) nets *procured* renewable
generation against consumption over a whole year: a datacenter buying as
many renewable MWh as it consumes is "100% renewable" even though solar
delivers at noon and the servers also run at midnight.  The 24/7 CFE
score instead matches hour by hour (Google's definition)::

    CFE = sum_h min(load_h, procured_h) / sum_h load_h

The gap between an annually-matched 100% and an hourly CFE score below
100% is exactly the head-room the paper says carbon-aware scheduling and
storage should close ("There is an interesting design space to achieve
24/7 carbon-free AI computing").
"""

from __future__ import annotations

import numpy as np

from repro.carbon.grid import GridTrace
from repro.core.series import HourlySeries
from repro.errors import UnitError


def _validate_profiles(load_kw: np.ndarray, procured_kw: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    load = np.asarray(load_kw, dtype=float)
    supply = np.asarray(procured_kw, dtype=float)
    if load.shape != supply.shape:
        raise UnitError("load and procured profiles must have equal length")
    if np.any(load < 0) or np.any(supply < 0):
        raise UnitError("profiles must be non-negative")
    return load, supply


def solar_procurement(
    load_kw: np.ndarray, grid: GridTrace, match_fraction: float = 1.0
) -> np.ndarray:
    """A solar-shaped procurement sized to ``match_fraction`` of the load.

    Generation follows the grid trace's solar availability; the contract
    volume is scaled so procured energy equals ``match_fraction`` x total
    load energy — the annual-matching convention made concrete.
    """
    load = np.asarray(load_kw, dtype=float)
    if np.any(load < 0):
        raise UnitError("load must be non-negative")
    if match_fraction < 0:
        raise UnitError("match fraction must be non-negative")
    shape = HourlySeries(grid.solar_share).tile_to(len(load))
    shape_total = shape.total()
    if shape_total == 0:
        raise UnitError("grid trace has no solar generation to procure")
    scale = match_fraction * float(np.sum(load)) / shape_total
    return shape.scale(scale).values


def cfe_score(load_kw: np.ndarray, procured_kw: np.ndarray) -> float:
    """Hourly 24/7 CFE score of a load against a procured supply profile."""
    load, supply = _validate_profiles(load_kw, procured_kw)
    total = float(np.sum(load))
    if total == 0:
        return 1.0
    matched = HourlySeries(load).minimum(HourlySeries(supply))
    return matched.total() / total


def annual_matching_score(load_kw: np.ndarray, procured_kw: np.ndarray) -> float:
    """Volumetric matching: procured energy over consumed energy (capped at 1)."""
    load, supply = _validate_profiles(load_kw, procured_kw)
    total = float(np.sum(load))
    if total == 0:
        return 1.0
    return min(1.0, float(np.sum(supply)) / total)


def cfe_gap(load_kw: np.ndarray, procured_kw: np.ndarray) -> float:
    """Annual-matching score minus 24/7 CFE score (>= 0 by construction)."""
    return annual_matching_score(load_kw, procured_kw) - cfe_score(load_kw, procured_kw)
