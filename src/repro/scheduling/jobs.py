"""Deferrable workload descriptions for carbon-aware scheduling."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.quantities import Carbon
from repro.core.series import HourlySeries
from repro.errors import UnitError
from repro.lifecycle.jobs import JobDurationModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.carbon.grid import GridTrace


@dataclass(frozen=True, slots=True)
class DeferrableJob:
    """A training job that may be shifted in time.

    ``deadline_hour`` is the latest allowed *completion* time; the
    scheduler may start the job anywhere in
    [submit_hour, deadline_hour - duration].
    """

    job_id: int
    submit_hour: int
    duration_hours: int
    power_kw: float
    deadline_hour: int

    def __post_init__(self) -> None:
        if self.duration_hours <= 0:
            raise UnitError("duration must be positive")
        if self.power_kw <= 0:
            raise UnitError("power must be positive")
        if self.deadline_hour < self.submit_hour + self.duration_hours:
            raise UnitError(
                f"job {self.job_id}: deadline {self.deadline_hour} too tight for "
                f"duration {self.duration_hours} from submit {self.submit_hour}"
            )

    @property
    def latest_start(self) -> int:
        return self.deadline_hour - self.duration_hours

    @property
    def energy_kwh(self) -> float:
        return self.power_kw * self.duration_hours

    @property
    def slack_hours(self) -> int:
        return self.latest_start - self.submit_hour

    def power_profile(self) -> HourlySeries:
        """Flat hourly kW draw (≙ kWh per hour) while the job runs."""
        return HourlySeries.constant(self.power_kw, self.duration_hours)

    def carbon_at(self, grid: "GridTrace", start_hour: int) -> Carbon:
        """Operational carbon if the job starts at ``start_hour`` on ``grid``."""
        return self.power_profile().emissions(grid, start_hour=start_hour)


def synthesize_jobs(
    n_jobs: int = 60,
    horizon_hours: int = 168,
    duration_model: JobDurationModel | None = None,
    power_kw_range: tuple[float, float] = (20.0, 120.0),
    slack_factor: float = 3.0,
    seed: int = 0,
) -> list[DeferrableJob]:
    """Generate a deferrable training-job batch over a horizon.

    Durations come from the production training model (truncated to the
    horizon); deadlines allow ``slack_factor`` x duration of slack,
    clipped to the horizon.
    """
    if n_jobs <= 0 or horizon_hours <= 0:
        raise UnitError("jobs and horizon must be positive")
    if slack_factor < 1:
        raise UnitError("slack factor must be >= 1")
    from repro.lifecycle.jobs import PRODUCTION_TRAINING_JOBS

    duration_model = duration_model or PRODUCTION_TRAINING_JOBS
    rng = np.random.default_rng(seed)
    durations = np.clip(
        duration_model.sample_gpu_days(n_jobs, seed) * 24 / 8,  # 8-GPU jobs
        1,
        horizon_hours // 3,
    ).astype(int)
    submits = rng.integers(0, max(1, horizon_hours // 2), size=n_jobs)
    powers = rng.uniform(*power_kw_range, size=n_jobs)
    jobs = []
    for i in range(n_jobs):
        duration = int(durations[i])
        submit = int(submits[i])
        deadline = min(
            horizon_hours, submit + max(duration, int(duration * slack_factor))
        )
        if deadline < submit + duration:
            submit = deadline - duration
        jobs.append(
            DeferrableJob(
                job_id=i,
                submit_hour=max(0, submit),
                duration_hours=duration,
                power_kw=float(powers[i]),
                deadline_hour=deadline,
            )
        )
    return jobs
