"""Telemetry: simulated counters, the emissions tracker, reports, cards."""

from repro.telemetry.counters import (
    LatencyReservoir,
    NvmlPowerSensor,
    RaplCounter,
    ServiceCounters,
    SimulatedHost,
    rapl_delta_uj,
)
from repro.telemetry.model_card import (
    HardwareDisclosure,
    ModelCard,
    carbon_impact_statement,
)
from repro.telemetry.predict import (
    EpochMeasurement,
    TrainingPrediction,
    abort_recommendation,
    predict_training_cost,
    recommend_start_hour,
)
from repro.telemetry.reports import aggregate, read_json, write_csv, write_json
from repro.telemetry.time_varying import (
    TimeVaryingAccountant,
    account_constant_run,
    best_and_worst_start,
)
from repro.telemetry.tracker import (
    EmissionsReport,
    EmissionsTracker,
    track_constant_workload,
)

__all__ = [
    "EmissionsReport",
    "EmissionsTracker",
    "EpochMeasurement",
    "TrainingPrediction",
    "abort_recommendation",
    "predict_training_cost",
    "recommend_start_hour",
    "HardwareDisclosure",
    "LatencyReservoir",
    "ModelCard",
    "NvmlPowerSensor",
    "RaplCounter",
    "ServiceCounters",
    "SimulatedHost",
    "TimeVaryingAccountant",
    "account_constant_run",
    "best_and_worst_start",
    "aggregate",
    "carbon_impact_statement",
    "rapl_delta_uj",
    "read_json",
    "track_constant_workload",
    "write_csv",
    "write_json",
]
