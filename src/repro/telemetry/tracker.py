"""The emissions tracker: poll counters, integrate, convert to carbon.

The easy-to-adopt telemetry Section V-A calls for, in the shape users
know from CodeCarbon::

    host = SimulatedHost()
    with EmissionsTracker(host, intensity=US_AVERAGE) as tracker:
        ...  # workload advances host time via host.advance(...)
    report = tracker.report("my-training-run")

CPU energy comes from RAPL counter deltas (wraparound-safe); GPU energy
from trapezoidal integration of NVML power polls; facility overhead from
the PUE; carbon from the configured intensity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.carbon.intensity import CarbonIntensity, US_AVERAGE
from repro.core.quantities import Carbon, Energy, Power
from repro.energy.meter import EnergyMeter
from repro.energy.pue import Datacenter
from repro.errors import TelemetryError
from repro.telemetry.counters import SimulatedHost, rapl_delta_uj


@dataclass(frozen=True, slots=True)
class EmissionsReport:
    """Outcome of one tracked run."""

    label: str
    duration_s: float
    cpu_energy: Energy
    gpu_energy: Energy
    facility_energy: Energy
    carbon: Carbon
    intensity: CarbonIntensity
    pue: float
    n_polls: int

    @property
    def it_energy(self) -> Energy:
        return self.cpu_energy + self.gpu_energy

    def as_dict(self) -> dict[str, object]:
        return {
            "label": self.label,
            "duration_s": self.duration_s,
            "cpu_energy_kwh": self.cpu_energy.kwh,
            "gpu_energy_kwh": self.gpu_energy.kwh,
            "it_energy_kwh": self.it_energy.kwh,
            "facility_energy_kwh": self.facility_energy.kwh,
            "carbon_kg": self.carbon.kg,
            "intensity_kg_per_kwh": self.intensity.kg_per_kwh,
            "intensity_label": self.intensity.label,
            "pue": self.pue,
            "n_polls": self.n_polls,
        }


class EmissionsTracker:
    """Context manager that meters a :class:`SimulatedHost`.

    Poll cadence is up to the caller: call :meth:`poll` whenever the
    workload has advanced the host clock (real trackers poll on a timer
    thread; in simulation explicit polls keep runs deterministic).
    """

    def __init__(
        self,
        host: SimulatedHost,
        intensity: CarbonIntensity = US_AVERAGE,
        datacenter: Datacenter | None = None,
    ) -> None:
        self.host = host
        self.intensity = intensity
        self.datacenter = datacenter or Datacenter()
        self._running = False
        self._start_s = 0.0
        self._last_rapl = 0
        self._cpu_uj = 0
        self._gpu_meters: list[EnergyMeter] = []
        self._n_polls = 0

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        if self._running:
            raise TelemetryError("tracker already started")
        self._running = True
        self._start_s = self.host.now_s()
        self._last_rapl = self.host.rapl.read_uj()
        self._cpu_uj = 0
        self._gpu_meters = [EnergyMeter() for _ in self.host.gpu_sensors]
        self._n_polls = 0
        self.poll()

    def stop(self) -> None:
        if not self._running:
            raise TelemetryError("tracker not running")
        self.poll()
        self._running = False

    def __enter__(self) -> "EmissionsTracker":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- measurement --------------------------------------------------------
    def poll(self) -> None:
        """Sample all counters at the host's current clock."""
        if not self._running:
            raise TelemetryError("poll() outside a running tracker")
        now = self.host.now_s()
        reading = self.host.rapl.read_uj()
        self._cpu_uj += rapl_delta_uj(
            self._last_rapl, reading, self.host.rapl.max_energy_uj
        )
        self._last_rapl = reading
        for sensor, meter in zip(self.host.gpu_sensors, self._gpu_meters):
            meter.record(now, Power(sensor.read_mw() / 1000.0))
        self._n_polls += 1

    # -- results ------------------------------------------------------------
    def cpu_energy(self) -> Energy:
        return Energy.from_joules(self._cpu_uj / 1e6)

    def gpu_energy(self) -> Energy:
        total = 0.0
        for meter in self._gpu_meters:
            total += meter.total_energy().kwh
        return Energy(total)

    def report(self, label: str = "tracked-run") -> EmissionsReport:
        if self._running:
            raise TelemetryError("stop the tracker before reporting")
        cpu = self.cpu_energy()
        gpu = self.gpu_energy()
        facility = self.datacenter.facility_energy(cpu + gpu)
        return EmissionsReport(
            label=label,
            duration_s=self.host.now_s() - self._start_s,
            cpu_energy=cpu,
            gpu_energy=gpu,
            facility_energy=facility,
            carbon=self.intensity.emissions(facility),
            intensity=self.intensity,
            pue=self.datacenter.pue,
            n_polls=self._n_polls,
        )


def track_constant_workload(
    host: SimulatedHost,
    duration_s: float,
    poll_interval_s: float = 10.0,
    intensity: CarbonIntensity = US_AVERAGE,
) -> EmissionsReport:
    """Convenience: track a steady workload for ``duration_s`` seconds."""
    if duration_s <= 0 or poll_interval_s <= 0:
        raise TelemetryError("durations must be positive")
    tracker = EmissionsTracker(host, intensity)
    with tracker:
        remaining = duration_s
        while remaining > 0:
            step = min(poll_interval_s, remaining)
            host.advance(step)
            tracker.poll()
            remaining -= step
    return tracker.report("constant-workload")
