"""Predictive emission tracking (carbontracker-style, Section V-A).

The open-source carbontracker tool measures the first few training
epochs, extrapolates the full run's energy/carbon, and lets the user
abort or reschedule before the cost is sunk.  This module reproduces
that workflow on top of the library's tracker and grid model:

* fit energy-per-epoch from the first ``k`` measured epochs (with a
  linear trend term, since per-epoch cost can drift);
* predict total energy/carbon for the planned epoch count, with a
  simple prediction interval;
* recommend the greenest start window on a grid trace for the remaining
  work (connecting prediction to carbon-aware scheduling).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.carbon.grid import GridTrace
from repro.carbon.intensity import CarbonIntensity, US_AVERAGE
from repro.core.quantities import Carbon, Energy
from repro.core.series import HourlySeries
from repro.errors import TelemetryError


@dataclass(frozen=True, slots=True)
class EpochMeasurement:
    """Energy and duration of one measured epoch."""

    epoch: int
    energy: Energy
    duration_s: float

    def __post_init__(self) -> None:
        if self.epoch < 0 or self.duration_s <= 0:
            raise TelemetryError("epoch index and duration must be valid")


@dataclass(frozen=True, slots=True)
class TrainingPrediction:
    """Extrapolated full-run cost with a crude uncertainty band."""

    planned_epochs: int
    measured_epochs: int
    predicted_energy: Energy
    predicted_energy_low: Energy
    predicted_energy_high: Energy
    predicted_duration_hours: float
    predicted_carbon: Carbon

    @property
    def remaining_energy(self) -> Energy:
        """Energy not yet spent (prediction minus measured share)."""
        share = self.measured_epochs / self.planned_epochs
        return self.predicted_energy * (1.0 - share)


def predict_training_cost(
    measurements: list[EpochMeasurement],
    planned_epochs: int,
    intensity: CarbonIntensity = US_AVERAGE,
) -> TrainingPrediction:
    """Extrapolate full-training cost from early-epoch measurements.

    Fits energy-per-epoch as a + b*epoch (least squares) and integrates
    over the planned epochs; the band is +/- 2 RMSE of the fit per epoch,
    accumulated.  Needs >= 2 measurements.
    """
    if planned_epochs <= 0:
        raise TelemetryError("planned epochs must be positive")
    if len(measurements) < 2:
        raise TelemetryError("need at least two measured epochs to extrapolate")
    if len(measurements) > planned_epochs:
        raise TelemetryError("measured more epochs than planned")

    epochs = np.array([m.epoch for m in measurements], dtype=float)
    energies = np.array([m.energy.kwh for m in measurements])
    durations = np.array([m.duration_s for m in measurements])

    slope, intercept = np.polyfit(epochs, energies, 1)
    future = np.arange(planned_epochs, dtype=float)
    per_epoch = np.maximum(0.0, intercept + slope * future)
    total = float(np.sum(per_epoch))

    residuals = energies - (intercept + slope * epochs)
    rmse = float(np.sqrt(np.mean(residuals**2)))
    band = 2.0 * rmse * planned_epochs

    mean_duration = float(np.mean(durations))
    return TrainingPrediction(
        planned_epochs=planned_epochs,
        measured_epochs=len(measurements),
        predicted_energy=Energy(total),
        predicted_energy_low=Energy(max(0.0, total - band)),
        predicted_energy_high=Energy(total + band),
        predicted_duration_hours=mean_duration * planned_epochs / 3600.0,
        predicted_carbon=intensity.emissions(Energy(total)),
    )


def recommend_start_hour(
    prediction: TrainingPrediction, grid: GridTrace
) -> tuple[int, Carbon, Carbon]:
    """Greenest start hour for the predicted run on a grid trace.

    Returns (start hour, carbon if started now, carbon at the recommended
    hour).  The difference is what carbontracker-style tools surface as
    "schedule your run at ... to save X%".
    """
    duration_hours = max(1, int(np.ceil(prediction.predicted_duration_hours)))
    duration_hours = min(duration_hours, len(grid))
    kwh_per_hour = prediction.predicted_energy.kwh / duration_hours
    profile = HourlySeries.constant(kwh_per_hour, duration_hours)

    now_carbon = profile.emissions(grid, start_hour=0)
    best_start = grid.greenest_window(duration_hours)
    best_carbon = profile.emissions(grid, start_hour=best_start)
    return best_start, now_carbon, best_carbon


def abort_recommendation(
    prediction: TrainingPrediction, budget: Carbon
) -> dict[str, float | bool]:
    """Whether the planned run blows a carbon budget, and by how much.

    The actionable output the paper's telemetry section asks for: know
    *before* the cost is sunk.
    """
    over = prediction.predicted_carbon.kg > budget.kg
    return {
        "over_budget": over,
        "predicted_kg": prediction.predicted_carbon.kg,
        "budget_kg": budget.kg,
        "overshoot_fraction": (
            prediction.predicted_carbon.kg / budget.kg - 1.0 if budget.kg else 0.0
        ),
    }
