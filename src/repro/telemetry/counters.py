"""Simulated hardware energy counters, plus service request counters.

Real telemetry tools (CodeCarbon, carbontracker, experiment-impact-tracker)
poll Intel RAPL energy counters for CPUs and NVML power readings for
GPUs.  Offline we simulate those interfaces faithfully:

* :class:`RaplCounter` — a monotonically increasing *energy* counter in
  microjoules that wraps at a configurable maximum, exactly like the
  ``energy_uj`` sysfs files (consumers must handle wraparound);
* :class:`NvmlPowerSensor` — an instantaneous *power* reading in
  milliwatts with realistic quantization and sampling noise.

A :class:`SimulatedHost` wires devices to a workload profile so the
tracker exercises the identical polling/integration code path it would
run against real counters.

The carbon-query service (:mod:`repro.service`) reports through the
request-side counters in this module: :class:`LatencyReservoir` (bounded
latency samples with percentile snapshots) and :class:`ServiceCounters`
(request counts by endpoint/status, per-endpoint latency, response-cache
hit rates).  ``GET /metrics`` and the ``--metrics-json`` export surface
their snapshots.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from dataclasses import dataclass, field

import numpy as np

from repro.energy.devices import CPU_SERVER, DeviceSpec, V100
from repro.energy.power_model import PowerModel
from repro.errors import TelemetryError, UnitError

#: RAPL counters wrap at 2^32 microjoules on many platforms (~4.3 kJ);
#: we default to a larger-but-still-wrapping 60 J x 2^16 range to exercise
#: wraparound handling in tests without requiring long runs.
DEFAULT_RAPL_MAX_UJ = 262_143_328_850


@dataclass
class RaplCounter:
    """A wrapping cumulative energy counter in microjoules."""

    max_energy_uj: int = DEFAULT_RAPL_MAX_UJ
    _energy_uj: float = 0.0

    def __post_init__(self) -> None:
        if self.max_energy_uj <= 0:
            raise UnitError("counter range must be positive")

    def advance(self, watts: float, seconds: float) -> None:
        """Accumulate energy at ``watts`` for ``seconds``."""
        if watts < 0 or seconds < 0:
            raise UnitError("power and duration must be non-negative")
        self._energy_uj = (self._energy_uj + watts * seconds * 1e6) % self.max_energy_uj

    def read_uj(self) -> int:
        """Current counter value (wraps like the sysfs file)."""
        return int(self._energy_uj)


def rapl_delta_uj(before: int, after: int, max_energy_uj: int = DEFAULT_RAPL_MAX_UJ) -> int:
    """Energy between two RAPL reads, handling a single wraparound."""
    if before < 0 or after < 0:
        raise TelemetryError("counter reads must be non-negative")
    if after >= before:
        return after - before
    return max_energy_uj - before + after


@dataclass
class NvmlPowerSensor:
    """An instantaneous power sensor in milliwatts (NVML-style)."""

    quantization_mw: int = 1000
    noise_fraction: float = 0.02
    _current_watts: float = 0.0
    _rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))

    def set_power(self, watts: float) -> None:
        if watts < 0:
            raise UnitError("power must be non-negative")
        self._current_watts = watts

    def read_mw(self) -> int:
        noisy = self._current_watts * (
            1.0 + self._rng.normal(0.0, self.noise_fraction)
        )
        mw = max(0.0, noisy) * 1000.0
        return int(round(mw / self.quantization_mw) * self.quantization_mw)


@dataclass
class SimulatedHost:
    """A host whose counters follow a scripted utilization profile.

    ``advance(seconds)`` moves simulated time forward; the CPU RAPL
    counter integrates host power and each GPU sensor reports
    utilization-dependent power.
    """

    cpu: DeviceSpec = CPU_SERVER
    gpus: tuple[DeviceSpec, ...] = (V100,)
    cpu_utilization: float = 0.3
    gpu_utilization: float = 0.6
    seed: int = 0

    def __post_init__(self) -> None:
        self.rapl = RaplCounter()
        self.gpu_sensors = tuple(
            NvmlPowerSensor(_rng=np.random.default_rng(self.seed + i))
            for i in range(len(self.gpus))
        )
        self.clock_s = 0.0
        self._sync_sensors()

    def _sync_sensors(self) -> None:
        for spec, sensor in zip(self.gpus, self.gpu_sensors):
            sensor.set_power(PowerModel(spec).power_at(self.gpu_utilization).watts)

    def set_utilization(self, cpu: float | None = None, gpu: float | None = None) -> None:
        if cpu is not None:
            if not (0 <= cpu <= 1):
                raise UnitError("cpu utilization must be in [0, 1]")
            self.cpu_utilization = cpu
        if gpu is not None:
            if not (0 <= gpu <= 1):
                raise UnitError("gpu utilization must be in [0, 1]")
            self.gpu_utilization = gpu
        self._sync_sensors()

    def cpu_power_watts(self) -> float:
        return PowerModel(self.cpu).power_at(self.cpu_utilization).watts

    def advance(self, seconds: float) -> None:
        """Advance simulated time, accumulating CPU energy."""
        if seconds < 0:
            raise UnitError("time must move forward")
        self.rapl.advance(self.cpu_power_watts(), seconds)
        self.clock_s += seconds

    def now_s(self) -> float:
        return self.clock_s


# ---------------------------------------------------------------------------
# Service request counters (the carbon-query service's /metrics source)
# ---------------------------------------------------------------------------

#: Percentiles reported by every latency snapshot (nearest-rank).
LATENCY_PERCENTILES: tuple[int, ...] = (50, 90, 99)


class LatencyReservoir:
    """A bounded reservoir of latency samples with percentile snapshots.

    Keeps the most recent ``capacity`` observations (a sliding window —
    long soaks report current behavior, not the cold-start transient)
    while ``count``/``total_s`` track every observation ever made.
    Thread-safe; snapshots use the nearest-rank method on a sorted copy.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise TelemetryError(f"reservoir capacity must be positive, got {capacity}")
        self._samples: deque[float] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            raise TelemetryError(f"latency must be non-negative, got {seconds}")
        with self._lock:
            self._samples.append(seconds)
            self.count += 1
            self.total_s += seconds
            self.max_s = max(self.max_s, seconds)

    @staticmethod
    def _nearest_rank(ordered: list[float], percentile: int) -> float:
        rank = max(1, int(np.ceil(percentile / 100.0 * len(ordered))))
        return ordered[rank - 1]

    def snapshot(self) -> dict[str, object]:
        """Mean, max, and the :data:`LATENCY_PERCENTILES` of the window."""
        with self._lock:
            ordered = sorted(self._samples)
            count, total, peak = self.count, self.total_s, self.max_s
        out: dict[str, object] = {
            "count": count,
            "mean_s": (total / count) if count else 0.0,
            "max_s": peak,
        }
        for percentile in LATENCY_PERCENTILES:
            out[f"p{percentile}_s"] = (
                self._nearest_rank(ordered, percentile) if ordered else 0.0
            )
        return out


class ServiceCounters:
    """Request/latency/hit-rate counters of the carbon-query service.

    One instance per service; every completed HTTP exchange is recorded
    with its endpoint, status, wall latency, and (for query endpoints)
    whether the response came from the LRU (``cache_state`` of ``"hit"``
    or ``"miss"``).  Thread-safe, so the load generator and tests can
    snapshot while the event loop records.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_endpoint: Counter[str] = Counter()
        self._by_status: Counter[int] = Counter()
        self._cache_states: Counter[str] = Counter()
        self._latency: dict[str, LatencyReservoir] = {}

    def record(
        self,
        endpoint: str,
        status: int,
        seconds: float,
        cache_state: str | None = None,
    ) -> None:
        """Record one completed request."""
        with self._lock:
            self._by_endpoint[endpoint] += 1
            self._by_status[int(status)] += 1
            if cache_state is not None:
                self._cache_states[cache_state] += 1
            reservoir = self._latency.get(endpoint)
            if reservoir is None:
                reservoir = self._latency[endpoint] = LatencyReservoir()
        reservoir.observe(seconds)

    def snapshot(self) -> dict[str, object]:
        """The ``/metrics`` requests block: totals, splits, latencies."""
        with self._lock:
            by_endpoint = dict(sorted(self._by_endpoint.items()))
            by_status = {str(k): v for k, v in sorted(self._by_status.items())}
            cache_states = dict(sorted(self._cache_states.items()))
            reservoirs = dict(self._latency)
        lookups = cache_states.get("hit", 0) + cache_states.get("miss", 0)
        return {
            "total": sum(by_endpoint.values()),
            "by_endpoint": by_endpoint,
            "by_status": by_status,
            "rejected_429": by_status.get("429", 0),
            "timeouts_504": by_status.get("504", 0),
            "server_errors_5xx": sum(
                count for status, count in by_status.items() if status.startswith("5")
            ),
            "cache_states": cache_states,
            "answered_from_cache_rate": (
                cache_states.get("hit", 0) / lookups if lookups else None
            ),
            "latency_s": {
                endpoint: reservoirs[endpoint].snapshot() for endpoint in sorted(reservoirs)
            },
        }
