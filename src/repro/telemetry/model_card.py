"""Model cards with carbon impact statements (Section V-A).

"New models must be associated with a model card that ... describes the
model's overall carbon footprint to train and conduct inference", and
papers should disclose "hardware platforms, the number of machines, total
runtime used to produce results" as a first step.

:func:`carbon_impact_statement` renders that disclosure;
:class:`ModelCard` is the fuller Mitchell-et-al-style card with the
environmental section included.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.equivalences import describe as describe_equivalence
from repro.core.footprint import TotalFootprint
from repro.errors import TelemetryError
from repro.telemetry.tracker import EmissionsReport


@dataclass(frozen=True, slots=True)
class HardwareDisclosure:
    """The minimum hardware disclosure the paper asks of publications."""

    platform: str
    n_devices: int
    total_runtime_hours: float
    region: str = "unspecified"

    def __post_init__(self) -> None:
        if self.n_devices <= 0 or self.total_runtime_hours < 0:
            raise TelemetryError("disclosure requires devices and runtime")


def carbon_impact_statement(
    disclosure: HardwareDisclosure, report: EmissionsReport
) -> str:
    """The per-paper carbon impact statement as formatted text."""
    lines = [
        "Carbon Impact Statement",
        "-----------------------",
        f"Experiments ran on {disclosure.n_devices} x {disclosure.platform} "
        f"for a total of {disclosure.total_runtime_hours:,.1f} hours "
        f"(region: {disclosure.region}).",
        f"Measured energy: {report.facility_energy} "
        f"(IT {report.it_energy}, PUE {report.pue:.2f}).",
        f"Estimated emissions: {report.carbon} at "
        f"{report.intensity.g_per_kwh:,.0f} gCO2e/kWh ({report.intensity.label}).",
        describe_equivalence(report.carbon),
    ]
    return "\n".join(lines)


@dataclass(frozen=True)
class ModelCard:
    """A model card whose environmental section is first-class."""

    model_name: str
    intended_use: str
    training_data: str
    metrics: dict[str, float] = field(default_factory=dict)
    footprint: TotalFootprint | None = None
    disclosure: HardwareDisclosure | None = None

    def render(self) -> str:
        """Markdown rendering of the card."""
        lines = [
            f"# Model Card: {self.model_name}",
            "",
            "## Intended Use",
            self.intended_use,
            "",
            "## Training Data",
            self.training_data,
        ]
        if self.metrics:
            lines += ["", "## Metrics"]
            lines += [f"- {k}: {v:.4g}" for k, v in sorted(self.metrics.items())]
        lines += ["", "## Environmental Impact"]
        if self.footprint is None:
            lines.append(
                "No footprint recorded — attach a TotalFootprint to disclose "
                "operational and embodied carbon."
            )
        else:
            fp = self.footprint
            lines += [
                f"- Total footprint: {fp.carbon}",
                f"- Operational: {fp.operational.carbon} "
                f"({fp.operational_share:.0%})",
                f"- Embodied (amortized): {fp.embodied.amortized} "
                f"({fp.embodied_share:.0%})",
                f"- {describe_equivalence(fp.carbon)}",
            ]
        if self.disclosure is not None:
            d = self.disclosure
            lines += [
                "",
                "## Hardware Disclosure",
                f"- Platform: {d.platform}",
                f"- Devices: {d.n_devices}",
                f"- Total runtime: {d.total_runtime_hours:,.1f} hours",
                f"- Region: {d.region}",
            ]
        return "\n".join(lines)
