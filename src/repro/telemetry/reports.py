"""Persisting and aggregating emission reports (JSON / CSV)."""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.core.canonical import canonical_dumps
from repro.core.quantities import Carbon, Energy
from repro.errors import TelemetryError
from repro.telemetry.tracker import EmissionsReport

_CSV_FIELDS = (
    "label",
    "duration_s",
    "cpu_energy_kwh",
    "gpu_energy_kwh",
    "it_energy_kwh",
    "facility_energy_kwh",
    "carbon_kg",
    "intensity_kg_per_kwh",
    "intensity_label",
    "pue",
    "n_polls",
)


def write_json(reports: list[EmissionsReport], path: str | Path) -> Path:
    """Write reports as a JSON array; returns the path."""
    path = Path(path)
    path.write_text(canonical_dumps([r.as_dict() for r in reports]))
    return path


def read_json(path: str | Path) -> list[dict[str, object]]:
    """Read a report JSON file back as dictionaries."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, list):
        raise TelemetryError(f"{path}: expected a JSON array of reports")
    return data


def write_csv(reports: list[EmissionsReport], path: str | Path) -> Path:
    """Write reports as CSV with a fixed header; returns the path."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_CSV_FIELDS)
        writer.writeheader()
        for report in reports:
            writer.writerow({k: report.as_dict()[k] for k in _CSV_FIELDS})
    return path


def aggregate(reports: list[EmissionsReport]) -> dict[str, object]:
    """Totals across runs — the numbers a carbon impact statement needs."""
    if not reports:
        raise TelemetryError("cannot aggregate zero reports")
    total_energy = Energy(sum(r.facility_energy.kwh for r in reports))
    total_carbon = Carbon(sum(r.carbon.kg for r in reports))
    return {
        "n_runs": len(reports),
        "total_duration_s": sum(r.duration_s for r in reports),
        "total_facility_energy_kwh": total_energy.kwh,
        "total_carbon_kg": total_carbon.kg,
        "mean_carbon_kg": total_carbon.kg / len(reports),
    }
