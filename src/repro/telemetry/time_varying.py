"""Time-varying-intensity emission tracking.

Static-intensity accounting (one kgCO2e/kWh for the whole run) is what
most tools default to; production trackers instead resolve each interval
of consumption against the grid's *hourly* intensity.  For long training
runs on renewable-heavy grids the two disagree substantially — the same
gap 24/7 CFE scoring exposes at the fleet level (Section IV-C), here at
the single-run level.

:class:`TimeVaryingAccountant` consumes (timestamp, energy) intervals —
e.g. from :class:`~repro.telemetry.tracker.EmissionsTracker` polls — and
prices each against a :class:`~repro.carbon.grid.GridTrace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.carbon.grid import GridTrace
from repro.carbon.intensity import CarbonIntensity
from repro.core.quantities import Carbon, Energy
from repro.core.series import HourlySeries
from repro.errors import TelemetryError


@dataclass
class TimeVaryingAccountant:
    """Prices energy intervals against an hourly grid trace.

    ``start_hour`` anchors t=0 of the run to an hour of the trace (the
    trace tiles periodically for longer runs).
    """

    grid: GridTrace
    start_hour: int = 0
    _interval_kwh: list[float] = field(default_factory=list, repr=False)
    _interval_hours: list[float] = field(default_factory=list, repr=False)
    _clock_h: float = 0.0

    def record_interval(self, energy: Energy, duration_s: float) -> None:
        """Append one consumption interval (chronological order)."""
        if duration_s <= 0:
            raise TelemetryError("interval duration must be positive")
        self._interval_kwh.append(energy.kwh)
        self._interval_hours.append(duration_s / 3600.0)
        self._clock_h += duration_s / 3600.0

    @property
    def duration_hours(self) -> float:
        return self._clock_h

    def total_energy(self) -> Energy:
        return Energy(sum(self._interval_kwh))

    def carbon(self) -> Carbon:
        """Sum of interval energies priced at their hours' intensities.

        Intervals spanning hour boundaries are split proportionally, then
        the binned hourly profile is integrated once against the trace.
        """
        profile = np.zeros(int(np.ceil(self._clock_h)) + 1)
        clock = float(self.start_hour)
        for kwh, hours in zip(self._interval_kwh, self._interval_hours):
            remaining = hours
            position = clock
            while remaining > 1e-12:
                to_boundary = (int(position) + 1) - position
                step = min(remaining, to_boundary)
                share = step / hours
                profile[int(position) - self.start_hour] += kwh * share
                position += step
                remaining -= step
            clock += hours
        return HourlySeries(profile).emissions(self.grid, start_hour=self.start_hour)

    def static_carbon(self, intensity: CarbonIntensity | None = None) -> Carbon:
        """The naive single-intensity estimate for comparison.

        Defaults to the trace's own average intensity — the number a
        static tracker configured with the regional average would report.
        """
        intensity = intensity or self.grid.average_intensity()
        return intensity.emissions(self.total_energy())

    def attribution_error(self) -> float:
        """Relative gap between static and time-resolved accounting."""
        true = self.carbon().kg
        naive = self.static_carbon().kg
        if true == 0:
            return 0.0
        return (naive - true) / true


def account_constant_run(
    grid: GridTrace,
    power_kw: float,
    duration_hours: float,
    start_hour: int = 0,
) -> TimeVaryingAccountant:
    """Convenience: a constant-power run accounted hour by hour."""
    if power_kw < 0 or duration_hours <= 0:
        raise TelemetryError("power and duration must be valid")
    accountant = TimeVaryingAccountant(grid=grid, start_hour=start_hour)
    whole_hours = int(duration_hours)
    for _ in range(whole_hours):
        accountant.record_interval(Energy(power_kw), 3600.0)
    frac = duration_hours - whole_hours
    if frac > 1e-9:
        accountant.record_interval(Energy(power_kw * frac), frac * 3600.0)
    return accountant


def best_and_worst_start(
    grid: GridTrace, power_kw: float, duration_hours: float
) -> dict[str, float]:
    """Carbon of the same run started at every hour of the trace.

    Quantifies how much start-time matters — the single-run version of
    carbon-aware scheduling.
    """
    if duration_hours <= 0:
        raise TelemetryError("duration must be positive")
    results = np.array(
        [
            account_constant_run(grid, power_kw, duration_hours, start).carbon().kg
            for start in range(len(grid))
        ]
    )
    return {
        "best_kg": float(results.min()),
        "worst_kg": float(results.max()),
        "mean_kg": float(results.mean()),
        "best_start_hour": int(np.argmin(results)),
        "worst_over_best": float(results.max() / results.min()),
    }
