"""Device catalog: power and capability specs for the hardware the paper
discusses — datacenter accelerators (P100/V100/A100, TPUs), CPU servers,
and edge hardware (client devices, wireless routers).

TDP and memory values are public datasheet numbers.  ``idle_fraction`` is
the fraction of TDP a device draws when powered but idle — the static
power the paper flags as "non-trivial ... in the context of the overall
data center electricity footprint".
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.quantities import Power
from repro.errors import UnitError


class DeviceClass(str, Enum):
    """Broad hardware category a device belongs to."""

    GPU = "gpu"
    TPU = "tpu"
    CPU = "cpu"
    MOBILE = "mobile"
    ROUTER = "router"


@dataclass(frozen=True, slots=True)
class DeviceSpec:
    """Static description of one device type."""

    name: str
    device_class: DeviceClass
    tdp_watts: float
    idle_fraction: float
    memory_gb: float = 0.0
    peak_tflops: float = 0.0
    release_year: int = 0

    def __post_init__(self) -> None:
        if self.tdp_watts <= 0:
            raise UnitError(f"TDP must be positive, got {self.tdp_watts}")
        if not (0 <= self.idle_fraction <= 1):
            raise UnitError(
                f"idle_fraction must be in [0, 1], got {self.idle_fraction}"
            )
        if self.memory_gb < 0 or self.peak_tflops < 0:
            raise UnitError("memory and peak throughput must be non-negative")

    @property
    def tdp(self) -> Power:
        return Power(self.tdp_watts)

    @property
    def idle_power(self) -> Power:
        return Power(self.tdp_watts * self.idle_fraction)


# ---------------------------------------------------------------------------
# Datacenter accelerators
# ---------------------------------------------------------------------------
P100 = DeviceSpec("NVIDIA P100", DeviceClass.GPU, 250.0, 0.18, 16.0, 10.6, 2016)
V100 = DeviceSpec("NVIDIA V100", DeviceClass.GPU, 300.0, 0.15, 32.0, 15.7, 2018)
A100 = DeviceSpec("NVIDIA A100", DeviceClass.GPU, 400.0, 0.14, 80.0, 19.5, 2021)
# Tensor-core (mixed-precision) peaks for the same silicon: dense LLM
# training and serving run on tensor cores, so MFU-based device-hour
# accounting must divide by these, not the FP32 datasheet numbers above.
V100_TENSOR = DeviceSpec(
    "NVIDIA V100 (tensor)", DeviceClass.GPU, 300.0, 0.15, 32.0, 125.0, 2018
)
A100_TENSOR = DeviceSpec(
    "NVIDIA A100 (tensor)", DeviceClass.GPU, 400.0, 0.14, 80.0, 312.0, 2021
)
TPU_V2 = DeviceSpec("Google TPU v2", DeviceClass.TPU, 280.0, 0.15, 16.0, 45.0, 2017)
TPU_V3 = DeviceSpec("Google TPU v3", DeviceClass.TPU, 450.0, 0.15, 32.0, 123.0, 2018)

# ---------------------------------------------------------------------------
# Servers (host CPU complex, excluding accelerators)
# ---------------------------------------------------------------------------
CPU_SERVER = DeviceSpec("2-socket CPU server", DeviceClass.CPU, 400.0, 0.35, 256.0, 3.0, 2019)
WEB_SERVER = DeviceSpec("1-socket web server", DeviceClass.CPU, 200.0, 0.35, 64.0, 1.0, 2019)
STORAGE_SERVER = DeviceSpec("storage server", DeviceClass.CPU, 350.0, 0.45, 128.0, 0.5, 2019)

# ---------------------------------------------------------------------------
# Edge hardware (FL methodology, Appendix B: 3 W device, 7.5 W router)
# ---------------------------------------------------------------------------
CLIENT_DEVICE = DeviceSpec("client device (phone)", DeviceClass.MOBILE, 3.0, 0.1, 6.0, 0.01, 2020)
WIRELESS_ROUTER = DeviceSpec("wireless router", DeviceClass.ROUTER, 7.5, 1.0, 0.0, 0.0, 2020)

_CATALOG: dict[str, DeviceSpec] = {
    spec.name: spec
    for spec in (
        P100,
        V100,
        V100_TENSOR,
        A100,
        A100_TENSOR,
        TPU_V2,
        TPU_V3,
        CPU_SERVER,
        WEB_SERVER,
        STORAGE_SERVER,
        CLIENT_DEVICE,
        WIRELESS_ROUTER,
    )
}


def catalog() -> tuple[str, ...]:
    """Names of all built-in device specs."""
    return tuple(sorted(_CATALOG))


def device(name: str) -> DeviceSpec:
    """Look up a built-in device spec by name."""
    try:
        return _CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; known devices: {', '.join(catalog())}"
        ) from None


def gpu_memory_growth_ratio(older: DeviceSpec, newer: DeviceSpec) -> float:
    """Memory capacity ratio between two accelerator generations.

    The paper's observation: V100 (32 GB, 2018) -> A100 (80 GB, 2021) is
    <2x every 2 years while model sizes grew 20x.
    """
    if older.memory_gb <= 0:
        raise UnitError("older device has no memory capacity recorded")
    return newer.memory_gb / older.memory_gb
