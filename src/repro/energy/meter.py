"""Energy metering: integrate power samples over time.

Used both by the fleet simulator (hourly power series) and the telemetry
tracker (second-scale counter polls).  Integration is trapezoidal over
irregular timestamps, or a simple sum for regular hourly series.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import units
from repro.core.quantities import Energy, Power
from repro.errors import UnitError


def integrate_power_hours(watts: np.ndarray, hours_per_sample: float = 1.0) -> Energy:
    """Energy of a regularly-sampled power series.

    Each sample is treated as the average power over its interval, so the
    integral is a plain sum — exact for the hourly fleet simulations.
    """
    w = np.asarray(watts, dtype=float)
    if np.any(w < 0):
        raise UnitError("power samples must be non-negative")
    if hours_per_sample <= 0:
        raise UnitError(f"sample interval must be positive, got {hours_per_sample}")
    return Energy(float(np.sum(w)) * hours_per_sample / units.WH_PER_KWH)


def integrate_power_timestamps(watts: np.ndarray, timestamps_s: np.ndarray) -> Energy:
    """Trapezoidal energy integral over irregular timestamps (seconds)."""
    w = np.asarray(watts, dtype=float)
    t = np.asarray(timestamps_s, dtype=float)
    if w.shape != t.shape:
        raise UnitError("power and timestamp arrays must have equal shape")
    if len(w) < 2:
        return Energy.zero()
    if np.any(np.diff(t) < 0):
        raise UnitError("timestamps must be non-decreasing")
    if np.any(w < 0):
        raise UnitError("power samples must be non-negative")
    joules = float(np.trapezoid(w, t))
    return Energy.from_joules(joules)


@dataclass
class EnergyMeter:
    """Accumulates (timestamp, power) samples and integrates on demand.

    The meter is append-only; :meth:`total_energy` may be called at any
    point to get the energy accumulated so far.
    """

    _timestamps: list[float] = field(default_factory=list)
    _watts: list[float] = field(default_factory=list)

    def record(self, timestamp_s: float, power: Power) -> None:
        """Append a power sample taken at ``timestamp_s`` seconds."""
        if self._timestamps and timestamp_s < self._timestamps[-1]:
            raise UnitError(
                f"samples must be recorded in time order "
                f"({timestamp_s} < {self._timestamps[-1]})"
            )
        self._timestamps.append(float(timestamp_s))
        self._watts.append(power.watts)

    @property
    def sample_count(self) -> int:
        return len(self._timestamps)

    @property
    def duration_s(self) -> float:
        if len(self._timestamps) < 2:
            return 0.0
        return self._timestamps[-1] - self._timestamps[0]

    def total_energy(self) -> Energy:
        """Trapezoidal integral over all recorded samples."""
        return integrate_power_timestamps(
            np.array(self._watts), np.array(self._timestamps)
        )

    def average_power(self) -> Power:
        """Mean power over the recording window (zero if <2 samples)."""
        if self.duration_s == 0:
            return Power.zero()
        kwh = self.total_energy().kwh
        hours = self.duration_s / units.SECONDS_PER_HOUR
        return Power(kwh * units.WH_PER_KWH / hours)
