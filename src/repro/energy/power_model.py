"""Utilization-dependent power model.

Real devices draw a large static (idle) power plus a roughly linear
dynamic component with utilization.  The model::

    P(u) = P_tdp * (idle_fraction + (1 - idle_fraction) * u**alpha)

``alpha`` (default 1.0) allows sub-/super-linear dynamic scaling; most
datacenter-class silicon is near linear.  The model is what makes the
paper's utilization argument quantitative: energy per unit of *work*
strictly decreases with utilization whenever idle power is non-zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.quantities import Energy, Power
from repro.energy.devices import DeviceSpec
from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class PowerModel:
    """Maps utilization in [0, 1] to electrical power for one device."""

    spec: DeviceSpec
    alpha: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise UnitError(f"alpha must be positive, got {self.alpha}")

    def power_at(self, utilization: float) -> Power:
        """Power draw at a scalar utilization."""
        if not (0 <= utilization <= 1):
            raise UnitError(f"utilization must be in [0, 1], got {utilization}")
        idle = self.spec.idle_fraction
        dynamic = (1.0 - idle) * utilization**self.alpha
        return Power(self.spec.tdp_watts * (idle + dynamic))

    def power_series(self, utilization: np.ndarray) -> np.ndarray:
        """Vectorized power draw (watts) for a utilization array."""
        u = np.asarray(utilization, dtype=float)
        if np.any((u < 0) | (u > 1)):
            raise UnitError("utilization values must be in [0, 1]")
        idle = self.spec.idle_fraction
        return self.spec.tdp_watts * (idle + (1.0 - idle) * u**self.alpha)

    def energy_for(self, utilization: float, hours: float) -> Energy:
        """Energy for running ``hours`` at constant ``utilization``."""
        return self.power_at(utilization).over_hours(hours)

    def energy_per_unit_work(self, utilization: float) -> float:
        """Joules per normalized unit of work at a given utilization.

        Work rate is proportional to utilization; this ratio captures why
        higher utilization is more energy-efficient (static power is
        amortized over more work).  Undefined (inf) at zero utilization.
        """
        if utilization == 0:
            return float("inf")
        return self.power_at(utilization).watts / utilization
