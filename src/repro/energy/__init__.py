"""Energy modeling: devices, power curves, PUE, metering."""

from repro.energy.devices import (
    A100,
    CLIENT_DEVICE,
    CPU_SERVER,
    DeviceClass,
    DeviceSpec,
    P100,
    STORAGE_SERVER,
    TPU_V2,
    TPU_V3,
    V100,
    WEB_SERVER,
    WIRELESS_ROUTER,
    catalog,
    device,
    gpu_memory_growth_ratio,
)
from repro.energy.meter import (
    EnergyMeter,
    integrate_power_hours,
    integrate_power_timestamps,
)
from repro.energy.power_model import PowerModel
from repro.energy.pue import (
    Datacenter,
    HYPERSCALE_PUE,
    IDEAL_PUE,
    TYPICAL_PUE,
    efficiency_vs,
    overhead_reduction,
)

__all__ = [
    "A100",
    "CLIENT_DEVICE",
    "CPU_SERVER",
    "Datacenter",
    "DeviceClass",
    "DeviceSpec",
    "EnergyMeter",
    "HYPERSCALE_PUE",
    "IDEAL_PUE",
    "P100",
    "PowerModel",
    "STORAGE_SERVER",
    "TPU_V2",
    "TPU_V3",
    "TYPICAL_PUE",
    "V100",
    "WEB_SERVER",
    "WIRELESS_ROUTER",
    "catalog",
    "device",
    "efficiency_vs",
    "gpu_memory_growth_ratio",
    "integrate_power_hours",
    "integrate_power_timestamps",
    "overhead_reduction",
]
