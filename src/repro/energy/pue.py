"""Power Usage Effectiveness (PUE): datacenter overhead on IT energy.

PUE = total facility energy / IT equipment energy.  The paper's fleet
achieves ~1.10, "about 40% more efficient than small-scale, typical data
centers" (typical ~1.58 facility overhead, i.e. 1.10 * 1.4 ≈ 1.55).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quantities import Energy, Power
from repro.errors import UnitError

#: The paper's hyperscale PUE.
HYPERSCALE_PUE = 1.10
#: A typical small-scale datacenter PUE (industry survey average).
TYPICAL_PUE = 1.55
#: An ideal facility with no overhead.
IDEAL_PUE = 1.0


@dataclass(frozen=True, slots=True)
class Datacenter:
    """A facility with a PUE that inflates IT energy to facility energy."""

    pue: float = HYPERSCALE_PUE
    name: str = "datacenter"

    def __post_init__(self) -> None:
        if self.pue < 1.0:
            raise UnitError(f"PUE must be >= 1.0, got {self.pue}")

    def facility_energy(self, it_energy: Energy) -> Energy:
        """Total facility energy for a given IT-equipment energy."""
        return it_energy * self.pue

    def facility_power(self, it_power: Power) -> Power:
        """Total facility power for a given IT-equipment power."""
        return it_power * self.pue

    def overhead_energy(self, it_energy: Energy) -> Energy:
        """Cooling/distribution overhead beyond the IT energy itself."""
        return it_energy * (self.pue - 1.0)


def efficiency_vs(pue_a: float, pue_b: float) -> float:
    """Fractional facility-energy saving of PUE ``pue_a`` vs ``pue_b``.

    ``efficiency_vs(1.10, 1.55)`` ≈ 0.29: the hyperscale facility uses
    ~29% less total energy for the same IT load — the paper's "~40% more
    efficient" counts overhead energy (0.10 vs 0.55 ≈ 82% less overhead);
    both views are exposed via :func:`overhead_reduction`.
    """
    if pue_a < 1.0 or pue_b < 1.0:
        raise UnitError("PUE values must be >= 1.0")
    if pue_b == 0:
        raise UnitError("reference PUE must be positive")
    return 1.0 - pue_a / pue_b


def overhead_reduction(pue_a: float, pue_b: float) -> float:
    """Fractional reduction of *overhead* energy of ``pue_a`` vs ``pue_b``."""
    if pue_a < 1.0 or pue_b < 1.0:
        raise UnitError("PUE values must be >= 1.0")
    if pue_b == 1.0:
        raise UnitError("reference PUE has no overhead to reduce")
    return 1.0 - (pue_a - 1.0) / (pue_b - 1.0)
