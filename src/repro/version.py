"""One code-version identity for caching and provenance.

Substrate values and ledger claims are only reproducible *given* the
library stack that produced them: a numpy upgrade may change float
kernels bit-for-bit, a repro upgrade may change a model.  This module is
the single place that identity is captured, so the disk-cache salt
(:func:`repro.core.diskcache.cache_salt`) and ledger provenance
(:class:`repro.core.ledger.Provenance`) can never disagree about what
"the code version" means.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from repro._version import __version__

__all__ = ["CodeVersion", "code_version"]


@dataclass(frozen=True)
class CodeVersion:
    """The (repro, numpy, python) triple that stamps cached/ledgered values."""

    repro: str
    numpy: str
    python: str  # "major.minor" — micro releases do not change float kernels

    def salt(self) -> str:
        """The disk-cache salt string (kept byte-identical across the
        refactor that moved it here from ``repro.core.diskcache``, so
        existing cache directories stay valid)."""
        return f"np{self.numpy}|repro{self.repro}|py{self.python}"

    def to_payload(self) -> dict[str, str]:
        """JSON-safe form recorded in ledger provenance."""
        return {"repro": self.repro, "numpy": self.numpy, "python": self.python}


def code_version() -> CodeVersion:
    """The running stack's version triple."""
    import numpy as np

    return CodeVersion(
        repro=__version__,
        numpy=np.__version__,
        python=f"{sys.version_info[0]}.{sys.version_info[1]}",
    )
