"""Component-level embodied carbon: server bills of materials (§IV-C).

"The environmental footprint characteristics of processors over the
generations of CMOS technologies, DDRx and HBM memory technologies,
SSD/NAND-flash/HDD storage technologies can be orders-of-magnitude
different.  Thus, designing AI systems with the least environmental
impact requires explicit consideration of environmental footprint
characteristics at the design time."

Per-component embodied factors follow the LCA literature Gupta et al.
(2021) survey: logic silicon by die area, DRAM and NAND by capacity,
HDD by unit.  A :class:`ServerBOM` totals a design, making "carbon at
design time" a calculator rather than a slogan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quantities import Carbon
from repro.errors import UnitError

# ---------------------------------------------------------------------------
# Embodied factors (kgCO2e per unit).  Representative values from public
# LCA studies; the orders-of-magnitude spread between technologies is the
# point the paper makes.
# ---------------------------------------------------------------------------
#: Logic silicon, per cm^2 of die in a modern CMOS node (fab-dominated).
LOGIC_KG_PER_CM2 = 1.6
#: DRAM (DDRx), per GB.
DRAM_KG_PER_GB = 0.42
#: HBM stacks, per GB (TSV stacking and interposer overheads).
HBM_KG_PER_GB = 0.90
#: NAND flash (SSD), per GB.
NAND_KG_PER_GB = 0.035
#: HDD, per drive (mostly mechanical assembly, capacity-insensitive).
HDD_KG_PER_UNIT = 25.0
#: PCB, chassis, PSU, cabling per server.
CHASSIS_KG_PER_SERVER = 75.0


@dataclass(frozen=True, slots=True)
class ComponentLine:
    """One BOM line: a component type, quantity, and its embodied carbon."""

    component: str
    quantity: float
    unit: str
    carbon: Carbon


@dataclass(frozen=True)
class ServerBOM:
    """A server design expressed as component quantities."""

    name: str
    logic_die_cm2: float = 8.0  # CPU + NIC + misc ASICs
    accelerator_die_cm2: float = 0.0
    dram_gb: float = 256.0
    hbm_gb: float = 0.0
    nand_gb: float = 2000.0
    hdd_units: int = 0

    def __post_init__(self) -> None:
        if min(
            self.logic_die_cm2,
            self.accelerator_die_cm2,
            self.dram_gb,
            self.hbm_gb,
            self.nand_gb,
        ) < 0 or self.hdd_units < 0:
            raise UnitError("BOM quantities must be non-negative")

    def lines(self) -> list[ComponentLine]:
        """Per-component embodied carbon breakdown."""
        entries = [
            ("logic silicon", self.logic_die_cm2, "cm2", LOGIC_KG_PER_CM2),
            (
                "accelerator silicon",
                self.accelerator_die_cm2,
                "cm2",
                LOGIC_KG_PER_CM2,
            ),
            ("DRAM", self.dram_gb, "GB", DRAM_KG_PER_GB),
            ("HBM", self.hbm_gb, "GB", HBM_KG_PER_GB),
            ("NAND flash", self.nand_gb, "GB", NAND_KG_PER_GB),
            ("HDD", float(self.hdd_units), "unit", HDD_KG_PER_UNIT),
            ("chassis/PCB/PSU", 1.0, "server", CHASSIS_KG_PER_SERVER),
        ]
        return [
            ComponentLine(name, qty, unit, Carbon(qty * factor))
            for name, qty, unit, factor in entries
            if qty > 0
        ]

    def total(self) -> Carbon:
        """Total embodied carbon of the design."""
        total = Carbon.zero()
        for line in self.lines():
            total = total + line.carbon
        return total

    def dominant_component(self) -> str:
        """The BOM line holding the most embodied carbon."""
        return max(self.lines(), key=lambda line: line.carbon.kg).component


#: A CPU compute server (web/ranking tier).
CPU_COMPUTE_BOM = ServerBOM("cpu-compute", logic_die_cm2=10.0, dram_gb=256.0, nand_gb=1000.0)
#: An 8-accelerator HBM training server.
AI_TRAINING_BOM = ServerBOM(
    "ai-training",
    logic_die_cm2=12.0,
    accelerator_die_cm2=8 * 8.15,  # 8 dies ~815 mm^2 each
    dram_gb=1024.0,
    hbm_gb=8 * 80.0,
    nand_gb=8000.0,
)
#: A storage server: few cores, lots of spindles and flash.
STORAGE_BOM = ServerBOM(
    "storage", logic_die_cm2=4.0, dram_gb=128.0, nand_gb=16_000.0, hdd_units=24
)


def memory_technology_comparison(capacity_gb: float = 512.0) -> dict[str, float]:
    """Embodied kg of one capacity served by different technologies.

    The paper's 'orders-of-magnitude different' claim, computed: DRAM vs
    HBM vs NAND for the same gigabytes.
    """
    if capacity_gb <= 0:
        raise UnitError("capacity must be positive")
    return {
        "dram_kg": capacity_gb * DRAM_KG_PER_GB,
        "hbm_kg": capacity_gb * HBM_KG_PER_GB,
        "nand_kg": capacity_gb * NAND_KG_PER_GB,
        "hbm_over_nand": HBM_KG_PER_GB / NAND_KG_PER_GB,
    }


def design_comparison(a: ServerBOM, b: ServerBOM) -> dict[str, float]:
    """Total and dominant-component comparison of two designs."""
    return {
        f"{a.name}_total_kg": a.total().kg,
        f"{b.name}_total_kg": b.total().kg,
        "ratio": b.total().kg / a.total().kg if a.total().kg else float("inf"),
    }
