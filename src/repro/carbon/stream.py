"""Tick-level grid-intensity streaming: feeds, forecasts, delta payloads.

Carbon-aware operation reacts to *live* grid intensity (Section IV-C),
but real intensity feeds are messy: observations arrive late and out of
order, recently-published values are revised, and feeds stall outright.
This module provides the deterministic seeded stand-in for such a feed
plus everything a live consumer needs on top of it:

* :func:`simulate_tick_trace` — the tick log for a :class:`StreamSpec`:
  one preliminary observation per hour (possibly delayed), optional
  exact revisions with bounded lag, and stall windows that push whole
  stretches of emissions later.  Pure and memoized: the same spec always
  yields the same tick sequence, which is what makes the service path
  byte-comparable to a library replay.
* :func:`rolling_forecast` — the live forecast ladder.  With a week of
  healthy history it uses a rolling last-168-hour climatology; with less
  it degrades to :func:`~repro.carbon.forecast.persistence_forecast`;
  when the feed has *stalled* (frontier lags the feed clock) it falls
  back to the full-history :func:`~repro.carbon.forecast.diurnal_forecast`
  — persistence would just repeat the stale last day — and with under a
  day of history it goes flat.
* :func:`stream_delta_payload` — the canonical delta document for a
  cursor range ``[from_seq, to_seq)``: the ticks, the incremental
  accounting snapshot at ``to_seq`` (see
  :mod:`repro.core.incremental`), and the schedule advice derived from
  the rolling forecast.  The ``/stream`` endpoint serves exactly these
  bytes; conformance tests diff the two paths byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional, Sequence

import numpy as np

from repro.carbon.forecast import diurnal_forecast, persistence_forecast
from repro.carbon.grid import GridTrace, synthesize_grid_trace
from repro.core.incremental import IncrementalAccounting
from repro.core.memo import memoized_substrate
from repro.core.series import HourlySeries
from repro.errors import UnitError

#: Longest stream horizon the library will synthesize (seven years).
MAX_STREAM_HOURS = 61_368


@dataclass(frozen=True, slots=True)
class StreamSpec:
    """Full parameterization of one deterministic intensity stream.

    A spec is the stream's *identity*: every derived artifact — tick log,
    accounting state at a cursor, delta payload bytes — is a pure
    function of ``(spec, cursor range)``.  Specs are hashable (memo keys)
    and canonically serializable (fabric routing keys).
    """

    hours: int = 168
    grid_seed: int = 0
    feed_seed: int = 0
    load_kw: float = 100.0
    load_diurnal_fraction: float = 0.3
    pue: float = 1.1
    window_hours: int = 24
    forecast_horizon_hours: int = 24
    late_probability: float = 0.15
    max_late_hours: int = 6
    revision_probability: float = 0.2
    max_revision_lag_hours: int = 48
    revision_noise: float = 0.08
    stall_probability: float = 0.02
    max_stall_hours: int = 12
    stall_detect_hours: int = 8
    defer_margin: float = 0.05
    min_powered_fraction: float = 0.4

    def __post_init__(self) -> None:
        if not (48 <= self.hours <= MAX_STREAM_HOURS):
            raise UnitError(
                f"stream hours must be in [48, {MAX_STREAM_HOURS}], got {self.hours}"
            )
        for name in ("grid_seed", "feed_seed"):
            if getattr(self, name) < 0:
                raise UnitError(f"{name} must be non-negative")
        if not (0.0 < self.load_kw <= 1e6):
            raise UnitError(f"load_kw must be in (0, 1e6], got {self.load_kw}")
        if not (0.0 <= self.load_diurnal_fraction <= 1.0):
            raise UnitError("load_diurnal_fraction must be in [0, 1]")
        if not (1.0 <= self.pue <= 10.0):
            raise UnitError(f"PUE must be in [1, 10], got {self.pue}")
        if not (1 <= self.window_hours <= 168):
            raise UnitError("window_hours must be in [1, 168]")
        if not (1 <= self.forecast_horizon_hours <= 168):
            raise UnitError("forecast_horizon_hours must be in [1, 168]")
        if self.forecast_horizon_hours > self.hours:
            raise UnitError("forecast horizon must not exceed the stream horizon")
        for name in ("late_probability", "revision_probability"):
            if not (0.0 <= getattr(self, name) <= 1.0):
                raise UnitError(f"{name} must be in [0, 1]")
        if not (0.0 <= self.stall_probability <= 0.5):
            raise UnitError("stall_probability must be in [0, 0.5]")
        if not (0.0 <= self.revision_noise <= 1.0):
            raise UnitError("revision_noise must be in [0, 1]")
        for name, hi in (
            ("max_late_hours", 72),
            ("max_revision_lag_hours", 168),
            ("max_stall_hours", 168),
            ("stall_detect_hours", 168),
        ):
            if not (1 <= getattr(self, name) <= hi):
                raise UnitError(f"{name} must be in [1, {hi}]")
        if not (0.0 <= self.defer_margin <= 1.0):
            raise UnitError("defer_margin must be in [0, 1]")
        if not (0.0 < self.min_powered_fraction <= 1.0):
            raise UnitError("min_powered_fraction must be in (0, 1]")

    def to_params(self) -> dict[str, object]:
        """The spec as a flat canonical parameter mapping."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True, slots=True)
class Tick:
    """One feed event: a preliminary observation or an exact revision."""

    seq: int
    hour: int
    emit_slot: int
    kind: str  # "observe" | "revise"
    intensity_kg_per_kwh: float

    def to_payload(self) -> dict[str, object]:
        return {
            "seq": self.seq,
            "hour": self.hour,
            "emit_slot": self.emit_slot,
            "kind": self.kind,
            "intensity_kg_per_kwh": self.intensity_kg_per_kwh,
        }


def truth_trace(spec: StreamSpec) -> GridTrace:
    """The underlying true grid trace the feed eventually converges on."""
    return synthesize_grid_trace(hours=spec.hours, seed=spec.grid_seed)


def load_profile(spec: StreamSpec) -> HourlySeries:
    """The stream's fixed hourly IT load (kWh/h), diurnal around ``load_kw``.

    The shape peaks mid-afternoon; with ``load_diurnal_fraction`` f the
    hourly multiplier stays within ``[1 - f/2, 1 + f/2]`` — always
    positive, so the relative-demand trace is well-defined for the
    auto-scaler.
    """
    hod = np.arange(spec.hours) % 24
    shape = 1.0 + 0.5 * spec.load_diurnal_fraction * np.sin(
        2.0 * np.pi * (hod - 9.0) / 24.0
    )
    return HourlySeries(spec.load_kw * shape)


@memoized_substrate
def simulate_tick_trace(spec: StreamSpec) -> tuple[Tick, ...]:
    """The full deterministic tick log for a spec.

    Each hour gets one ``observe`` tick carrying a preliminary value
    (exact truth unless the hour will later be revised, in which case it
    carries multiplicative noise); revised hours get a second ``revise``
    tick carrying the exact truth with bounded lag.  Stalls accumulate a
    cumulative emission delay, so whole stretches of the feed arrive as
    a late catch-up burst.  Events are ordered by ``(emit_slot, hour,
    kind)`` and numbered ``seq = 0..n-1``.
    """
    truth = truth_trace(spec).intensity_kg_per_kwh
    rng = np.random.default_rng(spec.feed_seed)

    # Pass 1: stall windows.  A stall starting at hour ``s`` suppresses
    # emission during ``[s, s + duration)``; everything due in that
    # window arrives as a catch-up burst at the window's end, after
    # which the feed runs at its normal clock again (stalls delay, they
    # do not permanently offset the feed).
    stalls: list[tuple[int, int]] = []
    for h in range(spec.hours):
        if rng.uniform() < spec.stall_probability:
            stalls.append((h, h + int(rng.integers(1, spec.max_stall_hours + 1))))

    def _push(slot: int) -> int:
        for start, until in stalls:
            if start <= slot < until:
                slot = until
        return slot

    # Pass 2: per-hour observation delay, revision draw, values.
    events: list[tuple[int, int, int, str, float]] = []
    for h in range(spec.hours):
        delay = 0
        if rng.uniform() < spec.late_probability:
            delay = int(rng.integers(1, spec.max_late_hours + 1))
        revise = rng.uniform() < spec.revision_probability
        value = float(truth[h])
        if revise:
            noise = float(rng.normal(0.0, spec.revision_noise))
            preliminary = max(0.0, value * (1.0 + noise))
        else:
            preliminary = value
        emit = _push(h + delay)
        events.append((emit, h, 0, "observe", preliminary))
        if revise:
            lag = int(rng.integers(1, spec.max_revision_lag_hours + 1))
            events.append((_push(emit + lag), h, 1, "revise", value))
    events.sort(key=lambda e: (e[0], e[1], e[2]))
    return tuple(
        Tick(seq=i, hour=h, emit_slot=emit, kind=kind, intensity_kg_per_kwh=v)
        for i, (emit, h, _order, kind, v) in enumerate(events)
    )


def rolling_forecast(
    observed_intensity: np.ndarray, horizon_hours: int, stalled: bool = False
) -> tuple[np.ndarray, str]:
    """The live forecast ladder over a contiguous observed prefix.

    Returns ``(forecast, source)`` where ``source`` names the rung used:
    ``"rolling"`` (last-week climatology), ``"persistence"`` (< 1 week of
    history), ``"diurnal"`` (feed stalled: full-history climatology),
    ``"flat"`` (< 1 day of history), or ``"cold"`` (nothing observed).
    """
    if horizon_hours <= 0:
        raise UnitError("horizon must be positive")
    observed = np.asarray(observed_intensity, dtype=float)
    if len(observed) == 0:
        return np.zeros(horizon_hours), "cold"
    if len(observed) < 24:
        return np.full(horizon_hours, float(observed[-1])), "flat"
    zeros = np.zeros(len(observed))
    trace = GridTrace(
        solar_share=zeros, wind_share=zeros, intensity_kg_per_kwh=observed
    )
    if stalled:
        return diurnal_forecast(trace, horizon_hours), "diurnal"
    if len(observed) >= 168:
        window = observed[-168:]
        window_trace = GridTrace(
            solar_share=np.zeros(168),
            wind_share=np.zeros(168),
            intensity_kg_per_kwh=window,
        )
        return diurnal_forecast(window_trace, horizon_hours), "rolling"
    return persistence_forecast(trace, horizon_hours), "persistence"


@dataclass(frozen=True, slots=True)
class StreamAdvice:
    """Schedule advice derived from the rolling forecast at one cursor."""

    stalled: bool
    forecast_source: str
    forecast_horizon_hours: int
    forecast_min_kg_per_kwh: float
    greenest_start_in_hours: int
    current_kg_per_kwh: float
    defer_recommended: bool
    recommended_powered_fraction: float

    def to_payload(self) -> dict[str, object]:
        return {
            "stalled": self.stalled,
            "forecast_source": self.forecast_source,
            "forecast_horizon_hours": self.forecast_horizon_hours,
            "forecast_min_kg_per_kwh": self.forecast_min_kg_per_kwh,
            "greenest_start_in_hours": self.greenest_start_in_hours,
            "current_kg_per_kwh": self.current_kg_per_kwh,
            "defer_recommended": self.defer_recommended,
            "recommended_powered_fraction": self.recommended_powered_fraction,
        }


def advice_at(
    spec: StreamSpec, state: IncrementalAccounting, last_emit_slot: int
) -> StreamAdvice:
    """Advice from the state's contiguous prefix and the feed clock.

    Stall detection compares the feed clock (the newest delivered tick's
    ``emit_slot``) to the contiguous observation frontier: a frontier
    more than ``stall_detect_hours`` behind the clock means new feed time
    is passing without the prefix advancing.
    """
    prefix = state.contiguous_hours
    stalled = (int(last_emit_slot) - prefix) >= spec.stall_detect_hours
    observed = state.contiguous_intensity()
    forecast, source = rolling_forecast(
        observed, spec.forecast_horizon_hours, stalled=stalled
    )
    current = float(observed[-1]) if prefix > 0 else 0.0
    forecast_min = float(np.min(forecast))
    greenest = int(np.argmin(forecast))
    defer = prefix > 0 and current > forecast_min * (1.0 + spec.defer_margin)
    if defer and current > 0.0:
        powered = max(spec.min_powered_fraction, min(1.0, forecast_min / current))
    else:
        powered = 1.0
    return StreamAdvice(
        stalled=stalled,
        forecast_source=source,
        forecast_horizon_hours=spec.forecast_horizon_hours,
        forecast_min_kg_per_kwh=forecast_min,
        greenest_start_in_hours=greenest,
        current_kg_per_kwh=current,
        defer_recommended=defer,
        recommended_powered_fraction=powered,
    )


def stream_state_at(
    spec: StreamSpec, upto_seq: int, ticks: Optional[Sequence[Tick]] = None
) -> IncrementalAccounting:
    """Accounting state after folding ticks ``0..upto_seq`` — the replay path."""
    if ticks is None:
        ticks = simulate_tick_trace(spec)
    if not (0 <= upto_seq <= len(ticks)):
        raise UnitError(
            f"cursor {upto_seq} outside the {len(ticks)}-tick stream"
        )
    state = IncrementalAccounting(
        load_profile(spec), pue=spec.pue, window_hours=spec.window_hours
    )
    for tick in ticks[:upto_seq]:
        state.fold(tick.hour, tick.intensity_kg_per_kwh)
    return state


def stream_delta_payload(
    spec: StreamSpec,
    from_seq: int,
    to_seq: int,
    *,
    ticks: Optional[Sequence[Tick]] = None,
    state: Optional[IncrementalAccounting] = None,
) -> dict[str, object]:
    """The canonical delta document for cursor range ``[from_seq, to_seq)``.

    ``state``, when given, must be the accounting state folded to exactly
    ``to_seq`` ticks (the service's live state); otherwise the state is
    replayed from scratch.  Because the incremental fold is bit-equal to
    the replay, both call sites render identical documents — the basis
    of the ``/stream`` byte-identity conformance contract.
    """
    if ticks is None:
        ticks = simulate_tick_trace(spec)
    total = len(ticks)
    if not (0 <= from_seq <= to_seq <= total):
        raise UnitError(
            f"delta range [{from_seq}, {to_seq}) invalid for a {total}-tick stream"
        )
    if state is None:
        state = stream_state_at(spec, to_seq, ticks=ticks)
    elif state.ticks_folded != to_seq:
        raise UnitError(
            f"state folded to {state.ticks_folded} ticks, expected {to_seq}"
        )
    snap = state.snapshot()
    last_slot = int(ticks[to_seq - 1].emit_slot) if to_seq > 0 else 0
    advice = advice_at(spec, state, last_slot)
    accounting = snap.to_payload()
    accounting["facility_energy_kwh"] = snap.it_energy_kwh * spec.pue
    return {
        "stream": spec.to_params(),
        "from_seq": int(from_seq),
        "to_seq": int(to_seq),
        "total_ticks": total,
        "done": to_seq == total,
        "ticks": [tick.to_payload() for tick in ticks[from_seq:to_seq]],
        "accounting": accounting,
        "advice": advice.to_payload(),
    }


__all__ = [
    "MAX_STREAM_HOURS",
    "StreamSpec",
    "Tick",
    "StreamAdvice",
    "truth_trace",
    "load_profile",
    "simulate_tick_trace",
    "rolling_forecast",
    "advice_at",
    "stream_state_at",
    "stream_delta_payload",
]
