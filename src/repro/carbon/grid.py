"""Time-varying grid model: generation mix and hourly carbon intensity.

Carbon-aware scheduling (Section IV-C) needs a grid whose carbon intensity
fluctuates with renewable generation.  This module synthesizes hourly
traces of solar/wind availability and combines them with a dispatchable
fossil remainder to produce an hourly intensity series.

The traces are deliberately simple, seeded, and parametric:

* solar follows a clipped sinusoid peaking at local noon, zero at night,
  with day-to-day cloudiness noise;
* wind follows a slowly-varying positive autoregressive process;
* residual demand is met by a dispatchable mix with a fixed intensity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.carbon.intensity import CarbonIntensity
from repro.core.memo import memoized_substrate
from repro.core.quantities import Carbon
from repro.core.series import HourlySeries
from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class GridMixParams:
    """Parameters of the synthetic grid generation mix."""

    solar_capacity_fraction: float = 0.35
    wind_capacity_fraction: float = 0.25
    dispatchable_intensity: CarbonIntensity = CarbonIntensity(0.55, "fossil-mix")
    solar_residual_intensity: CarbonIntensity = CarbonIntensity(0.041, "solar")
    wind_residual_intensity: CarbonIntensity = CarbonIntensity(0.011, "wind")
    cloudiness: float = 0.25
    wind_variability: float = 0.35

    def __post_init__(self) -> None:
        for name in ("solar_capacity_fraction", "wind_capacity_fraction"):
            value = getattr(self, name)
            if not (0 <= value <= 1):
                raise UnitError(f"{name} must be in [0, 1], got {value}")
        if self.solar_capacity_fraction + self.wind_capacity_fraction > 1:
            raise UnitError("solar + wind capacity fractions must not exceed 1")
        if not (0 <= self.cloudiness <= 1):
            raise UnitError(f"cloudiness must be in [0, 1], got {self.cloudiness}")
        if not (0 <= self.wind_variability <= 1):
            raise UnitError(
                f"wind_variability must be in [0, 1], got {self.wind_variability}"
            )


@dataclass(frozen=True)
class GridTrace:
    """Hourly grid state: per-source generation shares and intensity.

    All arrays have one entry per hour.  ``renewable_share`` is the
    fraction of demand met by solar + wind that hour; ``intensity_kg_per_kwh``
    is the demand-weighted average intensity.
    """

    solar_share: np.ndarray
    wind_share: np.ndarray
    intensity_kg_per_kwh: np.ndarray
    params: GridMixParams = field(default_factory=GridMixParams)

    def __post_init__(self) -> None:
        n = len(self.intensity_kg_per_kwh)
        if len(self.solar_share) != n or len(self.wind_share) != n:
            raise UnitError("grid trace arrays must have equal length")
        if n == 0:
            raise UnitError("grid trace must cover at least one hour")

    def __len__(self) -> int:
        return len(self.intensity_kg_per_kwh)

    @property
    def hours(self) -> int:
        return len(self)

    @property
    def renewable_share(self) -> np.ndarray:
        return self.solar_share + self.wind_share

    def intensity_at(self, hour: int) -> CarbonIntensity:
        """Carbon intensity during hour ``hour`` (0-based, wraps around)."""
        idx = hour % len(self)
        return CarbonIntensity(float(self.intensity_kg_per_kwh[idx]), f"grid@h{idx}")

    def emissions_for_profile(self, kwh_per_hour: np.ndarray, start_hour: int = 0) -> Carbon:
        """Carbon for an hourly energy consumption profile on this grid.

        The profile may be longer than the trace; the trace tiles
        periodically (a week-long trace models repeating weeks).
        """
        return HourlySeries(np.asarray(kwh_per_hour, dtype=float)).emissions(
            self, start_hour=start_hour
        )

    def average_intensity(self) -> CarbonIntensity:
        return CarbonIntensity(float(np.mean(self.intensity_kg_per_kwh)), "grid-average")

    def greenest_window(self, window_hours: int) -> int:
        """Start hour of the contiguous window with lowest mean intensity.

        Windows wrap around the trace boundary (the trace is periodic).
        """
        if not (0 < window_hours <= len(self)):
            raise UnitError(
                f"window must be in [1, {len(self)}] hours, got {window_hours}"
            )
        tiled = np.concatenate([self.intensity_kg_per_kwh, self.intensity_kg_per_kwh[: window_hours - 1]])
        sums = np.convolve(tiled, np.ones(window_hours), mode="valid")
        return int(np.argmin(sums[: len(self)]))


@memoized_substrate
def synthesize_grid_trace(
    hours: int = 168,
    params: GridMixParams | None = None,
    seed: int = 0,
) -> GridTrace:
    """Generate a seeded synthetic hourly grid trace.

    Memoized: identical (hours, params, seed) calls share one frozen
    :class:`GridTrace` instance (its arrays are read-only).

    Parameters
    ----------
    hours:
        Trace length; default one week.
    params:
        Mix parameters (defaults to a moderately renewable grid).
    seed:
        RNG seed for reproducibility.
    """
    if hours <= 0:
        raise UnitError(f"trace length must be positive, got {hours}")
    params = params or GridMixParams()
    rng = np.random.default_rng(seed)

    hour_of_day = np.arange(hours) % 24
    # Solar: clipped sinusoid, daylight 6:00-18:00, peak at noon.
    solar_shape = np.clip(np.sin((hour_of_day - 6.0) / 12.0 * np.pi), 0.0, None)
    day_index = np.arange(hours) // 24
    n_days = int(day_index.max()) + 1
    cloud_factor = 1.0 - params.cloudiness * rng.uniform(0.0, 1.0, size=n_days)
    solar = params.solar_capacity_fraction * solar_shape * cloud_factor[day_index]

    # Wind: positive AR(1) around the capacity fraction.
    wind = np.empty(hours)
    level = params.wind_capacity_fraction
    for h in range(hours):
        noise = rng.normal(0.0, params.wind_variability * params.wind_capacity_fraction * 0.3)
        level = 0.92 * level + 0.08 * params.wind_capacity_fraction + noise
        level = float(np.clip(level, 0.0, params.wind_capacity_fraction * 1.8))
        wind[h] = level

    total_renewable = np.clip(solar + wind, 0.0, 0.98)
    # Preserve the solar/wind split after clipping.
    with np.errstate(divide="ignore", invalid="ignore"):
        raw = solar + wind
        scale = np.where(raw > 0, total_renewable / np.maximum(raw, 1e-12), 0.0)
    solar_share = solar * scale
    wind_share = wind * scale
    dispatchable_share = 1.0 - solar_share - wind_share

    intensity = (
        solar_share * params.solar_residual_intensity.kg_per_kwh
        + wind_share * params.wind_residual_intensity.kg_per_kwh
        + dispatchable_share * params.dispatchable_intensity.kg_per_kwh
    )
    return GridTrace(
        solar_share=solar_share,
        wind_share=wind_share,
        intensity_kg_per_kwh=intensity,
        params=params,
    )


@memoized_substrate
def constant_grid_trace(intensity: CarbonIntensity, hours: int = 168) -> GridTrace:
    """A flat grid trace (useful as a scheduling baseline).  Memoized."""
    if hours <= 0:
        raise UnitError(f"trace length must be positive, got {hours}")
    return GridTrace(
        solar_share=np.zeros(hours),
        wind_share=np.zeros(hours),
        intensity_kg_per_kwh=np.full(hours, intensity.kg_per_kwh),
    )
