"""Carbon-intensity forecasting for carbon-aware scheduling (Section IV-C).

"Carbon-aware workload scheduling techniques can be used ... to *predict*
and exploit the intermittent energy generation patterns."  Real
schedulers act on day-ahead *forecasts*, not oracles; this module
supplies forecasters and measures how forecast quality translates into
realized carbon savings.

Forecasters:

* :func:`persistence_forecast` — tomorrow looks like today (the standard
  naive baseline);
* :func:`diurnal_forecast` — hour-of-day climatology over a training
  window (captures the solar cycle);
* :func:`noisy_oracle` — the true trace plus controllable noise, for
  sensitivity sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.carbon.grid import GridTrace
from repro.errors import UnitError
from repro.scheduling.carbon_aware import schedule_carbon_aware, schedule_immediate
from repro.scheduling.jobs import DeferrableJob


def persistence_forecast(trace: GridTrace, horizon_hours: int) -> np.ndarray:
    """Repeat the trace's final 24 hours across the horizon."""
    if horizon_hours <= 0:
        raise UnitError("horizon must be positive")
    if len(trace) < 24:
        raise UnitError("persistence needs at least one day of history")
    last_day = trace.intensity_kg_per_kwh[-24:]
    reps = int(np.ceil(horizon_hours / 24.0))
    return np.tile(last_day, reps)[:horizon_hours]


def diurnal_forecast(trace: GridTrace, horizon_hours: int) -> np.ndarray:
    """Hour-of-day mean intensity from the whole history, tiled forward."""
    if horizon_hours <= 0:
        raise UnitError("horizon must be positive")
    if len(trace) < 24:
        raise UnitError("climatology needs at least one day of history")
    hours = np.arange(len(trace)) % 24
    climatology = np.array(
        [trace.intensity_kg_per_kwh[hours == h].mean() for h in range(24)]
    )
    reps = int(np.ceil(horizon_hours / 24.0))
    return np.tile(climatology, reps)[:horizon_hours]


def noisy_oracle(
    trace: GridTrace, horizon_hours: int, noise_fraction: float, seed: int = 0
) -> np.ndarray:
    """The true future with multiplicative noise (forecast-error knob)."""
    if horizon_hours <= 0:
        raise UnitError("horizon must be positive")
    if noise_fraction < 0:
        raise UnitError("noise must be non-negative")
    rng = np.random.default_rng(seed)
    idx = np.arange(horizon_hours) % len(trace)
    truth = trace.intensity_kg_per_kwh[idx]
    noise = rng.normal(1.0, noise_fraction, horizon_hours)
    return np.maximum(0.0, truth * noise)


def forecast_mape(forecast: np.ndarray, trace: GridTrace) -> float:
    """Mean absolute percentage error of a forecast against the truth."""
    f = np.asarray(forecast, dtype=float)
    idx = np.arange(len(f)) % len(trace)
    truth = trace.intensity_kg_per_kwh[idx]
    mask = truth > 1e-12
    if not np.any(mask):
        raise UnitError("trace has no nonzero intensities to score against")
    return float(np.mean(np.abs(f[mask] - truth[mask]) / truth[mask]))


def schedule_with_forecast(
    jobs: list[DeferrableJob],
    truth: GridTrace,
    forecast: np.ndarray,
    horizon_hours: int,
    capacity_kw: float = float("inf"),
):
    """Plan on the forecast, account on the truth.

    The scheduler sees only ``forecast``; realized emissions are computed
    by replaying its placements against the true trace — exactly how
    forecast error erodes carbon-aware savings in production.

    ``horizon_hours`` must not exceed the truth trace: placements past the
    trace would be replayed against a silently tiled copy of it, pricing
    jobs on hours that were never observed.  The service layer has
    rejected that case since PR 5; the library mirrors the rejection so
    direct callers cannot fall through to the truncated/tiled account.
    """
    from repro.carbon.grid import GridTrace as _GridTrace

    if horizon_hours > len(truth):
        raise UnitError(
            f"'horizon_hours' ({horizon_hours}) must not exceed the truth trace "
            f"({len(truth)} hours); jobs scheduled past the grid trace would "
            "have undefined emissions"
        )
    f = np.asarray(forecast, dtype=float)
    if len(f) < horizon_hours:
        raise UnitError("forecast shorter than the scheduling horizon")
    forecast_trace = _GridTrace(
        solar_share=np.zeros(horizon_hours),
        wind_share=np.zeros(horizon_hours),
        intensity_kg_per_kwh=f[:horizon_hours],
    )
    planned = schedule_carbon_aware(jobs, forecast_trace, horizon_hours, capacity_kw)

    # Replay the placements against the truth.
    realized_kg = 0.0
    for job in jobs:
        start = planned.start_hours[job.job_id]
        realized_kg += job.carbon_at(truth, start).kg
    from repro.core.quantities import Carbon

    return planned, Carbon(realized_kg)


def forecast_quality_sweep(
    jobs: list[DeferrableJob],
    truth: GridTrace,
    horizon_hours: int,
    noise_levels: tuple[float, ...] = (0.0, 0.1, 0.3, 0.6, 1.0),
    capacity_kw: float = float("inf"),
    seed: int = 0,
) -> list[dict[str, float]]:
    """Realized saving vs forecast error: the sensitivity the paper implies.

    Returns one row per noise level: forecast MAPE and realized saving
    relative to the immediate (no-shifting) baseline.
    """
    baseline = schedule_immediate(jobs, truth, horizon_hours, capacity_kw)
    rows = []
    for noise in noise_levels:
        forecast = noisy_oracle(truth, horizon_hours, noise, seed)
        _, realized = schedule_with_forecast(
            jobs, truth, forecast, horizon_hours, capacity_kw
        )
        rows.append(
            {
                "noise": float(noise),
                "mape": forecast_mape(forecast, truth),
                "realized_saving": 1.0 - realized.kg / baseline.total_carbon.kg,
            }
        )
    return rows
