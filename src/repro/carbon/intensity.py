"""Carbon intensity of electricity: how much CO2e a kWh costs.

Two accounting conventions from the GHG Protocol are modeled:

* **location-based** — the average intensity of the regional grid the
  datacenter physically draws from.  This is what the paper uses for the
  headline Figure 4/5 numbers.
* **market-based** — intensity after contractual instruments (PPAs,
  renewable-energy certificates).  Facebook's 100% renewable matching makes
  the market-based intensity of its fleet ~0; the paper notes embodied
  carbon then dominates.

Intensities are expressed in kgCO2e per kWh.  A small static regional table
is included; the values are public grid averages (circa 2020-2021) and are
the knob a user would replace with their own utility data.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.quantities import Carbon, Energy
from repro.errors import UnitError


class AccountingMethod(str, Enum):
    """GHG Protocol Scope-2 accounting convention."""

    LOCATION_BASED = "location-based"
    MARKET_BASED = "market-based"


@dataclass(frozen=True, slots=True)
class CarbonIntensity:
    """Carbon intensity of an energy source in kgCO2e per kWh."""

    kg_per_kwh: float
    label: str = "custom"

    def __post_init__(self) -> None:
        if self.kg_per_kwh < 0:
            raise UnitError(
                f"carbon intensity must be non-negative, got {self.kg_per_kwh}"
            )

    @property
    def g_per_kwh(self) -> float:
        return self.kg_per_kwh * 1e3

    def emissions(self, energy: Energy) -> Carbon:
        """Carbon emitted by consuming ``energy`` at this intensity."""
        return Carbon(energy.kwh * self.kg_per_kwh)

    def scaled(self, factor: float, label: str | None = None) -> "CarbonIntensity":
        """A new intensity scaled by a dimensionless ``factor`` (>= 0)."""
        if factor < 0:
            raise UnitError(f"scaling factor must be non-negative, got {factor}")
        return CarbonIntensity(
            self.kg_per_kwh * factor, label or f"{self.label} x{factor:g}"
        )


# ---------------------------------------------------------------------------
# Reference intensities (kgCO2e/kWh).  Public grid averages circa 2020-2021.
# ---------------------------------------------------------------------------
US_AVERAGE = CarbonIntensity(0.429, "us-average")
US_MIDWEST = CarbonIntensity(0.545, "us-midwest")
US_NORTHWEST = CarbonIntensity(0.292, "us-northwest")
US_SOUTHEAST = CarbonIntensity(0.431, "us-southeast")
EUROPE_AVERAGE = CarbonIntensity(0.276, "europe-average")
NORDIC = CarbonIntensity(0.030, "nordic")
IRELAND = CarbonIntensity(0.335, "ireland")
ASIA_PACIFIC = CarbonIntensity(0.555, "asia-pacific")
WORLD_AVERAGE = CarbonIntensity(0.475, "world-average")
#: Effectively carbon-free supply (solar/wind/hydro with small residual).
CARBON_FREE = CarbonIntensity(0.0, "carbon-free")
#: Solar PV life-cycle residual intensity (panel manufacturing amortized).
SOLAR_LIFECYCLE = CarbonIntensity(0.041, "solar-lifecycle")
WIND_LIFECYCLE = CarbonIntensity(0.011, "wind-lifecycle")
COAL = CarbonIntensity(0.820, "coal")
NATURAL_GAS = CarbonIntensity(0.490, "natural-gas")
HYDRO = CarbonIntensity(0.024, "hydro")
NUCLEAR = CarbonIntensity(0.012, "nuclear")

_REGION_TABLE: dict[str, CarbonIntensity] = {
    ci.label: ci
    for ci in (
        US_AVERAGE,
        US_MIDWEST,
        US_NORTHWEST,
        US_SOUTHEAST,
        EUROPE_AVERAGE,
        NORDIC,
        IRELAND,
        ASIA_PACIFIC,
        WORLD_AVERAGE,
        CARBON_FREE,
        SOLAR_LIFECYCLE,
        WIND_LIFECYCLE,
        COAL,
        NATURAL_GAS,
        HYDRO,
        NUCLEAR,
    )
}


def regions() -> tuple[str, ...]:
    """Names of all built-in reference intensities."""
    return tuple(sorted(_REGION_TABLE))


def intensity_for_region(region: str) -> CarbonIntensity:
    """Look up a built-in reference intensity by name.

    Raises
    ------
    KeyError
        If ``region`` is not a known reference intensity.
    """
    try:
        return _REGION_TABLE[region]
    except KeyError:
        known = ", ".join(regions())
        raise KeyError(f"unknown region {region!r}; known regions: {known}") from None


@dataclass(frozen=True, slots=True)
class DualIntensity:
    """Location- and market-based intensity of one datacenter's supply."""

    location: CarbonIntensity
    market: CarbonIntensity

    def for_method(self, method: AccountingMethod) -> CarbonIntensity:
        if method is AccountingMethod.LOCATION_BASED:
            return self.location
        return self.market


#: The paper's fleet: location-based ~US grid; market-based ~0 thanks to
#: 100% renewable energy matching.
RENEWABLE_MATCHED_FLEET = DualIntensity(location=US_AVERAGE, market=CARBON_FREE)
