"""Carbon accounting: intensities, grids, embodied LCA, offsets."""

from repro.carbon.embodied import (
    AmortizationPolicy,
    CPU_SERVER_EMBODIED,
    GPU_SERVER_EMBODIED,
    embodied_for_device_hours,
    operational_embodied_split,
)
from repro.carbon.components import (
    AI_TRAINING_BOM,
    CPU_COMPUTE_BOM,
    ComponentLine,
    STORAGE_BOM,
    ServerBOM,
    design_comparison,
    memory_technology_comparison,
)
from repro.carbon.forecast import (
    diurnal_forecast,
    forecast_mape,
    forecast_quality_sweep,
    noisy_oracle,
    persistence_forecast,
    schedule_with_forecast,
)
from repro.carbon.grid import (
    GridMixParams,
    GridTrace,
    constant_grid_trace,
    synthesize_grid_trace,
)
from repro.carbon.intensity import (
    AccountingMethod,
    CarbonIntensity,
    DualIntensity,
    intensity_for_region,
    regions,
)
from repro.carbon.offsets import NET_ZERO_PROGRAM, NO_PROGRAM, RenewableProcurement
from repro.carbon.stream import (
    StreamAdvice,
    StreamSpec,
    Tick,
    rolling_forecast,
    simulate_tick_trace,
    stream_delta_payload,
    stream_state_at,
)
from repro.carbon.scopes import (
    GHGInventory,
    SCOPE3_CATEGORIES,
    ai_embodied_growth,
    hyperscaler_inventory,
)

__all__ = [
    "AI_TRAINING_BOM",
    "AccountingMethod",
    "AmortizationPolicy",
    "CPU_COMPUTE_BOM",
    "ComponentLine",
    "STORAGE_BOM",
    "ServerBOM",
    "design_comparison",
    "memory_technology_comparison",
    "CarbonIntensity",
    "CPU_SERVER_EMBODIED",
    "DualIntensity",
    "GHGInventory",
    "GPU_SERVER_EMBODIED",
    "SCOPE3_CATEGORIES",
    "ai_embodied_growth",
    "hyperscaler_inventory",
    "GridMixParams",
    "GridTrace",
    "NET_ZERO_PROGRAM",
    "NO_PROGRAM",
    "RenewableProcurement",
    "constant_grid_trace",
    "diurnal_forecast",
    "embodied_for_device_hours",
    "forecast_mape",
    "forecast_quality_sweep",
    "noisy_oracle",
    "persistence_forecast",
    "rolling_forecast",
    "schedule_with_forecast",
    "simulate_tick_trace",
    "stream_delta_payload",
    "stream_state_at",
    "StreamAdvice",
    "StreamSpec",
    "Tick",
    "intensity_for_region",
    "operational_embodied_split",
    "regions",
    "synthesize_grid_trace",
]
