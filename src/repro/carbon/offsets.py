"""Renewable procurement and net-zero matching (Section III-C).

Reaching net zero, per the paper, means "matching every unit of energy
consumed by data centers with 100% renewable energy purchased", with
remaining emissions offset.  This module models that annual matching
(market-based accounting) as distinct from *physical* 24/7 carbon-free
consumption, which :mod:`repro.scheduling.cfe` scores hour-by-hour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quantities import Carbon, Energy
from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class RenewableProcurement:
    """Annual renewable-energy matching program.

    ``match_fraction`` is the fraction of consumed energy matched with
    purchased renewables (1.0 = the paper's 100% matching);
    ``offset_fraction`` is the fraction of *residual* emissions neutralized
    by offsets.
    """

    match_fraction: float = 1.0
    offset_fraction: float = 0.0

    def __post_init__(self) -> None:
        if not (0 <= self.match_fraction <= 1):
            raise UnitError(
                f"match_fraction must be in [0, 1], got {self.match_fraction}"
            )
        if not (0 <= self.offset_fraction <= 1):
            raise UnitError(
                f"offset_fraction must be in [0, 1], got {self.offset_fraction}"
            )

    def market_based_emissions(self, location_based: Carbon) -> Carbon:
        """Market-based emissions after matching and offsets."""
        residual = location_based * (1.0 - self.match_fraction)
        return residual * (1.0 - self.offset_fraction)

    def matched_energy(self, consumed: Energy) -> Energy:
        """Renewable energy that must be procured to match ``consumed``."""
        return consumed * self.match_fraction


#: The paper's program: 100% renewable matching, remaining emissions offset.
NET_ZERO_PROGRAM = RenewableProcurement(match_fraction=1.0, offset_fraction=1.0)
#: No program: market-based == location-based.
NO_PROGRAM = RenewableProcurement(match_fraction=0.0, offset_fraction=0.0)
