"""Embodied (manufacturing) carbon via life-cycle analysis.

Methodology from Section III-A of the paper:

* A GPU-based AI training server is assumed to have an embodied footprint
  comparable to the production footprint of Apple's 28-core Mac Pro with
  dual GPUs: **2000 kgCO2e**.  CPU-only servers: **half** of that.
* Servers live **3-5 years** and run ML work at **30-60% utilization** on
  average; the embodied carbon of a task is the share of server-lifetime
  *useful* capacity the task consumes.

For client (edge) devices, manufacturing is ~74% of the device's total
life-cycle footprint (Gupta et al. 2021), which the edge package uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.core.quantities import Carbon
from repro.errors import UnitError

#: Embodied carbon of a GPU AI training server (Apple Mac Pro LCA proxy).
GPU_SERVER_EMBODIED = Carbon(2000.0)
#: Embodied carbon of a CPU-only server (half the GPU system, per paper).
CPU_SERVER_EMBODIED = Carbon(1000.0)
#: Manufacturing share of a client device's life-cycle footprint.
CLIENT_DEVICE_MANUFACTURING_SHARE = 0.74

#: Paper's stated server operating assumptions.
DEFAULT_LIFETIME_YEARS = 4.0  # midpoint of 3-5 years
DEFAULT_UTILIZATION = 0.45  # midpoint of 30-60%


@dataclass(frozen=True, slots=True)
class AmortizationPolicy:
    """How manufacturing carbon is spread over a server's useful life.

    ``lifetime_years`` is the service life; ``average_utilization`` the
    long-run fraction of time the server does useful work.  Amortization
    divides the manufacturing footprint over *utilized* hours only: an
    under-utilized server charges each hour of real work more embodied
    carbon, which is exactly the paper's argument for raising utilization
    (Figure 9).

    ``devices_per_server`` splits the server-level rate across the
    accelerators sharing one chassis; ``infrastructure_factor`` scales
    the manufacturing footprint to include datacenter construction and
    supporting equipment beyond the server itself (1.0 = server only).
    """

    lifetime_years: float = DEFAULT_LIFETIME_YEARS
    average_utilization: float = DEFAULT_UTILIZATION
    devices_per_server: float = 1.0
    infrastructure_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.lifetime_years <= 0:
            raise UnitError(f"lifetime must be positive, got {self.lifetime_years}")
        if not (0 < self.average_utilization <= 1):
            raise UnitError(
                f"utilization must be in (0, 1], got {self.average_utilization}"
            )
        if self.devices_per_server <= 0:
            raise UnitError(
                f"devices per server must be positive, got {self.devices_per_server}"
            )
        if self.infrastructure_factor < 1.0:
            raise UnitError(
                "infrastructure factor must be >= 1 (1.0 = server only), "
                f"got {self.infrastructure_factor}"
            )

    @property
    def lifetime_hours(self) -> float:
        return self.lifetime_years * units.HOURS_PER_YEAR

    @property
    def utilized_hours(self) -> float:
        return self.lifetime_hours * self.average_utilization

    def rate_per_utilized_hour(self, manufacturing: Carbon) -> float:
        """kgCO2e charged per hour of useful work on one server."""
        return manufacturing.kg * self.infrastructure_factor / self.utilized_hours

    def rate_per_device_hour(self, manufacturing: Carbon) -> float:
        """kgCO2e charged per utilized hour of one accelerator device."""
        return self.rate_per_utilized_hour(manufacturing) / self.devices_per_server

    def amortize(
        self, manufacturing: Carbon, busy_hours: float, n_servers: float = 1.0
    ) -> Carbon:
        """Embodied carbon attributed to ``busy_hours`` of work.

        Parameters
        ----------
        manufacturing:
            Manufacturing footprint of *one* server.
        busy_hours:
            Hours of useful work the task performed per server.
        n_servers:
            Number of servers involved (may be fractional for shared
            capacity).
        """
        if busy_hours < 0:
            raise UnitError(f"busy hours must be non-negative, got {busy_hours}")
        if n_servers < 0:
            raise UnitError(f"server count must be non-negative, got {n_servers}")
        attributed = self.rate_per_utilized_hour(manufacturing) * busy_hours * n_servers
        # A task cannot be charged more than the full manufacturing cost of
        # the servers (and their share of infrastructure) it ran on.
        cap = manufacturing.kg * self.infrastructure_factor * n_servers
        return Carbon(min(attributed, cap))


def embodied_for_device_hours(
    device_hours: float,
    manufacturing: Carbon = GPU_SERVER_EMBODIED,
    policy: AmortizationPolicy | None = None,
) -> Carbon:
    """Embodied carbon of ``device_hours`` of accelerator-server time.

    Convenience wrapper treating the workload as device-hours on identical
    servers under ``policy`` (paper defaults when omitted).
    """
    policy = policy or AmortizationPolicy()
    return Carbon(policy.rate_per_utilized_hour(manufacturing) * device_hours)


def operational_embodied_split(operational: Carbon, embodied: Carbon) -> tuple[float, float]:
    """(embodied, operational) shares of a total footprint."""
    total = operational.kg + embodied.kg
    if total == 0:
        return (0.0, 0.0)
    return (embodied.kg / total, operational.kg / total)
