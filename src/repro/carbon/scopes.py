"""GHG Protocol scope accounting (Section II-B).

"More than 50% of Facebook's emissions owe to its value chain — Scope 3
of Facebook's GHG emission.  As a result, a significant embodied carbon
cost is paid upfront for every system component brought into Facebook's
fleet of datacenters, where AI is the biggest growth driver."

Scopes:

* **Scope 1** — direct emissions (generators, refrigerants, vehicles);
* **Scope 2** — purchased electricity, reported location- and
  market-based;
* **Scope 3** — the value chain: capital goods (servers, buildings —
  where AI embodied carbon lives), purchased goods and services,
  business travel, employee commuting, use of sold products, ...

The inventory exposes exactly the decomposition the paper's argument
needs: renewable matching drives market-based Scope 2 to ~0, leaving
Scope 3 (embodied) dominant.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.carbon.offsets import RenewableProcurement
from repro.core.quantities import Carbon
from repro.errors import UnitError

#: Standard GHG Protocol Scope-3 category names used in the inventory.
SCOPE3_CATEGORIES = (
    "capital-goods",
    "purchased-goods-and-services",
    "fuel-and-energy-related",
    "business-travel",
    "employee-commuting",
    "upstream-transportation",
    "other",
)


@dataclass(frozen=True)
class GHGInventory:
    """One reporting year's emissions by scope."""

    scope1: Carbon
    scope2_location: Carbon
    scope3: dict[str, Carbon] = field(default_factory=dict)
    procurement: RenewableProcurement = field(
        default_factory=lambda: RenewableProcurement(1.0, 1.0)
    )

    def __post_init__(self) -> None:
        for category in self.scope3:
            if category not in SCOPE3_CATEGORIES:
                raise UnitError(
                    f"unknown scope-3 category {category!r}; "
                    f"known: {', '.join(SCOPE3_CATEGORIES)}"
                )

    @property
    def scope2_market(self) -> Carbon:
        return self.procurement.market_based_emissions(self.scope2_location)

    @property
    def scope3_total(self) -> Carbon:
        total = Carbon.zero()
        for carbon in self.scope3.values():
            total = total + carbon
        return total

    def total(self, market_based: bool = False) -> Carbon:
        scope2 = self.scope2_market if market_based else self.scope2_location
        return self.scope1 + scope2 + self.scope3_total

    def scope3_share(self, market_based: bool = False) -> float:
        total = self.total(market_based).kg
        if total == 0:
            return 0.0
        return self.scope3_total.kg / total

    def capital_goods(self) -> Carbon:
        return self.scope3.get("capital-goods", Carbon.zero())


def hyperscaler_inventory(
    fleet_electricity_kwh: float = 7.17e9,
    grid_kg_per_kwh: float = 0.429,
    ai_capital_goods: Carbon = Carbon.from_tonnes(900_000.0),
    other_capital_goods: Carbon = Carbon.from_tonnes(600_000.0),
) -> GHGInventory:
    """A Facebook-2020-shaped inventory.

    Scope 2 location-based follows fleet electricity x grid intensity;
    Scope 3 is sized so its share of the market-based total exceeds 50%,
    as the paper reports from the public sustainability data.
    """
    scope2_location = Carbon(fleet_electricity_kwh * grid_kg_per_kwh)
    scope3 = {
        "capital-goods": ai_capital_goods + other_capital_goods,
        "purchased-goods-and-services": Carbon.from_tonnes(850_000.0),
        "fuel-and-energy-related": Carbon.from_tonnes(180_000.0),
        "business-travel": Carbon.from_tonnes(90_000.0),
        "employee-commuting": Carbon.from_tonnes(75_000.0),
        "upstream-transportation": Carbon.from_tonnes(60_000.0),
        "other": Carbon.from_tonnes(120_000.0),
    }
    return GHGInventory(
        scope1=Carbon.from_tonnes(15_000.0),
        scope2_location=scope2_location,
        scope3=scope3,
    )


def ai_embodied_growth(
    inventory: GHGInventory,
    ai_capital_share: float,
    capacity_growth_factor: float,
) -> Carbon:
    """Capital-goods carbon after AI capacity grows by a factor.

    ``ai_capital_share`` is the fraction of today's capital goods that is
    AI infrastructure; growing that slice by ``capacity_growth_factor``
    (e.g. the paper's 2.9x training-capacity growth) shows why AI is "the
    biggest growth driver" of Scope 3.
    """
    if not (0 <= ai_capital_share <= 1):
        raise UnitError("AI capital share must be in [0, 1]")
    if capacity_growth_factor <= 0:
        raise UnitError("growth factor must be positive")
    capital = inventory.capital_goods()
    ai_part = capital * ai_capital_share
    other = capital * (1.0 - ai_capital_share)
    return other + ai_part * capacity_growth_factor
