"""Query model of the carbon-query service.

Every endpoint of :mod:`repro.service.app` is backed by a :class:`Query`:
a validated, *normalized* bundle of parameters with

* a canonical cache key (:meth:`Query.cache_key`) used by the response
  LRU and the micro-batcher — two requests that normalize to the same
  key are answered by one execution;
* a pure library execution (:meth:`Query.execute`) over the existing
  engine (:func:`repro.experiments.registry.run_experiment`,
  :func:`repro.core.scenario.evaluate_work`, the carbon-aware
  scheduler), returning a JSON-safe payload; and
* one canonical serialization (:func:`render_payload`), shared by the
  service, the conformance tests, and any direct library caller —
  this is what makes service responses *byte-identical* to direct calls.

Queries travel to pool workers as ``(kind, params_json)`` pairs and are
re-parsed there (:func:`execute_query_task`), so the worker boundary only
ever carries plain strings and dicts.  The task body fires the
fault-injection hooks of :mod:`repro.testing.faults` exactly like the
experiment runner's worker does, and ships the substrate-cache counter
delta of the execution back to the parent alongside the payload.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.carbon.intensity import CarbonIntensity, intensity_for_region, regions
from repro.core.canonical import canonical_bytes, compact_dumps
from repro.errors import QueryError, UnitError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.sweep import SweepSpec

#: Query kinds, in routing order (kind -> parser).
QUERY_KINDS: tuple[str, ...] = (
    "experiment",
    "footprint",
    "genai",
    "schedule",
    "sweep",
    "stream",
)

#: Bounds keeping a single query's work bounded (the service answers
#: interactive traffic; year-scale sweeps belong to the CLI runner).
MAX_JOBS = 500
MAX_HORIZON_HOURS = 8784
MAX_BUSY_DEVICE_HOURS = 1e12

#: Service-side cap on one sweep's point count — far below the library's
#: :data:`repro.core.sweep.MAX_SWEEP_POINTS`; larger sweeps belong to the
#: CLI (``sustainable-ai sweep``), which resumes via the disk cache.
MAX_SERVICE_SWEEP_POINTS = 20_000

#: Service-side cap on one stream's horizon — a year of hourly ticks;
#: multi-year streams belong to the library/bench path
#: (:data:`repro.carbon.stream.MAX_STREAM_HOURS`).
MAX_SERVICE_STREAM_HOURS = 8784


def render_payload(payload: Mapping[str, object]) -> bytes:
    """The one canonical JSON serialization of a response payload.

    Both the service and the direct library path serialize through this
    function, so equality of payloads is equality of response bytes.
    Delegates to :func:`repro.core.canonical.canonical_bytes` — the same
    serialization the ledger uses to reconstruct recorded payloads.
    """
    return canonical_bytes(payload)


# -- coercion helpers --------------------------------------------------------
# GET requests deliver every parameter as a string; POST bodies deliver
# JSON numbers.  The coercers accept both and reject everything else.


def _as_float(name: str, value: object) -> float:
    if isinstance(value, bool):
        raise QueryError(f"parameter {name!r} must be a number, got a boolean")
    if isinstance(value, (int, float)):
        out = float(value)
    elif isinstance(value, str):
        try:
            out = float(value)
        except ValueError:
            raise QueryError(f"parameter {name!r} must be a number, got {value!r}") from None
    else:
        raise QueryError(f"parameter {name!r} must be a number, got {type(value).__name__}")
    if not math.isfinite(out):
        raise QueryError(f"parameter {name!r} must be finite, got {out!r}")
    return out


def _as_int(name: str, value: object) -> int:
    out = _as_float(name, value)
    if out != int(out):
        raise QueryError(f"parameter {name!r} must be an integer, got {out!r}")
    return int(out)


def _in_range(name: str, value: float, lo: float, hi: float, *, lo_open: bool = False) -> float:
    if value < lo or value > hi or (lo_open and value == lo):
        bracket = "(" if lo_open else "["
        raise QueryError(f"parameter {name!r} must be in {bracket}{lo}, {hi}], got {value}")
    return value


def _reject_unknown(kind: str, params: Mapping[str, object], allowed: tuple[str, ...]) -> None:
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise QueryError(
            f"unknown parameter(s) for {kind!r} query: {', '.join(unknown)}; "
            f"allowed: {', '.join(allowed)}"
        )


@dataclass(frozen=True)
class Query:
    """One validated service query (see subclasses for the parameters)."""

    kind = "abstract"

    def to_params(self) -> dict[str, object]:
        raise NotImplementedError

    def execute(self) -> dict[str, object]:
        raise NotImplementedError

    def fault_target(self) -> str:
        """The :mod:`repro.testing.faults` target name of this query."""
        return self.kind

    def cache_key(self) -> str:
        """Canonical identity: kind plus normalized, sorted parameters."""
        return f"{self.kind}?" + compact_dumps(self.to_params())


# ---------------------------------------------------------------------------
# /experiments/{id}
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentQuery(Query):
    """Run one registered experiment; the payload is the runner envelope."""

    experiment_id: str

    kind = "experiment"

    def to_params(self) -> dict[str, object]:
        return {"experiment_id": self.experiment_id}

    def fault_target(self) -> str:
        return self.experiment_id

    def execute(self) -> dict[str, object]:
        from repro.experiments.registry import run_experiment

        return run_experiment(self.experiment_id).to_payload()


def parse_experiment(params: Mapping[str, object]) -> ExperimentQuery:
    """Validate ``experiment`` query parameters into an :class:`ExperimentQuery`."""
    _reject_unknown("experiment", params, ("experiment_id",))
    from repro.experiments.registry import experiment_ids

    experiment_id = params.get("experiment_id")
    if not isinstance(experiment_id, str) or not experiment_id:
        raise QueryError("parameter 'experiment_id' must be a non-empty string")
    if experiment_id not in experiment_ids():
        raise QueryError(
            f"unknown experiment {experiment_id!r} "
            "(GET /experiments lists all registered ids)"
        )
    return ExperimentQuery(experiment_id)


# ---------------------------------------------------------------------------
# /footprint
# ---------------------------------------------------------------------------

_FOOTPRINT_PARAMS: tuple[str, ...] = (
    "busy_device_hours",
    "utilization",
    "pue",
    "lifetime_years",
    "intensity_kg_per_kwh",
    "region",
    "devices_per_server",
    "board_power_fraction",
    "infrastructure_factor",
)


@dataclass(frozen=True)
class FootprintQuery(Query):
    """Total footprint of a quantum of useful work under scenario knobs.

    Mirrors :class:`repro.core.scenario.Scenario` /
    :func:`repro.core.scenario.evaluate_work`: ``busy_device_hours`` of
    fully-busy-equivalent device time, evaluated under the given grid
    intensity, utilization, PUE, and embodied-amortization knobs.
    """

    busy_device_hours: float
    utilization: float
    pue: float
    lifetime_years: float
    intensity_kg_per_kwh: float
    intensity_label: str
    devices_per_server: int
    board_power_fraction: float
    infrastructure_factor: float

    kind = "footprint"

    def to_params(self) -> dict[str, object]:
        return {
            "busy_device_hours": self.busy_device_hours,
            "utilization": self.utilization,
            "pue": self.pue,
            "lifetime_years": self.lifetime_years,
            "intensity_kg_per_kwh": self.intensity_kg_per_kwh,
            "intensity_label": self.intensity_label,
            "devices_per_server": self.devices_per_server,
            "board_power_fraction": self.board_power_fraction,
            "infrastructure_factor": self.infrastructure_factor,
        }

    def execute(self) -> dict[str, object]:
        from repro.core.scenario import Scenario, evaluate_work

        scenario = Scenario(
            intensity=CarbonIntensity(self.intensity_kg_per_kwh, self.intensity_label),
            utilization=self.utilization,
            lifetime_years=self.lifetime_years,
            pue=self.pue,
            devices_per_server=self.devices_per_server,
            board_power_fraction=self.board_power_fraction,
            infrastructure_embodied_factor=self.infrastructure_factor,
            name="service-footprint",
        )
        outcome = evaluate_work(self.busy_device_hours, scenario)
        return {
            "query": self.to_params(),
            "headline": {
                "facility_energy_kwh": outcome.energy.kwh,
                "it_energy_kwh": outcome.energy.kwh / self.pue,
                "operational_kg": outcome.operational.kg,
                "embodied_kg": outcome.embodied.kg,
                "total_kg": outcome.total.kg,
                "operational_share": (
                    outcome.operational.kg / outcome.total.kg if outcome.total.kg else 0.0
                ),
                "embodied_share": outcome.embodied_share,
            },
        }


def parse_footprint(params: Mapping[str, object]) -> FootprintQuery:
    """Validate ``footprint`` query parameters into a :class:`FootprintQuery`."""
    _reject_unknown("footprint", params, _FOOTPRINT_PARAMS + ("intensity_label",))
    if "busy_device_hours" not in params:
        raise QueryError("footprint query requires 'busy_device_hours'")
    busy = _in_range(
        "busy_device_hours",
        _as_float("busy_device_hours", params["busy_device_hours"]),
        0.0,
        MAX_BUSY_DEVICE_HOURS,
    )
    utilization = _in_range(
        "utilization", _as_float("utilization", params.get("utilization", 0.45)), 0.0, 1.0,
        lo_open=True,
    )
    pue = _in_range("pue", _as_float("pue", params.get("pue", 1.10)), 1.0, 10.0)
    lifetime = _in_range(
        "lifetime_years",
        _as_float("lifetime_years", params.get("lifetime_years", 4.0)),
        0.0,
        100.0,
        lo_open=True,
    )
    board = _in_range(
        "board_power_fraction",
        _as_float("board_power_fraction", params.get("board_power_fraction", 0.95)),
        0.0,
        1.0,
        lo_open=True,
    )
    infra = _in_range(
        "infrastructure_factor",
        _as_float("infrastructure_factor", params.get("infrastructure_factor", 3.0)),
        1.0,
        100.0,
    )
    devices = _as_int("devices_per_server", params.get("devices_per_server", 2))
    if not (1 <= devices <= 1024):
        raise QueryError(f"parameter 'devices_per_server' must be in [1, 1024], got {devices}")

    if "intensity_kg_per_kwh" in params and "region" in params:
        raise QueryError("provide either 'intensity_kg_per_kwh' or 'region', not both")
    if "region" in params:
        region = params["region"]
        if not isinstance(region, str) or region not in regions():
            raise QueryError(
                f"unknown region {region!r}; known: {', '.join(regions())}"
            )
        intensity = intensity_for_region(region)
        kg_per_kwh, label = intensity.kg_per_kwh, intensity.label
    elif "intensity_kg_per_kwh" in params:
        kg_per_kwh = _in_range(
            "intensity_kg_per_kwh",
            _as_float("intensity_kg_per_kwh", params["intensity_kg_per_kwh"]),
            0.0,
            10.0,
        )
        label = str(params.get("intensity_label", "custom"))
    else:
        from repro.carbon.intensity import US_AVERAGE

        kg_per_kwh, label = US_AVERAGE.kg_per_kwh, US_AVERAGE.label
    return FootprintQuery(
        busy_device_hours=busy,
        utilization=utilization,
        pue=pue,
        lifetime_years=lifetime,
        intensity_kg_per_kwh=kg_per_kwh,
        intensity_label=label,
        devices_per_server=devices,
        board_power_fraction=board,
        infrastructure_factor=infra,
    )


# ---------------------------------------------------------------------------
# /footprint with workload= : GenAI training / serving scenarios
# ---------------------------------------------------------------------------

_GENAI_WORKLOADS: tuple[str, ...] = ("llm-training", "llm-serving")

_GENAI_PARAMS: tuple[str, ...] = (
    "workload",
    "model",
    "accelerator",
    "n_params",
    "n_tokens",
    "mfu",
    "n_accelerators",
    "peak_qps",
    "tokens_per_request",
    "context_tokens",
    "batch_size",
    "hours",
    "trough_fraction",
    "demand_seed",
    "utilization",
    "pue",
    "lifetime_years",
    "devices_per_server",
    "intensity_kg_per_kwh",
    "region",
)


@dataclass(frozen=True)
class GenAIQuery(Query):
    """Footprint of one LLM training run or serving window.

    Rides the ``/footprint`` endpoint (selected by the ``workload``
    parameter) and evaluates :mod:`repro.workloads.genai` specs under the
    same region/PUE/lifetime knobs as the scalar footprint query.  A
    ``model`` inventory name is resolved to explicit numbers at parse
    time, so the cache key of ``model=llm-7b`` and its expansion are one
    entry.
    """

    workload: str
    accelerator: str
    n_params: float
    n_tokens: float
    mfu: float
    n_accelerators: int
    peak_qps: float
    tokens_per_request: float
    context_tokens: float
    batch_size: int
    hours: int
    trough_fraction: float
    demand_seed: int
    utilization: float
    pue: float
    lifetime_years: float
    devices_per_server: int
    intensity_kg_per_kwh: float
    intensity_label: str

    kind = "genai"

    def to_params(self) -> dict[str, object]:
        params: dict[str, object] = {
            "workload": self.workload,
            "accelerator": self.accelerator,
            "n_params": self.n_params,
            "utilization": self.utilization,
            "pue": self.pue,
            "lifetime_years": self.lifetime_years,
            "devices_per_server": self.devices_per_server,
            "intensity_kg_per_kwh": self.intensity_kg_per_kwh,
            "intensity_label": self.intensity_label,
        }
        if self.workload == "llm-training":
            params.update(
                n_tokens=self.n_tokens,
                mfu=self.mfu,
                n_accelerators=self.n_accelerators,
            )
        else:
            params.update(
                peak_qps=self.peak_qps,
                tokens_per_request=self.tokens_per_request,
                context_tokens=self.context_tokens,
                batch_size=self.batch_size,
                hours=self.hours,
                trough_fraction=self.trough_fraction,
                demand_seed=self.demand_seed,
            )
        return params

    def _spec(self):
        from repro.energy.devices import device
        from repro.workloads.genai import LLMTrainingSpec, LLMServingSpec

        accelerator = device(self.accelerator)
        if self.workload == "llm-training":
            return LLMTrainingSpec(
                name="service-genai",
                n_params=self.n_params,
                n_tokens=self.n_tokens,
                mfu=self.mfu,
                accelerator=accelerator,
                n_accelerators=self.n_accelerators,
            )
        return LLMServingSpec(
            name="service-genai",
            n_params=self.n_params,
            peak_qps=self.peak_qps,
            accelerator=accelerator,
            tokens_per_request=self.tokens_per_request,
            context_tokens=self.context_tokens,
            batch_size=self.batch_size,
            hours=self.hours,
            trough_fraction=self.trough_fraction,
            demand_seed=self.demand_seed,
        )

    def _context(self):
        from repro.workloads.genai import default_genai_context

        return default_genai_context(
            intensity=CarbonIntensity(self.intensity_kg_per_kwh, self.intensity_label),
            pue=self.pue,
            lifetime_years=self.lifetime_years,
            average_utilization=self.utilization,
            devices_per_server=float(self.devices_per_server),
        )

    def execute(self) -> dict[str, object]:
        from repro.workloads.genai import serving_footprint, training_footprint

        spec = self._spec()
        if self.workload == "llm-training":
            footprint = training_footprint(spec, self._context())
            extra = {
                "accelerator_hours": spec.accelerator_hours,
                "wall_clock_hours": spec.wall_clock_hours,
                "overhead_multiplier": spec.overhead_multiplier,
            }
        else:
            footprint = serving_footprint(spec, self._context())
            extra = {
                "busy_device_hours": spec.busy_device_hours,
                "total_tokens": spec.total_tokens,
                "joules_per_token": spec.joules_per_token,
                "accelerators_at_peak": float(spec.accelerators_at_peak),
            }
        return {
            "query": self.to_params(),
            "headline": {
                "it_energy_kwh": footprint.it_energy.kwh,
                "facility_energy_kwh": footprint.facility_energy.kwh,
                "operational_kg": footprint.operational.kg,
                "embodied_kg": footprint.embodied.kg,
                "total_kg": footprint.total.kg,
                "operational_share": footprint.operational_share,
                "embodied_share": footprint.embodied_share,
                **extra,
            },
        }


def parse_genai(params: Mapping[str, object]) -> GenAIQuery:
    """Validate ``genai`` query parameters into a :class:`GenAIQuery`."""
    _reject_unknown("genai", params, _GENAI_PARAMS + ("intensity_label",))
    workload = params.get("workload")
    if workload not in _GENAI_WORKLOADS:
        raise QueryError(
            f"parameter 'workload' must be one of {', '.join(_GENAI_WORKLOADS)}; "
            f"got {workload!r}"
        )

    spec_defaults: dict[str, float] = {
        "n_params": 7.0e9,
        "n_tokens": 1.4e11,
        "mfu": 0.40,
        "n_accelerators": 512,
    }
    if "model" in params:
        from repro.workloads.genai import inventory_spec

        if workload != "llm-training":
            raise QueryError("parameter 'model' applies only to workload 'llm-training'")
        overridden = sorted(set(spec_defaults) & set(params))
        if overridden:
            raise QueryError(
                "provide either 'model' or explicit spec knobs, not both "
                f"(got model plus: {', '.join(overridden)})"
            )
        model = params["model"]
        if not isinstance(model, str):
            raise QueryError(f"parameter 'model' must be a string, got {model!r}")
        try:
            inventory = inventory_spec(model)
        except UnitError as exc:
            raise QueryError(str(exc)) from None
        spec_defaults.update(
            n_params=inventory.n_params,
            n_tokens=inventory.n_tokens,
            mfu=inventory.mfu,
            n_accelerators=inventory.n_accelerators,
        )

    accelerator = params.get("accelerator", "NVIDIA A100 (tensor)")
    from repro.energy.devices import catalog, device

    if not isinstance(accelerator, str) or accelerator not in catalog():
        raise QueryError(
            f"unknown accelerator {accelerator!r}; known: {', '.join(catalog())}"
        )
    if device(accelerator).peak_tflops <= 0.0:
        raise QueryError(f"accelerator {accelerator!r} has no peak throughput")

    n_params = _in_range(
        "n_params",
        _as_float("n_params", params.get("n_params", spec_defaults["n_params"])),
        0.0,
        1e13,
        lo_open=True,
    )
    n_tokens = _in_range(
        "n_tokens",
        _as_float("n_tokens", params.get("n_tokens", spec_defaults["n_tokens"])),
        0.0,
        1e15,
        lo_open=True,
    )
    mfu = _in_range(
        "mfu",
        _as_float("mfu", params.get("mfu", spec_defaults["mfu"])),
        0.0,
        0.95,
        lo_open=True,
    )
    n_accelerators = _as_int(
        "n_accelerators", params.get("n_accelerators", spec_defaults["n_accelerators"])
    )
    if not (1 <= n_accelerators <= 65536):
        raise QueryError(
            f"parameter 'n_accelerators' must be in [1, 65536], got {n_accelerators}"
        )
    peak_qps = _in_range(
        "peak_qps", _as_float("peak_qps", params.get("peak_qps", 100.0)), 0.0, 1e6,
        lo_open=True,
    )
    tokens_per_request = _in_range(
        "tokens_per_request",
        _as_float("tokens_per_request", params.get("tokens_per_request", 256.0)),
        0.0,
        1e5,
        lo_open=True,
    )
    context_tokens = _in_range(
        "context_tokens",
        _as_float("context_tokens", params.get("context_tokens", 1024.0)),
        0.0,
        32768.0,
        lo_open=True,
    )
    batch_size = _as_int("batch_size", params.get("batch_size", 16))
    if not (1 <= batch_size <= 512):
        raise QueryError(f"parameter 'batch_size' must be in [1, 512], got {batch_size}")
    hours = _as_int("hours", params.get("hours", 168))
    if not (1 <= hours <= MAX_HORIZON_HOURS):
        raise QueryError(
            f"parameter 'hours' must be in [1, {MAX_HORIZON_HOURS}], got {hours}"
        )
    trough_fraction = _in_range(
        "trough_fraction",
        _as_float("trough_fraction", params.get("trough_fraction", 0.68)),
        0.05,
        0.95,
    )
    demand_seed = _as_int("demand_seed", params.get("demand_seed", 0))
    if not (0 <= demand_seed <= 2**32 - 1):
        raise QueryError(
            f"parameter 'demand_seed' must be in [0, 2**32 - 1], got {demand_seed}"
        )

    utilization = _in_range(
        "utilization", _as_float("utilization", params.get("utilization", 0.45)), 0.0, 1.0,
        lo_open=True,
    )
    pue = _in_range("pue", _as_float("pue", params.get("pue", 1.10)), 1.0, 10.0)
    lifetime = _in_range(
        "lifetime_years",
        _as_float("lifetime_years", params.get("lifetime_years", 4.0)),
        0.0,
        100.0,
        lo_open=True,
    )
    devices = _as_int("devices_per_server", params.get("devices_per_server", 8))
    if not (1 <= devices <= 1024):
        raise QueryError(f"parameter 'devices_per_server' must be in [1, 1024], got {devices}")

    if "intensity_kg_per_kwh" in params and "region" in params:
        raise QueryError("provide either 'intensity_kg_per_kwh' or 'region', not both")
    if "region" in params:
        region = params["region"]
        if not isinstance(region, str) or region not in regions():
            raise QueryError(f"unknown region {region!r}; known: {', '.join(regions())}")
        intensity = intensity_for_region(region)
        kg_per_kwh, label = intensity.kg_per_kwh, intensity.label
    elif "intensity_kg_per_kwh" in params:
        kg_per_kwh = _in_range(
            "intensity_kg_per_kwh",
            _as_float("intensity_kg_per_kwh", params["intensity_kg_per_kwh"]),
            0.0,
            10.0,
        )
        label = str(params.get("intensity_label", "custom"))
    else:
        from repro.carbon.intensity import US_AVERAGE

        kg_per_kwh, label = US_AVERAGE.kg_per_kwh, US_AVERAGE.label

    query = GenAIQuery(
        workload=workload,
        accelerator=accelerator,
        n_params=n_params,
        n_tokens=n_tokens,
        mfu=mfu,
        n_accelerators=n_accelerators,
        peak_qps=peak_qps,
        tokens_per_request=tokens_per_request,
        context_tokens=context_tokens,
        batch_size=batch_size,
        hours=hours,
        trough_fraction=trough_fraction,
        demand_seed=demand_seed,
        utilization=utilization,
        pue=pue,
        lifetime_years=lifetime,
        devices_per_server=devices,
        intensity_kg_per_kwh=kg_per_kwh,
        intensity_label=label,
    )
    try:
        query._spec()  # surface KV-cache/memory violations as 400s at parse time
    except UnitError as exc:
        raise QueryError(str(exc)) from None
    return query


# ---------------------------------------------------------------------------
# /schedule/carbon-aware
# ---------------------------------------------------------------------------

_SCHEDULE_PARAMS: tuple[str, ...] = (
    "n_jobs",
    "seed",
    "horizon_hours",
    "capacity_kw",
    "grid_hours",
    "grid_seed",
)


@dataclass(frozen=True)
class ScheduleQuery(Query):
    """Carbon-aware vs immediate placement of a synthetic job batch.

    The grid trace is a memoized substrate
    (:func:`repro.carbon.grid.synthesize_grid_trace`), so identical
    ``(grid_hours, grid_seed)`` queries — coalesced or not — share one
    build per worker process.
    """

    n_jobs: int
    seed: int
    horizon_hours: int
    capacity_kw: float | None
    grid_hours: int
    grid_seed: int

    kind = "schedule"

    def to_params(self) -> dict[str, object]:
        return {
            "n_jobs": self.n_jobs,
            "seed": self.seed,
            "horizon_hours": self.horizon_hours,
            "capacity_kw": self.capacity_kw,
            "grid_hours": self.grid_hours,
            "grid_seed": self.grid_seed,
        }

    def execute(self) -> dict[str, object]:
        from repro.carbon.grid import synthesize_grid_trace
        from repro.scheduling.carbon_aware import (
            carbon_saving,
            schedule_carbon_aware,
            schedule_immediate,
        )
        from repro.scheduling.jobs import synthesize_jobs

        grid = synthesize_grid_trace(hours=self.grid_hours, seed=self.grid_seed)
        jobs = synthesize_jobs(
            n_jobs=self.n_jobs, horizon_hours=self.horizon_hours, seed=self.seed
        )
        capacity = float("inf") if self.capacity_kw is None else self.capacity_kw
        baseline = schedule_immediate(jobs, grid, self.horizon_hours, capacity)
        aware = schedule_carbon_aware(jobs, grid, self.horizon_hours, capacity)
        return {
            "query": self.to_params(),
            "headline": {
                "immediate_kg": baseline.total_carbon.kg,
                "carbon_aware_kg": aware.total_carbon.kg,
                "carbon_saving": carbon_saving(baseline, aware),
                "deadline_misses": float(aware.deadline_misses),
                "peak_power_kw_immediate": baseline.peak_power_kw,
                "peak_power_kw_aware": aware.peak_power_kw,
            },
            "start_hours": {
                str(job_id): aware.start_hours[job_id] for job_id in sorted(aware.start_hours)
            },
        }


def parse_schedule(params: Mapping[str, object]) -> ScheduleQuery:
    """Validate ``schedule`` query parameters into a :class:`ScheduleQuery`."""
    _reject_unknown("schedule", params, _SCHEDULE_PARAMS)
    n_jobs = _as_int("n_jobs", params.get("n_jobs", 60))
    if not (1 <= n_jobs <= MAX_JOBS):
        raise QueryError(f"parameter 'n_jobs' must be in [1, {MAX_JOBS}], got {n_jobs}")
    horizon = _as_int("horizon_hours", params.get("horizon_hours", 168))
    if not (24 <= horizon <= MAX_HORIZON_HOURS):
        raise QueryError(
            f"parameter 'horizon_hours' must be in [24, {MAX_HORIZON_HOURS}], got {horizon}"
        )
    grid_hours = _as_int("grid_hours", params.get("grid_hours", 168))
    if not (24 <= grid_hours <= MAX_HORIZON_HOURS):
        raise QueryError(
            f"parameter 'grid_hours' must be in [24, {MAX_HORIZON_HOURS}], got {grid_hours}"
        )
    if horizon > grid_hours:
        raise QueryError(
            f"'horizon_hours' ({horizon}) must not exceed 'grid_hours' ({grid_hours}); "
            "jobs scheduled past the grid trace would have undefined emissions"
        )
    capacity: float | None = None
    if params.get("capacity_kw") is not None:
        capacity = _in_range(
            "capacity_kw", _as_float("capacity_kw", params["capacity_kw"]), 0.0, 1e9,
            lo_open=True,
        )
    return ScheduleQuery(
        n_jobs=n_jobs,
        seed=_as_int("seed", params.get("seed", 0)),
        horizon_hours=horizon,
        capacity_kw=capacity,
        grid_hours=grid_hours,
        grid_seed=_as_int("grid_seed", params.get("grid_seed", 0)),
    )


# ---------------------------------------------------------------------------
# /sweep
# ---------------------------------------------------------------------------

_SWEEP_PARAMS: tuple[str, ...] = (
    "busy_device_hours",
    "ranges",
    "sampling",
    "n_points",
    "seed",
    "intensity_kg_per_kwh",
    "intensity_label",
    "devices_per_server",
)


@dataclass(frozen=True)
class SweepQuery(Query):
    """A stacked scenario sweep (:mod:`repro.core.sweep`) as a service job.

    Unlike the interactive query kinds this one is executed *chunked* by
    :class:`repro.service.sweeps.SweepManager` — submit, poll progress,
    fetch the result — but it still carries the standard cache key, so a
    finished sweep's bytes are served straight from the response LRU, and
    :meth:`execute` remains the one-shot library-equivalent path the
    conformance suite compares those bytes against.
    """

    spec: "SweepSpec"

    kind = "sweep"

    def to_params(self) -> dict[str, object]:
        from repro.core.sweep import spec_to_params

        return spec_to_params(self.spec)

    def execute(self) -> dict[str, object]:
        from repro.core.sweep import run_sweep

        return run_sweep(self.spec).to_payload()


def parse_sweep(params: Mapping[str, object]) -> SweepQuery:
    """Validate ``sweep`` query parameters into a :class:`SweepQuery`.

    Accepts the :func:`repro.core.sweep.spec_to_params` document; the
    ``ranges`` list may arrive JSON-encoded (query-string transport).
    """
    from repro.core.sweep import spec_from_params
    from repro.errors import UnitError

    _reject_unknown("sweep", params, _SWEEP_PARAMS)
    normalized = dict(params)
    ranges = normalized.get("ranges")
    if isinstance(ranges, str):
        try:
            normalized["ranges"] = json.loads(ranges)
        except json.JSONDecodeError as exc:
            raise QueryError(f"parameter 'ranges' is not valid JSON: {exc}") from None
    try:
        spec = spec_from_params(normalized)
    except UnitError as exc:
        raise QueryError(str(exc)) from None
    if spec.total_points() > MAX_SERVICE_SWEEP_POINTS:
        raise QueryError(
            f"sweep would evaluate {spec.total_points()} points; the service "
            f"cap is {MAX_SERVICE_SWEEP_POINTS} (use the 'sustainable-ai "
            "sweep' CLI for larger sweeps)"
        )
    return SweepQuery(spec)


def execute_sweep_chunk_task(
    params_json: str, start: int, stop: int, attempt: int = 0, in_worker: bool = True
) -> dict[str, object]:
    """Worker body for one sweep chunk: fault hooks, compute, ship stats.

    The chunk travels back as plain arrays plus the substrate-cache
    counter delta, mirroring :func:`execute_query_task`.  ``attempt``
    feeds the fault grammar's ``@attempts`` selector, so ``crash:sweep@0``
    kills only the first try of a chunk and the manager's retry resumes
    the sweep from the chunk that died.
    """
    from repro.core import memo
    from repro.core.sweep import spec_from_params, sweep_chunk
    from repro.testing import faults

    spec = spec_from_params(json.loads(params_json))
    faults.install_memo_corruption()
    faults.inject("sweep", attempt=attempt, hard_exit=in_worker)
    before = memo.stats_snapshot()
    with memo.collect_substrates() as collector:
        energy, operational, embodied = sweep_chunk(spec, start, stop)
    delta = memo.stats_delta(before, memo.stats_snapshot())
    return {
        "chunk": (energy, operational, embodied),
        "stats_delta": delta,
        "substrates": collector.pairs,
    }


# ---------------------------------------------------------------------------
# /stream
# ---------------------------------------------------------------------------

#: Spec fields coerced as integers / floats (name -> declared range).
_STREAM_INT_PARAMS: dict[str, tuple[int, int]] = {
    "hours": (48, MAX_SERVICE_STREAM_HOURS),
    "grid_seed": (0, 2**31 - 1),
    "feed_seed": (0, 2**31 - 1),
    "window_hours": (1, 168),
    "forecast_horizon_hours": (1, 168),
    "max_late_hours": (1, 72),
    "max_revision_lag_hours": (1, 168),
    "max_stall_hours": (1, 168),
    "stall_detect_hours": (1, 168),
}
_STREAM_FLOAT_PARAMS: dict[str, tuple[float, float]] = {
    "load_kw": (0.0, 1e6),
    "load_diurnal_fraction": (0.0, 1.0),
    "pue": (1.0, 10.0),
    "late_probability": (0.0, 1.0),
    "revision_probability": (0.0, 1.0),
    "revision_noise": (0.0, 1.0),
    "stall_probability": (0.0, 0.5),
    "defer_margin": (0.0, 1.0),
    "min_powered_fraction": (0.0, 1.0),
}

#: Transport-level ``/stream`` parameters (cursor position, long-poll
#: wait, page size).  They select *which delta* of a stream to serve,
#: not which stream — the endpoint and the fabric router strip them
#: before parsing, so a stream's cache key (its fabric routing key) is
#: the spec alone and every cursor of one stream pins to one replica.
STREAM_TRANSPORT_PARAMS: tuple[str, ...] = ("cursor", "wait_s", "max_ticks")


@dataclass(frozen=True)
class StreamQuery(Query):
    """One live intensity stream, identified by its full spec.

    The cache key deliberately excludes the transport parameters
    (:data:`STREAM_TRANSPORT_PARAMS`): it names the *stream*, which is
    what consistent-hash fabric routing needs.  :meth:`execute` is the
    direct library path for the whole stream — the document a client
    would assemble by paging ``cursor=0`` to the end — used by the
    conformance suite; the live endpoint serves per-cursor deltas
    through the same renderer.
    """

    spec: object  # repro.carbon.stream.StreamSpec (kept lazy for worker import cost)

    kind = "stream"

    def to_params(self) -> dict[str, object]:
        return self.spec.to_params()

    def execute(self) -> dict[str, object]:
        from repro.carbon.stream import simulate_tick_trace, stream_delta_payload

        ticks = simulate_tick_trace(self.spec)
        return stream_delta_payload(self.spec, 0, len(ticks), ticks=ticks)


def parse_stream(params: Mapping[str, object]) -> StreamQuery:
    """Validate ``stream`` query parameters into a :class:`StreamQuery`."""
    from repro.carbon.stream import StreamSpec
    from repro.errors import UnitError

    allowed = tuple(_STREAM_INT_PARAMS) + tuple(_STREAM_FLOAT_PARAMS)
    _reject_unknown("stream", params, allowed)
    kwargs: dict[str, object] = {}
    for name, (lo, hi) in _STREAM_INT_PARAMS.items():
        if name in params:
            value = _as_int(name, params[name])
            if not (lo <= value <= hi):
                raise QueryError(f"parameter {name!r} must be in [{lo}, {hi}], got {value}")
            kwargs[name] = value
    for name, (lo, hi) in _STREAM_FLOAT_PARAMS.items():
        if name in params:
            kwargs[name] = _in_range(name, _as_float(name, params[name]), lo, hi)
    try:
        spec = StreamSpec(**kwargs)
    except UnitError as exc:
        raise QueryError(str(exc)) from None
    return StreamQuery(spec)


# ---------------------------------------------------------------------------
# Dispatch, worker task body, invariant bridging
# ---------------------------------------------------------------------------

_PARSERS = {
    "experiment": parse_experiment,
    "footprint": parse_footprint,
    "genai": parse_genai,
    "schedule": parse_schedule,
    "sweep": parse_sweep,
    "stream": parse_stream,
}


def parse_query(kind: str, params: Mapping[str, object]) -> Query:
    """Parse and validate one query; raises :class:`QueryError`."""
    try:
        parser = _PARSERS[kind]
    except KeyError:
        raise QueryError(
            f"unknown query kind {kind!r}; known: {', '.join(QUERY_KINDS)}"
        ) from None
    return parser(params)


def execute_query_task(kind: str, params_json: str, in_worker: bool = True) -> dict[str, object]:
    """Worker body: parse, fire fault hooks, execute, ship stats back.

    Mirrors the experiment runner's worker
    (:func:`repro.experiments.runner._execute`): fault-injection hooks
    run first so the production degradation paths are what tests
    exercise, and the substrate-cache counter delta of this execution
    rides back to the service process for the ``/metrics`` merge.
    ``in_worker=False`` (inline execution, ``--workers 0``) downgrades
    ``crash`` faults to exceptions so the server process survives.
    """
    from repro.core import memo
    from repro.testing import faults

    query = parse_query(kind, json.loads(params_json))
    faults.install_memo_corruption()
    faults.inject(query.fault_target(), attempt=0, hard_exit=in_worker)
    before = memo.stats_snapshot()
    with memo.collect_substrates() as collector:
        payload = query.execute()
    delta = memo.stats_delta(before, memo.stats_snapshot())
    return {"payload": payload, "stats_delta": delta, "substrates": collector.pairs}


def payload_to_result(payload: Mapping[str, object]):
    """Bridge a service response payload to an :class:`ExperimentResult`.

    Lets every service response flow through the PR-3 result-invariant
    registry (:func:`repro.testing.invariants.check_result`): experiment
    payloads round-trip as-is, and footprint/schedule payloads become a
    synthetic result whose headline is the response's ``headline`` block.
    """
    from repro.experiments.base import ExperimentResult

    if "experiment_id" in payload:
        return ExperimentResult.from_payload(payload)
    if "stream" in payload:
        accounting = dict(payload.get("accounting", {}))
        return ExperimentResult(
            experiment_id="service-stream",
            title="carbon-query service response (service-stream)",
            headline={k: float(v) for k, v in accounting.items()},
        )
    kind = "service-query"
    if "spec" in payload:
        kind = "service-sweep"
    else:
        query = payload.get("query")
        if isinstance(query, Mapping):
            if "workload" in query:
                kind = "service-genai"
            elif "busy_device_hours" in query:
                kind = "service-footprint"
            else:
                kind = "service-schedule"
    return ExperimentResult(
        experiment_id=kind,
        title=f"carbon-query service response ({kind})",
        headline={k: float(v) for k, v in dict(payload.get("headline", {})).items()},
    )
