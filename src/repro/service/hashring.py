"""Consistent-hash ring with virtual nodes (the fabric's routing core).

The multi-node fabric (:mod:`repro.service.router`) shards canonical
query keys across service replicas so each replica's response LRU and
substrate memo stay hot for its shard.  The ring provides the two
properties that make that sharding operable:

* **Balance** — every node is placed at :data:`DEFAULT_VNODES` virtual
  points (``sha256(f"{node}#{i}")``), so the arc of key space a node
  owns concentrates around ``1/N`` (the ``ring-balance`` invariant in
  :mod:`repro.testing.invariants` states the bound).
* **Minimal disruption** — adding a node remaps only the keys the new
  node now owns (~``1/(N+1)`` of the space) and removing a node remaps
  only *its* keys; every other key keeps its owner and therefore its
  warm caches (the ``ring-minimal-disruption-*`` invariants).

Placement and lookup are deterministic functions of the node names and
key bytes alone — two routers configured with the same replica names
agree on every assignment without coordination.

:meth:`HashRing.preference` is the failover order: the distinct nodes in
clockwise order from the key's position.  The router walks it when the
owner is ejected, so a key's fallback replica is also stable.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Iterator

from repro.errors import ServiceError

__all__ = ["DEFAULT_VNODES", "RING_SIZE", "HashRing", "ring_position"]

#: Virtual points per node.  128 keeps the largest arc share under
#: ~2x the mean with overwhelming probability for small fleets (the
#: property suite asserts the bound for rings up to 16 nodes).
DEFAULT_VNODES = 128

#: The ring is the interval ``[0, 2**64)``; positions wrap modulo this.
RING_SIZE = 1 << 64


def ring_position(label: str) -> int:
    """A label's deterministic position on the ring (first 8 sha256 bytes)."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Maps string keys to named nodes; clockwise-successor convention.

    A key belongs to the node owning the first virtual point at or after
    the key's position (wrapping past ``RING_SIZE`` to the first point).
    Points that collide are ordered by node name, so lookup is total and
    deterministic.
    """

    def __init__(self, nodes: Iterable[str] = (), vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ServiceError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._nodes: set[str] = set()
        self._points: list[tuple[int, str]] = []
        for node in nodes:
            self.add(node)

    # -- membership --------------------------------------------------------

    @property
    def nodes(self) -> tuple[str, ...]:
        """Current node names, sorted."""
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        """Place ``node`` at its ``vnodes`` virtual points."""
        if not node:
            raise ServiceError("node name must be non-empty")
        if node in self._nodes:
            raise ServiceError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        for index in range(self.vnodes):
            bisect.insort(self._points, (ring_position(f"{node}#{index}"), node))

    def remove(self, node: str) -> None:
        """Remove ``node`` and all its virtual points."""
        if node not in self._nodes:
            raise ServiceError(f"node {node!r} is not on the ring")
        self._nodes.discard(node)
        self._points = [point for point in self._points if point[1] != node]

    # -- lookup ------------------------------------------------------------

    def owner(self, key: str) -> str:
        """The node owning ``key``; raises on an empty ring."""
        for node in self.iter_preference(key):
            return node
        raise ServiceError("hash ring is empty")

    def iter_preference(self, key: str) -> Iterator[str]:
        """Distinct nodes in clockwise order from ``key``'s position.

        The first yielded node is the owner; the rest are the failover
        order.  Yields every node exactly once.
        """
        if not self._points:
            return
        position = ring_position(key)
        start = bisect.bisect_left(self._points, (position, ""))
        seen: set[str] = set()
        count = len(self._points)
        for step in range(count):
            node = self._points[(start + step) % count][1]
            if node not in seen:
                seen.add(node)
                yield node

    def preference(self, key: str, count: int | None = None) -> tuple[str, ...]:
        """The first ``count`` nodes of :meth:`iter_preference` (all if None)."""
        order: list[str] = []
        for node in self.iter_preference(key):
            order.append(node)
            if count is not None and len(order) >= count:
                break
        return tuple(order)

    # -- balance -----------------------------------------------------------

    def shares(self) -> dict[str, float]:
        """Fraction of the key space each node owns (shares sum to 1.0).

        The arc ``(previous point, point]`` belongs to ``point``'s node
        under the clockwise-successor convention; the wraparound arc from
        the last point back to the first closes the circle.
        """
        if not self._points:
            return {}
        arcs = {node: 0 for node in self._nodes}
        previous = self._points[-1][0] - RING_SIZE
        for position, node in self._points:
            arcs[node] += position - previous
            previous = position
        return {node: arc / RING_SIZE for node, arc in sorted(arcs.items())}
