"""Micro-batching: coalesce identical in-flight queries.

Interactive carbon-query traffic is highly repetitive — dashboards poll
the same footprint, fleets of clients ask for the same experiment — so
the service holds each *first* occurrence of a query for a small window
(``batch_window_s``, a few milliseconds) before executing it.  Every
identical query arriving during the window, *or while the execution is
still in flight*, attaches to the same future and receives the same
response bytes: N duplicate requests cost one substrate build and one
execution (single-flight semantics).

Distinct queries are never delayed by each other's windows; the window
trades a few milliseconds of latency on cold queries for a large
reduction in duplicated work under concurrency (see docs/SERVICE.md).
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

from repro.service.queries import Query

#: An async executor of one query, returning rendered response bytes.
ExecuteFn = Callable[[str, Query], Awaitable[bytes]]


class QueryBatcher:
    """Coalesces identical queries onto one shared execution future."""

    def __init__(self, window_s: float, execute: ExecuteFn) -> None:
        self.window_s = window_s
        self._execute = execute
        self._pending: dict[str, asyncio.Future] = {}
        self._tasks: set[asyncio.Task] = set()
        self.executions = 0
        self.coalesced = 0
        self.failures = 0

    @property
    def in_flight(self) -> int:
        """Number of distinct queries currently pending or executing."""
        return len(self._pending)

    def submit(self, key: str, query: Query) -> asyncio.Future:
        """The shared future answering ``key`` (created on first arrival).

        Callers await the returned future (typically under
        ``asyncio.wait_for(asyncio.shield(fut), ...)`` so one caller's
        timeout does not cancel the execution for the rest).
        """
        fut = self._pending.get(key)
        if fut is not None:
            self.coalesced += 1
            return fut
        loop = asyncio.get_running_loop()
        fut = loop.create_future()
        # A future abandoned by every waiter (all timed out) must still
        # retrieve its exception, or the loop logs it as never-consumed.
        fut.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        self._pending[key] = fut
        task = loop.create_task(self._lead(key, query, fut))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return fut

    async def _lead(self, key: str, query: Query, fut: asyncio.Future) -> None:
        """First-arrival body: wait out the window, execute, resolve."""
        try:
            if self.window_s > 0:
                await asyncio.sleep(self.window_s)
            self.executions += 1
            result = await self._execute(key, query)
        except asyncio.CancelledError:
            if not fut.done():
                fut.cancel()
            raise
        except BaseException as exc:
            self.failures += 1
            if not fut.done():
                fut.set_exception(exc)
        else:
            if not fut.done():
                fut.set_result(result)
        finally:
            self._pending.pop(key, None)

    async def drain(self, timeout: float | None = None) -> None:
        """Wait for every in-flight execution to settle (shutdown path)."""
        tasks = tuple(self._tasks)
        if not tasks:
            return
        _done, pending = await asyncio.wait(tasks, timeout=timeout)
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    def stats(self) -> dict[str, object]:
        """Counter snapshot for ``/metrics``."""
        return {
            "window_s": self.window_s,
            "executions": self.executions,
            "coalesced": self.coalesced,
            "failures": self.failures,
            "in_flight": self.in_flight,
        }
