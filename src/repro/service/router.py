"""Front-door router of the multi-node carbon-query fabric.

``sustainable-ai fabric`` (or ``python -m repro.service.router``) spawns
N carbon-query service replicas and routes every request by consistent-
hashing its canonical query key (:meth:`repro.service.queries.Query.cache_key`)
over a virtual-node hash ring (:mod:`repro.service.hashring`).  Two
requests that would coalesce on a single node land on the same replica,
so each replica's response LRU and substrate memo stay hot for its
shard — the fabric's aggregate cache capacity grows linearly with the
replica count.

Fabric semantics on top of the single-node service contract:

* **Byte fidelity** — the router forwards the raw request target and
  body verbatim and returns the replica's body untouched, so every
  fabric response is byte-identical to the single-node service (and
  therefore to the direct library call).  Unparseable requests are
  routed by a stable hash of the raw request line, so even error bodies
  come from a real replica.
* **Failover** — a transport failure ejects the replica immediately and
  the request is retried on the next distinct ring node (the key's
  preference order), so a SIGKILL'd replica costs zero client-visible
  5xx.  Retryable upstream statuses (500 crash, 503 drain) also fail
  over; queries are idempotent so a duplicate execution is safe.
* **Health & rejoin** — a background loop probes ``/healthz`` every
  ``health_interval_s``; ``eject_after`` consecutive failures eject a
  replica and one success rejoins it.  Managed (spawned) replicas whose
  process died are restarted and rejoin with cold caches.
* **Sweep pinning** — ``POST /sweep`` routes by the sweep's canonical
  key; the answering replica is pinned as the job's owner and later
  ``GET /sweep/{id}`` polls go straight to it (unknown ids are resolved
  by asking every replica).
* **Stream pinning** — ``GET /stream`` routes by the stream *spec*'s
  canonical key with the transport params (``cursor``, ``wait_s``,
  ``max_ticks``) stripped, so every poll of one stream lands on the
  replica holding its live frontier accounting state.  After a
  failover the new replica's feed clock restarts; a cursor ahead of it
  gets the service's structured 409 until the clock catches up.
* **Aggregated `/metrics`** — the router sums the replicas'
  ``ServiceCounters``, response-cache, batching, substrate-cache, sweep
  and ledger counters into one fleet document plus a ``router`` block
  (ring shares, per-replica health, failovers).
* **Shared tiers** — ``--cache-dir`` points every replica at one
  content-addressed disk substrate cache and ``--ledger-dir`` at one
  claim-ledger directory, so all replicas record into a single
  ``service`` run.

On SIGTERM/SIGINT the router stops accepting, drains in-flight proxied
requests, terminates managed replicas, and exits 0.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence
from urllib.parse import urlsplit

from repro.core import ledger
from repro.core.canonical import canonical_bytes
from repro.errors import QueryError, ServiceError
from repro.service import queries
from repro.service.hashring import DEFAULT_VNODES, HashRing
from repro.service.http import HttpServer, ProtocolError, Request, Response
from repro.telemetry.counters import ServiceCounters

__all__ = [
    "DEFAULT_ROUTER_PORT",
    "RouterConfig",
    "Replica",
    "CarbonQueryRouter",
    "RouterHandle",
    "merge_replica_metrics",
    "start_router",
    "run_router",
    "add_fabric_flags",
    "router_config_from_args",
    "main",
]

#: Router defaults, shared by the CLI flags and :class:`RouterConfig`.
DEFAULT_ROUTER_PORT = 8150
DEFAULT_REPLICAS = 2
DEFAULT_HEALTH_INTERVAL_S = 0.25
DEFAULT_EJECT_AFTER = 2
DEFAULT_PROXY_TIMEOUT_S = 120.0
DEFAULT_DRAIN_TIMEOUT_S = 10.0

#: Idle keep-alive connections kept per replica for proxying.
MAX_POOLED_CONNECTIONS = 32

#: Transport-level failures that mean "this replica did not answer".
_TRANSPORT_ERRORS = (OSError, asyncio.IncompleteReadError, ProtocolError)


@dataclass(frozen=True)
class RouterConfig:
    """All knobs of one fabric router."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_ROUTER_PORT
    #: Managed mode: spawn this many ``python -m repro.service`` replicas.
    replicas: int = DEFAULT_REPLICAS
    #: Attached mode: route across these existing base URLs instead of
    #: spawning (tests use it to front in-process services).
    backends: tuple[str, ...] = ()
    vnodes: int = DEFAULT_VNODES
    health_interval_s: float = DEFAULT_HEALTH_INTERVAL_S
    eject_after: int = DEFAULT_EJECT_AFTER
    proxy_timeout_s: float | None = DEFAULT_PROXY_TIMEOUT_S
    drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S
    #: Restart managed replicas whose process died (chaos recovery).
    restart_replicas: bool = True
    #: Extra ``python -m repro.service`` argv for every managed replica
    #: (e.g. ``("--workers", "0")``).
    replica_args: tuple[str, ...] = ()
    #: Shared content-addressed substrate disk cache for all replicas.
    cache_dir: str | None = None
    #: Shared claim-ledger directory; all replicas record into one
    #: ``service`` run and the router reports fleet-level ledger stats.
    ledger_dir: str | None = None
    metrics_json: str | None = None

    def __post_init__(self) -> None:
        if not self.backends and self.replicas < 1:
            raise ServiceError(f"replicas must be >= 1, got {self.replicas}")
        if self.vnodes < 1:
            raise ServiceError(f"vnodes must be >= 1, got {self.vnodes}")
        if self.health_interval_s <= 0:
            raise ServiceError(
                f"health interval must be positive, got {self.health_interval_s}"
            )
        if self.eject_after < 1:
            raise ServiceError(f"eject-after must be >= 1, got {self.eject_after}")
        if self.proxy_timeout_s is not None and self.proxy_timeout_s <= 0:
            raise ServiceError(
                f"proxy timeout must be positive or None, got {self.proxy_timeout_s}"
            )
        if self.drain_timeout_s < 0:
            raise ServiceError(f"drain timeout must be >= 0, got {self.drain_timeout_s}")


@dataclass
class Replica:
    """One backend service and its health/traffic state."""

    name: str
    host: str = ""
    port: int = 0
    proc: subprocess.Popen | None = None
    healthy: bool = False
    consecutive_failures: int = 0
    ejections: int = 0
    restarts: int = 0
    proxied: int = 0
    restarting: bool = False

    @property
    def pid(self) -> int | None:
        return self.proc.pid if self.proc is not None else None

    def status_payload(self) -> dict[str, object]:
        return {
            "name": self.name,
            "host": self.host,
            "port": self.port,
            "pid": self.pid,
            "healthy": self.healthy,
            "consecutive_failures": self.consecutive_failures,
            "ejections": self.ejections,
            "restarts": self.restarts,
            "proxied": self.proxied,
        }


def _error_body(kind: str, message: str) -> bytes:
    return queries.render_payload({"error": {"kind": kind, "message": message}})


# ---------------------------------------------------------------------------
# Metrics rollup (pure; unit-tested directly)
# ---------------------------------------------------------------------------


def _sum_counter_maps(rows: Sequence[dict]) -> dict[str, int]:
    out: dict[str, int] = {}
    for row in rows:
        for key, value in row.items():
            out[key] = out.get(key, 0) + int(value)
    return dict(sorted(out.items()))


def _merge_latency(rows: Sequence[dict]) -> dict[str, object]:
    """Count-weighted mean and max; percentiles do not compose across
    replicas, so the rollup drops them (per-replica documents keep them)."""
    count = sum(int(row.get("count", 0)) for row in rows)
    total = sum(float(row.get("mean_s", 0.0)) * int(row.get("count", 0)) for row in rows)
    return {
        "count": count,
        "mean_s": (total / count) if count else 0.0,
        "max_s": max((float(row.get("max_s", 0.0)) for row in rows), default=0.0),
    }


def _merge_requests(docs: Sequence[dict]) -> dict[str, object]:
    cache_states = _sum_counter_maps([doc.get("cache_states", {}) for doc in docs])
    lookups = cache_states.get("hit", 0) + cache_states.get("miss", 0)
    endpoints: set[str] = set()
    for doc in docs:
        endpoints.update(doc.get("latency_s", {}))
    return {
        "total": sum(int(doc.get("total", 0)) for doc in docs),
        "by_endpoint": _sum_counter_maps([doc.get("by_endpoint", {}) for doc in docs]),
        "by_status": _sum_counter_maps([doc.get("by_status", {}) for doc in docs]),
        "rejected_429": sum(int(doc.get("rejected_429", 0)) for doc in docs),
        "timeouts_504": sum(int(doc.get("timeouts_504", 0)) for doc in docs),
        "server_errors_5xx": sum(int(doc.get("server_errors_5xx", 0)) for doc in docs),
        "cache_states": cache_states,
        "answered_from_cache_rate": (
            cache_states.get("hit", 0) / lookups if lookups else None
        ),
        "latency_s": {
            endpoint: _merge_latency(
                [doc.get("latency_s", {}).get(endpoint, {}) for doc in docs]
            )
            for endpoint in sorted(endpoints)
        },
    }


def _merge_response_cache(docs: Sequence[dict]) -> dict[str, object]:
    hits = sum(int(doc.get("hits", 0)) for doc in docs)
    misses = sum(int(doc.get("misses", 0)) for doc in docs)
    lookups = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "evictions": sum(int(doc.get("evictions", 0)) for doc in docs),
        "size": sum(int(doc.get("size", 0)) for doc in docs),
        "maxsize": sum(int(doc.get("maxsize", 0)) for doc in docs),
        "hit_rate": (hits / lookups) if lookups else None,
    }


def _merge_substrate_cache(docs: Sequence[dict]) -> dict[str, object]:
    from repro.core import memo
    from repro.experiments import profiling

    merged: dict[str, dict[str, int]] = {}
    for doc in docs:
        memo.merge_stats(merged, doc.get("per_substrate", {}))
    return {
        "per_substrate": {name: dict(row) for name, row in sorted(merged.items())},
        "totals": memo.totals(merged),
        "hit_rate": profiling.cache_hit_rate(merged),
    }


def _merge_streams(docs: Sequence[dict]) -> dict[str, object]:
    """Stream counters sum; capacity sums too (each replica holds its own
    live jobs); ``tick_hz`` is a config constant so the max is reported."""
    counters = _sum_counter_maps(
        [
            {k: v for k, v in doc.items() if k != "tick_hz"}
            for doc in docs
        ]
    )
    counters["tick_hz"] = max(
        (float(doc.get("tick_hz", 0.0)) for doc in docs), default=0.0
    )
    return counters


def merge_replica_metrics(docs: Sequence[dict]) -> dict[str, object]:
    """Fold N replica ``/metrics`` documents into one fleet document.

    Counters sum; rates are recomputed from the summed counters (a mean
    of rates would weight idle replicas equally with busy ones); latency
    percentiles are dropped because order statistics do not compose —
    the per-replica documents remain the source of truth for those.
    """
    docs = list(docs)
    services = [doc.get("service", {}) for doc in docs]
    return {
        "service": {
            "replicas": len(docs),
            "workers": sum(int(doc.get("workers", 0)) for doc in services),
            "uptime_s": max((float(doc.get("uptime_s", 0.0)) for doc in services), default=0.0),
            "experiments": max(
                (int(doc.get("experiments", 0)) for doc in services), default=0
            ),
            "draining": any(bool(doc.get("draining", False)) for doc in services),
        },
        "requests": _merge_requests([doc.get("requests", {}) for doc in docs]),
        "response_cache": _merge_response_cache(
            [doc.get("response_cache", {}) for doc in docs]
        ),
        "batching": {
            "executions": sum(int(d.get("batching", {}).get("executions", 0)) for d in docs),
            "coalesced": sum(int(d.get("batching", {}).get("coalesced", 0)) for d in docs),
            "failures": sum(int(d.get("batching", {}).get("failures", 0)) for d in docs),
            "in_flight": sum(int(d.get("batching", {}).get("in_flight", 0)) for d in docs),
        },
        "substrate_cache": _merge_substrate_cache(
            [doc.get("substrate_cache", {}) for doc in docs]
        ),
        "sweeps": _sum_counter_maps([doc.get("sweeps", {}) for doc in docs]),
        "streams": _merge_streams([doc.get("streams", {}) for doc in docs]),
        "ledger": {
            "errors": sum(int(doc.get("ledger", {}).get("errors", 0)) for doc in docs),
            "gc_runs": sum(
                int(doc.get("ledger", {}).get("gc_runs", 0)) for doc in docs
            ),
        },
    }


# ---------------------------------------------------------------------------
# The router
# ---------------------------------------------------------------------------


class CarbonQueryRouter:
    """One fabric front door; create, then :meth:`run` on an event loop."""

    def __init__(self, config: RouterConfig) -> None:
        self.config = config
        self.counters = ServiceCounters()
        self.managed = not config.backends
        self.replicas: dict[str, Replica] = {}
        if self.managed:
            for index in range(config.replicas):
                name = f"replica-{index}"
                self.replicas[name] = Replica(name=name)
        else:
            for index, url in enumerate(config.backends):
                split = urlsplit(url if "//" in url else f"//{url}")
                if not split.hostname or not split.port:
                    raise ServiceError(f"backend URL needs host and port, got {url!r}")
                name = f"replica-{index}"
                self.replicas[name] = Replica(
                    name=name, host=split.hostname, port=split.port, healthy=True
                )
        self.ring = HashRing(self.replicas, vnodes=config.vnodes)
        self.failovers = 0
        self.retried_5xx = 0
        self.rejoins = 0
        self.port: int | None = None
        self._pools: dict[str, deque] = {name: deque() for name in self.replicas}
        self._sweep_owners: dict[str, str] = {}
        self._draining = False
        self._started_monotonic = time.monotonic()
        self._stop_event: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._health_task: asyncio.Task | None = None

    # -- lifecycle ---------------------------------------------------------

    async def run(self, on_ready=None) -> None:
        """Serve until :meth:`request_shutdown`, then drain and clean up."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._started_monotonic = time.monotonic()
        if self.managed:
            try:
                await asyncio.gather(
                    *(self._start_replica(replica) for replica in self.replicas.values())
                )
            except BaseException:
                self._stop_replicas()
                raise
        server = HttpServer(self.handle, self.config.host, self.config.port)
        try:
            await server.start()
            self.port = server.port
            self._health_task = self._loop.create_task(self._health_loop())
            if on_ready is not None:
                on_ready(self)
            await self._stop_event.wait()
        finally:
            self._draining = True
            if self._health_task is not None:
                self._health_task.cancel()
                await asyncio.gather(self._health_task, return_exceptions=True)
            await server.drain_and_stop(self.config.drain_timeout_s)
            if self.config.metrics_json:
                # Captured before the replicas go away so the final
                # document still carries the fleet rollup.
                doc = await self._aggregate_metrics()
                Path(self.config.metrics_json).write_bytes(canonical_bytes(doc))
            for name in self.replicas:
                self._discard_pool(name)
            if self.managed:
                await self._loop.run_in_executor(None, self._stop_replicas)

    def request_shutdown(self) -> None:
        """Begin graceful shutdown; safe to call from any thread or a signal."""
        loop, event = self._loop, self._stop_event
        if loop is None or event is None:
            return
        loop.call_soon_threadsafe(event.set)

    # -- replica processes -------------------------------------------------

    def _replica_argv(self) -> list[str]:
        argv = [
            sys.executable,
            "-m",
            "repro.service",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
        ]
        if self.config.ledger_dir:
            argv += ["--ledger-dir", self.config.ledger_dir]
        argv += list(self.config.replica_args)
        return argv

    def _spawn_blocking(self) -> tuple[subprocess.Popen, int]:
        """Start one replica subprocess and parse its listening banner."""
        env = dict(os.environ)
        if self.config.cache_dir:
            env["SUSTAINABLE_AI_CACHE_DIR"] = self.config.cache_dir
        proc = subprocess.Popen(
            self._replica_argv(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        assert proc.stdout is not None
        banner = proc.stdout.readline()
        if "listening on http://" not in banner:
            proc.kill()
            proc.wait()
            raise ServiceError(f"replica did not start: {banner!r}")
        port = int(banner.split("http://")[1].split()[0].rsplit(":", 1)[1])
        return proc, port

    async def _start_replica(self, replica: Replica) -> None:
        assert self._loop is not None
        proc, port = await self._loop.run_in_executor(None, self._spawn_blocking)
        replica.proc = proc
        replica.host, replica.port = "127.0.0.1", port
        replica.healthy = True
        replica.consecutive_failures = 0

    def _stop_replicas(self) -> None:
        procs = [r.proc for r in self.replicas.values() if r.proc is not None]
        for proc in procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in procs:
            try:
                proc.wait(timeout=self.config.drain_timeout_s + 10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
            if proc.stdout is not None:
                proc.stdout.close()

    # -- health ------------------------------------------------------------

    def _mark_unhealthy(self, replica: Replica) -> None:
        if replica.healthy:
            replica.healthy = False
            replica.ejections += 1
        replica.consecutive_failures = max(
            replica.consecutive_failures, self.config.eject_after
        )
        self._discard_pool(replica.name)

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.health_interval_s)
            for replica in list(self.replicas.values()):
                try:
                    await self._check_replica(replica)
                except asyncio.CancelledError:
                    raise
                except Exception:
                    # A failed probe/restart never kills the loop; the
                    # replica stays ejected and is retried next tick.
                    pass

    async def _check_replica(self, replica: Replica) -> None:
        if replica.restarting:
            return
        if (
            self.managed
            and replica.proc is not None
            and replica.proc.poll() is not None
        ):
            self._mark_unhealthy(replica)
            if self.config.restart_replicas and not self._draining:
                await self._restart_replica(replica)
            return
        probe_timeout = max(1.0, self.config.health_interval_s * 4)
        try:
            status, _headers, _body = await asyncio.wait_for(
                self._request(replica, "GET", "/healthz"), probe_timeout
            )
            ok = status == 200
        except asyncio.TimeoutError:
            ok = False
        except _TRANSPORT_ERRORS:
            ok = False
        if ok:
            replica.consecutive_failures = 0
            if not replica.healthy:
                replica.healthy = True
                self.rejoins += 1
        else:
            replica.consecutive_failures += 1
            if replica.healthy and replica.consecutive_failures >= self.config.eject_after:
                self._mark_unhealthy(replica)

    async def _restart_replica(self, replica: Replica) -> None:
        assert self._loop is not None
        replica.restarting = True
        try:
            old = replica.proc
            if old is not None and old.stdout is not None:
                old.stdout.close()
            proc, port = await self._loop.run_in_executor(None, self._spawn_blocking)
            replica.proc = proc
            replica.host, replica.port = "127.0.0.1", port
            replica.restarts += 1
            self._discard_pool(replica.name)
            replica.consecutive_failures = 0
            replica.healthy = True
            self.rejoins += 1
        finally:
            replica.restarting = False

    # -- upstream HTTP client ----------------------------------------------

    def _discard_pool(self, name: str) -> None:
        pool = self._pools[name]
        while pool:
            _reader, writer = pool.popleft()
            writer.close()

    async def _request(
        self,
        replica: Replica,
        method: str,
        target: str,
        body: bytes = b"",
        content_type: str | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One upstream exchange, reusing a pooled keep-alive connection.

        A pooled connection may have been closed by the replica between
        requests; that single case is retried on a fresh connection
        before the failure is surfaced to failover.
        """
        pool = self._pools[replica.name]
        while True:
            pooled = bool(pool)
            if pooled:
                reader, writer = pool.popleft()
            else:
                reader, writer = await asyncio.open_connection(replica.host, replica.port)
            try:
                head = (
                    f"{method} {target} HTTP/1.1\r\n"
                    f"Host: {replica.host}:{replica.port}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                )
                if content_type:
                    head += f"Content-Type: {content_type}\r\n"
                head += "\r\n"
                writer.write(head.encode("ascii") + body)
                await writer.drain()
                status, headers, payload = await self._read_response(reader)
            except _TRANSPORT_ERRORS:
                writer.close()
                if pooled:
                    continue
                raise
            if headers.get("connection", "").lower() == "close":
                writer.close()
            elif len(pool) < MAX_POOLED_CONNECTIONS:
                pool.append((reader, writer))
            else:
                writer.close()
            return status, headers, payload

    @staticmethod
    async def _read_response(
        reader: asyncio.StreamReader,
    ) -> tuple[int, dict[str, str], bytes]:
        line = await reader.readuntil(b"\r\n")
        parts = line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ProtocolError(f"malformed status line from replica: {line!r}")
        try:
            status = int(parts[1])
        except ValueError:
            raise ProtocolError(f"non-integer status from replica: {line!r}") from None
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readuntil(b"\r\n")
            if raw == b"\r\n":
                break
            name, sep, value = raw.decode("latin-1").partition(":")
            if not sep:
                raise ProtocolError(f"malformed header from replica: {raw!r}")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        body = await reader.readexactly(length) if length else b""
        return status, headers, body

    # -- routing -----------------------------------------------------------

    def routing_key(self, request: Request) -> tuple[str, str]:
        """``(endpoint label, ring key)`` for one request.

        Parseable query requests key on the canonical cache key — the
        same string the replica's LRU and batcher key on — so a shard's
        traffic always lands where its cache is warm.  Everything else
        (including malformed queries) keys on the raw request line,
        which still gives a stable replica per distinct request.
        """
        path = request.path.rstrip("/") or "/"
        fallback = f"{request.method} {request.raw_target or request.path}"
        try:
            if path.startswith("/experiments/") and request.method == "GET":
                query = queries.parse_query(
                    "experiment", {"experiment_id": path[len("/experiments/"):]}
                )
                return "/experiments/{id}", query.cache_key()
            params: dict[str, object] = dict(request.params)
            params.update(request.json_body())
            if path == "/footprint" and request.method in ("GET", "POST"):
                kind = "genai" if "workload" in params else "footprint"
                return "/footprint", queries.parse_query(kind, params).cache_key()
            if path == "/schedule/carbon-aware" and request.method in ("GET", "POST"):
                return (
                    "/schedule/carbon-aware",
                    queries.parse_query("schedule", params).cache_key(),
                )
            if path == "/sweep" and request.method == "POST":
                return "/sweep", queries.parse_query("sweep", params).cache_key()
            if path == "/stream" and request.method == "GET":
                # Transport params (cursor/wait_s/max_ticks) vary per poll;
                # the ring key is the *spec* alone, so every cursor of one
                # stream pins to the replica holding its live frontier
                # state (a different replica would answer via replay —
                # byte-identical, but cold).
                spec_params = {
                    name: value
                    for name, value in params.items()
                    if name not in queries.STREAM_TRANSPORT_PARAMS
                }
                return "/stream", queries.parse_query("stream", spec_params).cache_key()
        except (QueryError, ProtocolError):
            pass
        if path.startswith("/experiments/"):
            return "/experiments/{id}", fallback
        for endpoint in (
            "/footprint",
            "/schedule/carbon-aware",
            "/sweep",
            "/ledger",
            "/stream",
        ):
            if path == endpoint or path.startswith(endpoint + "/"):
                return endpoint, fallback
        if path in ("/experiments", "/healthz"):
            return path, fallback
        return "(proxy)", fallback

    async def handle(self, request: Request) -> Response:
        start = time.perf_counter()
        endpoint, response = await self._route(request)
        self.counters.record(endpoint, response.status, time.perf_counter() - start)
        return response

    async def _route(self, request: Request) -> tuple[str, Response]:
        path, method = request.path.rstrip("/") or "/", request.method
        if path == "/healthz" and method == "GET":
            healthy = sum(1 for r in self.replicas.values() if r.healthy)
            status = "draining" if self._draining else (
                "ok" if healthy else "degraded"
            )
            return (
                "/healthz",
                Response(
                    200,
                    queries.render_payload(
                        {
                            "status": status,
                            "role": "router",
                            "replicas": {"healthy": healthy, "total": len(self.replicas)},
                        }
                    ),
                ),
            )
        if path == "/metrics" and method == "GET":
            doc = await self._aggregate_metrics()
            return "/metrics", Response(200, queries.render_payload(doc))
        if path == "/sweep" and method == "GET":
            return "/sweep", await self._sweep_list()
        if path.startswith("/sweep/") and method == "GET":
            endpoint = (
                "/sweep/{id}/result" if path.endswith("/result") else "/sweep/{id}"
            )
            return endpoint, await self._sweep_poll(request)
        endpoint, key = self.routing_key(request)
        response, replica_name = await self._forward(key, request)
        if (
            endpoint == "/sweep"
            and method == "POST"
            and replica_name is not None
            and response.status in (200, 202)
        ):
            self._pin_sweep(response.body, replica_name)
        return endpoint, response

    def _pin_sweep(self, body: bytes, replica_name: str) -> None:
        try:
            sweep_id = json.loads(body).get("sweep_id")
        except ValueError:
            return
        if isinstance(sweep_id, str) and sweep_id:
            self._sweep_owners[sweep_id] = replica_name

    def _candidates(self, key: str) -> list[Replica]:
        """Failover order: healthy replicas first, then the ejected ones
        as a last resort (health probes lag reality by up to one tick)."""
        order = [self.replicas[name] for name in self.ring.iter_preference(key)]
        healthy = [replica for replica in order if replica.healthy]
        return healthy + [replica for replica in order if not replica.healthy]

    async def _forward(
        self, key: str, request: Request
    ) -> tuple[Response, str | None]:
        if self._draining:
            return (
                Response(
                    503,
                    _error_body("draining", "router is shutting down; retry elsewhere"),
                ),
                None,
            )
        target = request.raw_target or request.path
        content_type = request.headers.get("content-type")
        last_response: Response | None = None
        attempted = 0
        candidates = self._candidates(key)
        for replica in candidates:
            if attempted:
                self.failovers += 1
            attempted += 1
            try:
                status, _headers, body = await self._exchange(
                    replica, request.method, target, request.body, content_type
                )
            except asyncio.TimeoutError:
                return (
                    Response(
                        504,
                        _error_body(
                            "upstream-timeout",
                            f"replica {replica.name} exceeded the proxy timeout "
                            f"({self.config.proxy_timeout_s}s)",
                        ),
                    ),
                    replica.name,
                )
            except _TRANSPORT_ERRORS as exc:
                self._mark_unhealthy(replica)
                last_response = Response(
                    502,
                    _error_body(
                        "bad-gateway",
                        f"replica {replica.name} did not answer: {exc or type(exc).__name__}",
                    ),
                )
                continue
            replica.proxied += 1
            if status in (500, 503) and attempted < len(candidates):
                # Crash/drain responses are replica-local and queries are
                # idempotent: retry on the next ring node.  A fault that
                # reproduces everywhere still surfaces as the last body.
                self.retried_5xx += 1
                last_response = Response(status, body)
                continue
            return Response(status, body), replica.name
        if last_response is not None:
            return last_response, None
        return (
            Response(502, _error_body("no-replicas", "no replica is available")),
            None,
        )

    async def _exchange(
        self,
        replica: Replica,
        method: str,
        target: str,
        body: bytes,
        content_type: str | None,
    ) -> tuple[int, dict[str, str], bytes]:
        exchange = self._request(replica, method, target, body, content_type)
        if self.config.proxy_timeout_s is None:
            return await exchange
        return await asyncio.wait_for(exchange, self.config.proxy_timeout_s)

    # -- sweep pass-through ------------------------------------------------

    async def _sweep_list(self) -> Response:
        """``GET /sweep``: the union of every replica's job list."""
        jobs: dict[str, dict] = {}
        errors = 0
        for replica in self._all_replicas_healthy_first():
            try:
                status, _headers, body = await self._exchange(
                    replica, "GET", "/sweep", b"", None
                )
            except (asyncio.TimeoutError, *_TRANSPORT_ERRORS):
                errors += 1
                continue
            if status != 200:
                errors += 1
                continue
            for job in json.loads(body).get("sweeps", []):
                sweep_id = job.get("sweep_id")
                if isinstance(sweep_id, str):
                    jobs.setdefault(sweep_id, job)
        payload = {"sweeps": [jobs[sweep_id] for sweep_id in sorted(jobs)]}
        if errors:
            payload["unreachable_replicas"] = errors
        return Response(200, queries.render_payload(payload))

    def _all_replicas_healthy_first(self) -> list[Replica]:
        replicas = sorted(self.replicas.values(), key=lambda r: r.name)
        return [r for r in replicas if r.healthy] + [r for r in replicas if not r.healthy]

    async def _sweep_poll(self, request: Request) -> Response:
        """``GET /sweep/{id}[/result]``: pinned to the job's owner."""
        path = request.path.rstrip("/") or "/"
        tail = path[len("/sweep/"):]
        sweep_id = tail[: -len("/result")] if tail.endswith("/result") else tail
        target = request.raw_target or request.path
        owner = self._sweep_owners.get(sweep_id)
        order: list[Replica]
        if owner is not None and owner in self.replicas:
            # The owner answers even while marked unhealthy: a managed
            # restart means the job died with the old process, and the
            # replica's own 404 is the canonical body for that.
            order = [self.replicas[owner]]
        else:
            order = self._all_replicas_healthy_first()
        last: Response | None = None
        for replica in order:
            try:
                status, _headers, body = await self._exchange(
                    replica, "GET", target, b"", None
                )
            except asyncio.TimeoutError:
                return Response(
                    504,
                    _error_body(
                        "upstream-timeout",
                        f"sweep owner {replica.name} exceeded the proxy timeout",
                    ),
                )
            except _TRANSPORT_ERRORS as exc:
                self._mark_unhealthy(replica)
                last = Response(
                    502,
                    _error_body(
                        "bad-gateway",
                        f"replica {replica.name} did not answer: {exc or type(exc).__name__}",
                    ),
                )
                continue
            replica.proxied += 1
            if status == 404 and owner is None and replica is not order[-1]:
                # Unknown pin: another replica may own the job.
                last = Response(status, body)
                continue
            return Response(status, body)
        assert last is not None
        return last

    # -- metrics -----------------------------------------------------------

    async def _aggregate_metrics(self) -> dict[str, object]:
        docs = []
        for replica in self.replicas.values():
            try:
                status, _headers, body = await self._exchange(
                    replica, "GET", "/metrics", b"", None
                )
            except (asyncio.TimeoutError, *_TRANSPORT_ERRORS):
                continue
            if status == 200:
                try:
                    docs.append(json.loads(body))
                except ValueError:
                    continue
        doc = merge_replica_metrics(docs)
        if self.config.ledger_dir:
            # The replicas share one on-disk ledger; each one's in-memory
            # view only covers its own appends, so the router reads the
            # directory itself for the fleet-level truth.
            try:
                shared = ledger.Ledger.open(self.config.ledger_dir)
                errors = doc.get("ledger", {}).get("errors", 0)
                doc["ledger"] = {**shared.stats(), "errors": errors, "shared": True}
            except Exception:
                pass
        doc["router"] = self.router_payload()
        return doc

    def router_payload(self) -> dict[str, object]:
        return {
            "draining": self._draining,
            "uptime_s": time.monotonic() - self._started_monotonic,
            "managed": self.managed,
            "failovers": self.failovers,
            "retried_5xx": self.retried_5xx,
            "rejoins": self.rejoins,
            "sweep_pins": len(self._sweep_owners),
            "ring": {
                "vnodes": self.config.vnodes,
                "nodes": list(self.ring.nodes),
                "shares": self.ring.shares(),
            },
            "replicas": [
                replica.status_payload()
                for replica in sorted(self.replicas.values(), key=lambda r: r.name)
            ],
            "requests": self.counters.snapshot(),
        }


# ---------------------------------------------------------------------------
# Embedding and CLI entry points
# ---------------------------------------------------------------------------


class RouterHandle:
    """A router running on a background thread (tests, benchmarks)."""

    def __init__(self, router: CarbonQueryRouter, thread: threading.Thread) -> None:
        self.router = router
        self.thread = thread

    @property
    def port(self) -> int:
        assert self.router.port is not None
        return self.router.port

    @property
    def base_url(self) -> str:
        return f"http://{self.router.config.host}:{self.port}"

    def stop(self, timeout: float = 60.0) -> None:
        self.router.request_shutdown()
        self.thread.join(timeout)
        if self.thread.is_alive():
            raise ServiceError("router thread did not stop within the timeout")

    def __enter__(self) -> "RouterHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def start_router(config: RouterConfig, ready_timeout: float = 60.0) -> RouterHandle:
    """Start a router on a daemon thread and wait until it is listening."""
    router = CarbonQueryRouter(config)
    ready = threading.Event()
    failure: list[BaseException] = []

    def _run() -> None:
        try:
            asyncio.run(router.run(on_ready=lambda _r: ready.set()))
        except BaseException as exc:  # surface bind/spawn errors to the caller
            failure.append(exc)
            ready.set()

    thread = threading.Thread(target=_run, name="carbon-query-router", daemon=True)
    thread.start()
    if not ready.wait(ready_timeout):
        router.request_shutdown()
        raise ServiceError("router did not start listening within the timeout")
    if failure:
        raise ServiceError(f"router failed to start: {failure[0]}") from failure[0]
    return RouterHandle(router, thread)


def run_router(config: RouterConfig) -> int:
    """Blocking CLI body: run until SIGTERM/SIGINT, drain, exit 0."""

    def _announce(router: CarbonQueryRouter) -> None:
        backends = ", ".join(
            f"{replica.name}={replica.host}:{replica.port}"
            for replica in sorted(router.replicas.values(), key=lambda r: r.name)
        )
        print(
            f"listening on http://{config.host}:{router.port} "
            f"(replicas={len(router.replicas)}, vnodes={config.vnodes}) "
            f"[{backends}]",
            flush=True,
        )

    async def _main() -> None:
        router = CarbonQueryRouter(config)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, router.request_shutdown)
        await router.run(on_ready=_announce)
        print("drained; bye", flush=True)

    asyncio.run(_main())
    return 0


def add_fabric_flags(parser: argparse.ArgumentParser) -> None:
    """Install the ``fabric`` flags on an argparse (sub)parser."""
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: %(default)s)")
    parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_ROUTER_PORT,
        help="router TCP port; 0 picks an ephemeral port (default: %(default)s)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        metavar="N",
        default=DEFAULT_REPLICAS,
        help="service replicas to spawn and route across (default: %(default)s)",
    )
    parser.add_argument(
        "--backend",
        action="append",
        metavar="URL",
        default=None,
        help="route across this existing service URL instead of spawning "
        "(repeatable; overrides --replicas)",
    )
    parser.add_argument(
        "--vnodes",
        type=int,
        metavar="K",
        default=DEFAULT_VNODES,
        help="virtual nodes per replica on the hash ring (default: %(default)s)",
    )
    parser.add_argument(
        "--health-interval",
        type=float,
        metavar="SECONDS",
        default=DEFAULT_HEALTH_INTERVAL_S,
        help="/healthz probe period per replica (default: %(default)s)",
    )
    parser.add_argument(
        "--eject-after",
        type=int,
        metavar="K",
        default=DEFAULT_EJECT_AFTER,
        help="consecutive failed probes before ejection (default: %(default)s)",
    )
    parser.add_argument(
        "--proxy-timeout",
        type=float,
        metavar="SECONDS",
        default=DEFAULT_PROXY_TIMEOUT_S,
        help="per-upstream-exchange timeout -> 504 (default: %(default)s; <= 0 disables)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        metavar="SECONDS",
        default=DEFAULT_DRAIN_TIMEOUT_S,
        help="grace period for in-flight requests on shutdown (default: %(default)s)",
    )
    parser.add_argument(
        "--no-restart",
        action="store_true",
        help="do not restart managed replicas whose process died",
    )
    parser.add_argument(
        "--workers",
        type=int,
        metavar="K",
        default=None,
        help="worker processes per replica (default: the service default)",
    )
    parser.add_argument(
        "--lru-size",
        type=int,
        metavar="N",
        default=None,
        help="response LRU size per replica (default: the service default)",
    )
    parser.add_argument(
        "--replica-arg",
        action="append",
        metavar="ARG",
        default=None,
        help="extra argv token passed to every spawned replica (repeatable)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="shared substrate disk cache for all replicas "
        "(exported as SUSTAINABLE_AI_CACHE_DIR)",
    )
    parser.add_argument(
        "--ledger-dir",
        metavar="DIR",
        default=None,
        help="shared claim-ledger directory; replicas record into one 'service' run",
    )
    parser.add_argument(
        "--ledger-gc-interval",
        type=float,
        metavar="SECONDS",
        default=None,
        help="periodic ledger journal compaction per replica "
        "(default: the service default — disabled)",
    )
    parser.add_argument(
        "--max-streams",
        type=int,
        metavar="N",
        default=None,
        help="live /stream cap per replica (default: the service default)",
    )
    parser.add_argument(
        "--stream-tick-hz",
        type=float,
        metavar="HZ",
        default=None,
        help="stream feed release rate per replica (default: the service default)",
    )
    parser.add_argument(
        "--metrics-json",
        metavar="PATH",
        default=None,
        help="write the final aggregated /metrics document to PATH on shutdown",
    )


def router_config_from_args(args) -> RouterConfig:
    """A :class:`RouterConfig` from parsed ``add_fabric_flags`` output."""
    replica_args: list[str] = []
    if args.workers is not None:
        replica_args += ["--workers", str(args.workers)]
    if args.lru_size is not None:
        replica_args += ["--lru-size", str(args.lru_size)]
    if args.ledger_gc_interval is not None:
        replica_args += ["--ledger-gc-interval", str(args.ledger_gc_interval)]
    if args.max_streams is not None:
        replica_args += ["--max-streams", str(args.max_streams)]
    if args.stream_tick_hz is not None:
        replica_args += ["--stream-tick-hz", str(args.stream_tick_hz)]
    replica_args += list(args.replica_arg or [])
    return RouterConfig(
        host=args.host,
        port=args.port,
        replicas=args.replicas,
        backends=tuple(args.backend or ()),
        vnodes=args.vnodes,
        health_interval_s=args.health_interval,
        eject_after=args.eject_after,
        proxy_timeout_s=args.proxy_timeout if args.proxy_timeout > 0 else None,
        drain_timeout_s=args.drain_timeout,
        restart_replicas=not args.no_restart,
        replica_args=tuple(replica_args),
        cache_dir=args.cache_dir,
        ledger_dir=args.ledger_dir,
        metrics_json=args.metrics_json,
    )


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.service.router`` entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.router",
        description="Consistent-hash fabric router over carbon-query service replicas.",
    )
    add_fabric_flags(parser)
    return run_router(router_config_from_args(parser.parse_args(argv)))


if __name__ == "__main__":
    sys.exit(main())
