"""Chunked sweep jobs behind the ``/sweep`` endpoints.

A stacked scenario sweep (:mod:`repro.core.sweep`) is too long for the
interactive request path, so the service runs it as a *job*: ``POST
/sweep`` submits (idempotently — one job per canonical spec), ``GET
/sweep/{id}`` polls monotone progress, and ``GET /sweep/{id}/result``
fetches the finished bytes.

Chunks are dispatched one at a time to the service's worker pool via
:func:`repro.service.queries.execute_sweep_chunk_task`, which mirrors the
interactive worker contract: fault hooks fire first, and each chunk ships
its substrate-cache counter delta back for the ``/metrics`` merge.  A
worker crash mid-sweep (``BrokenProcessPool``) tears down the pool and
retries *only the chunk that died* with a bumped attempt number —
completed chunks are already held in the manager, so an injected
``crash:sweep@0`` fault costs one chunk retry, not a restart.

The finished document is ``SweepOutcome.to_payload()`` rendered through
:func:`repro.service.queries.render_payload` and stored in the service's
response LRU under the query's canonical cache key — so a completed
sweep's bytes are identical whether fetched from ``/sweep/{id}/result``,
replayed through the LRU, or produced by a direct library call.
"""

from __future__ import annotations

import asyncio
import hashlib
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core import memo
from repro.core.canonical import compact_dumps
from repro.errors import InjectedFault, InvariantViolation
from repro.service import queries

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (app imports us)
    from repro.service.app import CarbonQueryService

__all__ = ["SweepJob", "SweepManager", "DEFAULT_MAX_SWEEPS", "MAX_CHUNK_ATTEMPTS"]

#: Default bound on concurrently *running* sweep jobs; excess gets a 429.
DEFAULT_MAX_SWEEPS = 4

#: Per-chunk retry budget (attempt numbers feed the fault grammar's
#: ``@attempts`` selector, so ``crash:sweep@0`` passes on attempt 1).
MAX_CHUNK_ATTEMPTS = 3

#: Chunk granularity of service sweeps — small enough that progress
#: polling sees movement on every service-sized sweep.
SERVICE_CHUNK_POINTS = 512


@dataclass
class SweepJob:
    """One submitted sweep: identity, progress, and (eventually) bytes."""

    sweep_id: str
    query: queries.SweepQuery
    total_points: int
    completed_points: int = 0
    status: str = "running"  # running -> done | failed
    error: str | None = None
    body: bytes | None = None
    retries: int = 0
    task: asyncio.Task | None = field(default=None, repr=False)

    def progress_payload(self) -> dict[str, object]:
        """The poll document (also the 202 submission response)."""
        payload: dict[str, object] = {
            "sweep_id": self.sweep_id,
            "status": self.status,
            "total_points": self.total_points,
            "completed_points": self.completed_points,
            "retries": self.retries,
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload


def sweep_id_for(query: queries.SweepQuery) -> str:
    """Deterministic job id: a short digest of the canonical cache key."""
    return hashlib.sha256(query.cache_key().encode("utf-8")).hexdigest()[:12]


class SweepManager:
    """Owns the sweep jobs of one service instance."""

    def __init__(self, service: "CarbonQueryService", max_sweeps: int) -> None:
        self._service = service
        self.max_sweeps = max_sweeps
        self.jobs: dict[str, SweepJob] = {}
        self.submitted = 0
        self.completed = 0
        self.failed = 0

    # -- submission --------------------------------------------------------

    def active_count(self) -> int:
        """Jobs currently running (admission control counts these)."""
        return sum(1 for job in self.jobs.values() if job.status == "running")

    def submit(self, query: queries.SweepQuery) -> tuple[SweepJob, bool]:
        """Start (or rejoin) the job for a spec; ``(job, newly_created)``.

        Submission is idempotent on the canonical cache key: re-posting a
        spec whose job is running or finished returns the existing job
        instead of duplicating work.
        """
        sweep_id = sweep_id_for(query)
        existing = self.jobs.get(sweep_id)
        if existing is not None:
            return existing, False
        job = SweepJob(
            sweep_id=sweep_id,
            query=query,
            total_points=query.spec.total_points(),
        )
        self.jobs[sweep_id] = job
        self.submitted += 1
        job.task = asyncio.get_running_loop().create_task(self._run_job(job))
        return job, True

    def get(self, sweep_id: str) -> SweepJob | None:
        return self.jobs.get(sweep_id)

    # -- execution ---------------------------------------------------------

    async def _run_job(self, job: SweepJob) -> None:
        from repro.core.sweep import (
            SweepOutcome,
            assemble_chunks,
            chunk_bounds,
            sample_points,
        )

        spec = job.query.spec
        params_json = compact_dumps(job.query.to_params())
        pieces = []
        substrates: list[tuple[str, str | None]] = []
        seen: set[tuple[str, str | None]] = set()
        try:
            for start, stop in chunk_bounds(job.total_points, SERVICE_CHUNK_POINTS):
                outcome = await self._run_chunk(job, params_json, start, stop)
                memo.merge_stats(self._service.worker_stats, outcome["stats_delta"])
                pieces.append(tuple(np.asarray(a) for a in outcome["chunk"]))
                for qualname, digest in outcome.get("substrates", ()):
                    pair = (str(qualname), digest)
                    if pair not in seen:
                        seen.add(pair)
                        substrates.append(pair)
                job.completed_points = stop
            result = SweepOutcome(
                spec=spec, params=sample_points(spec), results=assemble_chunks(pieces)
            )
            payload = result.to_payload()
            self._self_check(job, payload)
            body = queries.render_payload(payload)
            self._service.cache.put(job.query.cache_key(), body)
            from repro.core.series import runtime_checks_enabled

            self._service._record_claims(
                job.query,
                {"payload": payload, "substrates": substrates},
                checked=runtime_checks_enabled(),
            )
            job.body = body
            job.status = "done"
            self.completed += 1
        except asyncio.CancelledError:
            job.status = "failed"
            job.error = "cancelled during shutdown"
            raise
        except Exception as exc:  # job failures are data, not crashes
            job.status = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            self.failed += 1

    async def _run_chunk(
        self, job: SweepJob, params_json: str, start: int, stop: int
    ) -> dict[str, object]:
        """One chunk with bounded retries; attempt numbers feed faults."""
        loop = asyncio.get_running_loop()
        service = self._service
        last_error: Exception | None = None
        for attempt in range(MAX_CHUNK_ATTEMPTS):
            try:
                if service.config.workers == 0:
                    return await loop.run_in_executor(
                        service._inline(),
                        queries.execute_sweep_chunk_task,
                        params_json,
                        start,
                        stop,
                        attempt,
                        False,
                    )
                pool = service._pool()
                return await loop.run_in_executor(
                    pool,
                    queries.execute_sweep_chunk_task,
                    params_json,
                    start,
                    stop,
                    attempt,
                )
            except BrokenProcessPool as exc:
                # The worker died mid-chunk: discard the broken pool so
                # the retry (and all other traffic) gets a fresh one.
                if service._executor is pool:
                    pool.shutdown(wait=False, cancel_futures=True)
                    service._executor = None
                last_error = exc
            except InjectedFault as exc:
                # Inline mode downgrades crash faults to exceptions; the
                # retry path must behave the same as the pool path.
                last_error = exc
            job.retries += 1
        assert last_error is not None
        raise last_error

    def _self_check(self, job: SweepJob, payload: dict[str, object]) -> None:
        from repro.core.series import runtime_checks_enabled

        if not runtime_checks_enabled():
            return
        from repro.testing.invariants import check_result

        violations = check_result(queries.payload_to_result(payload))
        if violations:
            detail = "; ".join(
                f"{v.invariant}({v.metric or v.detail})" for v in violations
            )
            raise InvariantViolation(
                f"sweep {job.sweep_id} violates result invariants: {detail}"
            )

    # -- metrics -----------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """The ``sweeps`` block of the ``/metrics`` document."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "active": self.active_count(),
            "max_sweeps": self.max_sweeps,
        }
