"""``python -m repro.service`` — standalone service entry point.

Equivalent to ``sustainable-ai serve``; useful when the console script
is not installed (e.g. ``PYTHONPATH=src python -m repro.service``).
"""

from __future__ import annotations

import argparse
import sys

from repro.service.app import add_serve_flags, config_from_args, serve


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: parse serve flags and run the service until signalled."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve carbon-footprint queries over JSON/HTTP.",
    )
    add_serve_flags(parser)
    args = parser.parse_args(argv)
    return serve(config_from_args(args))


if __name__ == "__main__":
    sys.exit(main())
