"""Live ``/stream`` serving: per-stream state, long-polling, O(Δ) deltas.

The HTTP layer (:mod:`repro.service.http`) speaks Content-Length-framed
HTTP/1.1 only, so live delivery is *long-poll*, not chunked transfer: a
client holds ``GET /stream?...&cursor=N&wait_s=S`` open and the service
answers as soon as the feed has ticks past ``N`` (or with an empty delta
at the deadline).  Each distinct stream spec gets one
:class:`StreamJob`: the memoized tick trace, a wall-clock release gate
(``tick_hz`` ticks become visible per second), and one live
:class:`~repro.core.incremental.IncrementalAccounting` state folded to
the highest cursor served so far.

The O(Δ) contract lives here: answering the frontier cursor folds only
the new ticks into the live state.  A *lagging* cursor (a client behind
the frontier asking for an old range) cannot be served from the live
state — its accounting block must describe the stream at ``to_seq``, not
at the frontier — so it is answered by a bounded library replay and
counted (``/metrics`` -> ``streams.replays``).  Either way the payload
is rendered by :func:`repro.carbon.stream.stream_delta_payload`, and the
incremental fold is bit-equal to the replay, so the service response is
byte-identical to the direct library path for every cursor range.
"""

from __future__ import annotations

import asyncio
import time

from repro.carbon.stream import (
    load_profile,
    simulate_tick_trace,
    stream_delta_payload,
)
from repro.core.incremental import IncrementalAccounting
from repro.errors import InvariantViolation
from repro.service import queries
from repro.service.http import Response

#: Stream-serving defaults, shared by the CLI flags and ServiceConfig.
DEFAULT_MAX_STREAMS = 32
DEFAULT_STREAM_TICK_HZ = 64.0
DEFAULT_STREAM_MAX_WAIT_S = 10.0
DEFAULT_STREAM_MAX_TICKS = 2048

#: Long-poll wakeup granularity; bounds shutdown latency of held polls.
_POLL_INTERVAL_S = 0.02


def _error_body(kind: str, message: str) -> bytes:
    return queries.render_payload({"error": {"kind": kind, "message": message}})


class StreamJob:
    """One live stream: tick trace, release clock, frontier accounting."""

    def __init__(self, query: "queries.StreamQuery", tick_hz: float) -> None:
        self.query = query
        self.spec = query.spec
        self.key = query.cache_key()
        self.tick_hz = float(tick_hz)
        self.ticks = simulate_tick_trace(self.spec)
        self.state = IncrementalAccounting(
            load_profile(self.spec),
            pue=self.spec.pue,
            window_hours=self.spec.window_hours,
        )
        self.folded_seq = 0
        self.started_monotonic = time.monotonic()
        self.deltas = 0

    @property
    def total_ticks(self) -> int:
        return len(self.ticks)

    def available(self, now: float | None = None) -> int:
        """Ticks released by the feed clock so far (monotone in time)."""
        if now is None:
            now = time.monotonic()
        elapsed = max(0.0, now - self.started_monotonic)
        return min(self.total_ticks, int(elapsed * self.tick_hz))

    def fold_to(self, seq: int) -> None:
        """Advance the live frontier state to ``seq`` ticks — the O(Δ) path."""
        for tick in self.ticks[self.folded_seq:seq]:
            self.state.fold(tick.hour, tick.intensity_kg_per_kwh)
        self.folded_seq = max(self.folded_seq, seq)


class StreamManager:
    """All live streams of one service instance, bounded by ``max_streams``."""

    def __init__(
        self,
        max_streams: int = DEFAULT_MAX_STREAMS,
        tick_hz: float = DEFAULT_STREAM_TICK_HZ,
        max_wait_s: float = DEFAULT_STREAM_MAX_WAIT_S,
    ) -> None:
        self.max_streams = int(max_streams)
        self.tick_hz = float(tick_hz)
        self.max_wait_s = float(max_wait_s)
        self.jobs: dict[str, StreamJob] = {}
        self.created = 0
        self.rejected = 0
        self.deltas = 0
        self.empty_deltas = 0
        self.ticks_delivered = 0
        self.long_poll_waits = 0
        self.replays = 0

    def stats(self) -> dict[str, object]:
        """The ``streams`` block of ``/metrics``."""
        return {
            "active": len(self.jobs),
            "max_streams": self.max_streams,
            "tick_hz": self.tick_hz,
            "created": self.created,
            "rejected": self.rejected,
            "deltas": self.deltas,
            "empty_deltas": self.empty_deltas,
            "ticks_delivered": self.ticks_delivered,
            "long_poll_waits": self.long_poll_waits,
            "replays": self.replays,
        }

    async def poll(
        self,
        query: "queries.StreamQuery",
        cursor: int,
        wait_s: float,
        max_ticks: int,
        draining: "asyncio.Event | None" = None,
    ) -> Response:
        """Answer one long-poll: wait for ticks past ``cursor``, render delta."""
        key = query.cache_key()
        job = self.jobs.get(key)
        if job is None:
            if len(self.jobs) >= self.max_streams:
                self.rejected += 1
                return Response(
                    429,
                    _error_body(
                        "overloaded",
                        f"{len(self.jobs)} live stream(s) >= max streams "
                        f"{self.max_streams}; retry later",
                    ),
                )
            job = StreamJob(query, self.tick_hz)
            self.jobs[key] = job
            self.created += 1
        if cursor > job.total_ticks:
            return Response(
                400,
                _error_body(
                    "bad-request",
                    f"cursor {cursor} past the end of the stream "
                    f"({job.total_ticks} ticks)",
                ),
            )
        now = time.monotonic()
        available = job.available(now)
        deadline = now + max(0.0, min(wait_s, self.max_wait_s))
        waited = False
        while (
            available <= cursor
            and cursor < job.total_ticks
            and now < deadline
            and (draining is None or not draining.is_set())
        ):
            waited = True
            await asyncio.sleep(min(_POLL_INTERVAL_S, deadline - now))
            now = time.monotonic()
            available = job.available(now)
        if waited:
            self.long_poll_waits += 1
        if cursor > available:
            # A cursor ahead of this replica's release clock: possible
            # after fabric failover restarted the stream's clock.  The
            # data will exist; it just is not released yet here.
            return Response(
                409,
                _error_body(
                    "cursor-ahead",
                    f"cursor {cursor} ahead of the feed clock "
                    f"({available}/{job.total_ticks} ticks released); retry",
                ),
            )
        to_seq = min(available, cursor + max_ticks)
        if to_seq >= job.folded_seq:
            job.fold_to(to_seq)
            payload = stream_delta_payload(
                job.spec, cursor, to_seq, ticks=job.ticks, state=job.state
            )
        else:
            self.replays += 1
            payload = stream_delta_payload(job.spec, cursor, to_seq, ticks=job.ticks)
        from repro.core.series import runtime_checks_enabled

        if runtime_checks_enabled():
            from repro.testing.invariants import check_result

            violations = check_result(queries.payload_to_result(payload))
            if violations:
                detail = "; ".join(
                    f"{v.invariant}({v.metric or v.detail})" for v in violations
                )
                raise InvariantViolation(
                    f"stream delta for {key!r} violates result invariants: {detail}"
                )
        job.deltas += 1
        self.deltas += 1
        self.ticks_delivered += to_seq - cursor
        if to_seq == cursor:
            self.empty_deltas += 1
        return Response(200, queries.render_payload(payload))


__all__ = [
    "DEFAULT_MAX_STREAMS",
    "DEFAULT_STREAM_TICK_HZ",
    "DEFAULT_STREAM_MAX_WAIT_S",
    "DEFAULT_STREAM_MAX_TICKS",
    "StreamJob",
    "StreamManager",
]
