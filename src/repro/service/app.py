"""The carbon-query service: routing, batching, backpressure, lifecycle.

``sustainable-ai serve`` (or ``python -m repro.service``) exposes the
accounting engine over JSON endpoints:

==========================  =======================================================
``GET /healthz``            liveness (``ok`` / ``draining``) + registry size
``GET /metrics``            request/latency/hit-rate counters, response-cache and
                            substrate-cache statistics
``GET /experiments``        all registered experiment ids, in registry order
``GET /experiments/{id}``   one experiment's runner JSON envelope (byte-identical
                            to ``sustainable-ai run {id} --json``'s record)
``GET|POST /footprint``     total footprint of a quantum of work under scenario
                            knobs (:class:`repro.service.queries.FootprintQuery`);
                            with ``workload=llm-training|llm-serving``, a GenAI
                            scenario (:class:`repro.service.queries.GenAIQuery`)
``GET|POST /schedule/carbon-aware``  carbon-aware vs immediate placement of a
                            synthetic job batch
``GET /stream``             long-poll one delta of a live grid-intensity stream
                            (``?cursor=N&wait_s=S`` + spec parameters; footprint
                            and schedule advice fold in O(new ticks))
``POST /sweep``             submit a stacked scenario sweep as a chunked job
                            (202 + ``sweep_id``; idempotent per canonical spec)
``GET /sweep``              list sweep jobs and their progress
``GET /sweep/{id}``         poll one job: monotone ``completed_points`` counter
``GET /sweep/{id}/result``  the finished sweep document (409 + progress while
                            running; byte-identical to the direct library call)
``GET /ledger``             claim-ledger summary (bundles, runs, epochs)
``GET /ledger/diff``        claim-by-claim diff of two refs (``?a=..&b=..``)
``GET /ledger/trace``       one headline metric's provenance, down to substrate
                            content hashes (``?experiment_id=..&metric=..``)
==========================  =======================================================

Request path: admission control (bounded in-flight count, excess gets a
structured ``429``) → response LRU (hit serves the exact bytes of the
original execution) → micro-batcher (identical in-flight queries share
one execution) → worker pool (``--workers`` processes; ``0`` = inline)
with a per-request timeout (``504``) — all over the same
``AccountingContext``/``HourlySeries`` engine the CLI runner uses, so a
service answer is byte-identical to the direct library call it fronts.

Worker executions ship their substrate-cache counter deltas back to the
parent (:func:`repro.service.queries.execute_query_task`), where they are
merged into the run-wide view ``/metrics`` reports — the same
stats-transport contract the experiment runner's pool uses.

On SIGTERM/SIGINT the service stops accepting, drains in-flight requests
(bounded by ``drain_timeout_s``), optionally writes a final metrics JSON
(``--metrics-json``), and exits 0.
"""

from __future__ import annotations

import asyncio
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path

from repro.core import ledger, memo
from repro.core.canonical import canonical_bytes, compact_dumps
from repro.errors import (
    InjectedFault,
    InvariantViolation,
    QueryError,
    ServiceError,
    SustainableAIError,
)
from repro.experiments import profiling
from repro.service import queries
from repro.service.streams import (
    DEFAULT_MAX_STREAMS,
    DEFAULT_STREAM_MAX_TICKS,
    DEFAULT_STREAM_MAX_WAIT_S,
    DEFAULT_STREAM_TICK_HZ,
    StreamManager,
)
from repro.service.sweeps import DEFAULT_MAX_SWEEPS, SweepManager
from repro.service.batching import QueryBatcher
from repro.service.cache import ResponseCache
from repro.service.http import HttpServer, Request, Response
from repro.telemetry.counters import ServiceCounters

#: Service defaults, shared by the CLI flags and :class:`ServiceConfig`.
DEFAULT_PORT = 8151
DEFAULT_WORKERS = 2
DEFAULT_BATCH_WINDOW_S = 0.005
DEFAULT_MAX_QUEUE = 64
DEFAULT_REQUEST_TIMEOUT_S = 30.0
DEFAULT_LRU_SIZE = 256
DEFAULT_DRAIN_TIMEOUT_S = 10.0


@dataclass(frozen=True)
class ServiceConfig:
    """All knobs of one service instance."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    workers: int = DEFAULT_WORKERS
    batch_window_s: float = DEFAULT_BATCH_WINDOW_S
    max_queue: int = DEFAULT_MAX_QUEUE
    request_timeout_s: float | None = DEFAULT_REQUEST_TIMEOUT_S
    lru_size: int = DEFAULT_LRU_SIZE
    drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S
    metrics_json: str | None = None
    max_sweeps: int = DEFAULT_MAX_SWEEPS
    #: Directory of the claim ledger; ``None`` keeps it in memory (the
    #: ledger then lives and dies with the service process).
    ledger_dir: str | None = None
    #: Seconds between background ``ledger gc`` compactions of the
    #: growing ``service`` run; ``None`` disables the loop.
    ledger_gc_interval_s: float | None = None
    #: Live-stream serving knobs (``/stream``).
    max_streams: int = DEFAULT_MAX_STREAMS
    stream_tick_hz: float = DEFAULT_STREAM_TICK_HZ
    stream_max_wait_s: float = DEFAULT_STREAM_MAX_WAIT_S

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ServiceError(f"workers must be >= 0 (0 = inline), got {self.workers}")
        if self.batch_window_s < 0:
            raise ServiceError(f"batch window must be >= 0, got {self.batch_window_s}")
        if self.max_queue < 1:
            raise ServiceError(f"max queue must be >= 1, got {self.max_queue}")
        if self.request_timeout_s is not None and self.request_timeout_s <= 0:
            raise ServiceError(
                f"request timeout must be positive or None, got {self.request_timeout_s}"
            )
        if self.lru_size < 0:
            raise ServiceError(f"LRU size must be >= 0, got {self.lru_size}")
        if self.drain_timeout_s < 0:
            raise ServiceError(f"drain timeout must be >= 0, got {self.drain_timeout_s}")
        if self.max_sweeps < 1:
            raise ServiceError(f"max sweeps must be >= 1, got {self.max_sweeps}")
        if self.ledger_gc_interval_s is not None and self.ledger_gc_interval_s <= 0:
            raise ServiceError(
                f"ledger gc interval must be positive or None, got {self.ledger_gc_interval_s}"
            )
        if self.max_streams < 1:
            raise ServiceError(f"max streams must be >= 1, got {self.max_streams}")
        if self.stream_tick_hz <= 0:
            raise ServiceError(f"stream tick rate must be positive, got {self.stream_tick_hz}")
        if self.stream_max_wait_s < 0:
            raise ServiceError(
                f"stream max wait must be >= 0, got {self.stream_max_wait_s}"
            )


def _error_body(kind: str, message: str) -> bytes:
    return queries.render_payload({"error": {"kind": kind, "message": message}})


class CarbonQueryService:
    """One service instance; create, then :meth:`run` on an event loop."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.counters = ServiceCounters()
        self.cache = ResponseCache(config.lru_size)
        self.batcher = QueryBatcher(config.batch_window_s, self._execute)
        self.sweeps = SweepManager(self, config.max_sweeps)
        self.streams = StreamManager(
            max_streams=config.max_streams,
            tick_hz=config.stream_tick_hz,
            max_wait_s=config.stream_max_wait_s,
        )
        directory = ledger.resolve_ledger_dir(config.ledger_dir)
        self.ledger = (
            ledger.Ledger.open(directory) if directory else ledger.Ledger.in_memory()
        )
        self.ledger_errors = 0
        self.ledger_gc_runs = 0
        self._seed_golden_epoch()
        self.worker_stats: dict[str, dict[str, int]] = {}
        self.port: int | None = None
        self._executor: ProcessPoolExecutor | None = None
        self._inline_executor: ThreadPoolExecutor | None = None
        self._active = 0
        self._draining = False
        self._started_monotonic = time.monotonic()
        self._stop_event: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- lifecycle ---------------------------------------------------------

    async def run(self, on_ready=None) -> None:
        """Serve until :meth:`request_shutdown`, then drain and clean up."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._started_monotonic = time.monotonic()
        server = HttpServer(self.handle, self.config.host, self.config.port)
        await server.start()
        self.port = server.port
        gc_task: asyncio.Task | None = None
        if self.config.ledger_gc_interval_s is not None:
            gc_task = asyncio.create_task(self._ledger_gc_loop())
        if on_ready is not None:
            on_ready(self)
        try:
            await self._stop_event.wait()
        finally:
            self._draining = True
            if gc_task is not None:
                gc_task.cancel()
            await server.drain_and_stop(self.config.drain_timeout_s)
            await self.batcher.drain(self.config.drain_timeout_s)
            for job in self.sweeps.jobs.values():
                if job.task is not None and not job.task.done():
                    job.task.cancel()
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
                self._executor = None
            if self._inline_executor is not None:
                self._inline_executor.shutdown(wait=False, cancel_futures=True)
                self._inline_executor = None
            if self.config.metrics_json:
                Path(self.config.metrics_json).write_bytes(
                    canonical_bytes(self.metrics_payload())
                )

    def _seed_golden_epoch(self) -> None:
        """Pin ``golden/baselines.json`` as epoch "0" when it is missing.

        Best-effort: a service without a baselines file (or with a corrupt
        one) still serves queries — it just cannot diff against the golden
        epoch until one is pinned.
        """
        if ledger.GOLDEN_EPOCH in self.ledger.epochs:
            return
        from repro.experiments import golden

        path = golden.DEFAULT_BASELINES_PATH
        if not path.exists():
            return
        try:
            bundles = ledger.bundles_from_baselines(golden.load_baselines(path))
            self.ledger.pin_epoch(
                ledger.GOLDEN_EPOCH,
                bundles,
                meta={"source": "golden-import", "path": str(path)},
            )
        except Exception:
            self.ledger_errors += 1

    async def _ledger_gc_loop(self) -> None:
        """Periodic ``ledger gc`` compaction of the growing ``service`` run.

        Long-lived streaming services append one run delta per executed
        query; without retention the journal grows without bound (the
        ROADMAP item).  Compaction is best-effort like every other ledger
        write: a failure is counted, never fatal.
        """
        assert self.config.ledger_gc_interval_s is not None
        while True:
            await asyncio.sleep(self.config.ledger_gc_interval_s)
            try:
                self.ledger.gc()
                self.ledger_gc_runs += 1
            except asyncio.CancelledError:  # pragma: no cover - shutdown race
                raise
            except Exception:
                self.ledger_errors += 1

    def request_shutdown(self) -> None:
        """Begin graceful shutdown; safe to call from any thread or a signal."""
        loop, event = self._loop, self._stop_event
        if loop is None or event is None:
            return
        loop.call_soon_threadsafe(event.set)

    # -- execution ---------------------------------------------------------

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.config.workers)
        return self._executor

    def _inline(self) -> ThreadPoolExecutor:
        # One thread, not to_thread's shared pool: experiment execution
        # seeds the global RNG, so inline queries must never overlap.
        if self._inline_executor is None:
            self._inline_executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="carbon-query-inline"
            )
        return self._inline_executor

    async def _run_task(self, query: queries.Query) -> dict[str, object]:
        params_json = compact_dumps(query.to_params())
        loop = asyncio.get_running_loop()
        if self.config.workers == 0:
            return await loop.run_in_executor(
                self._inline(), queries.execute_query_task, query.kind, params_json, False
            )
        pool = self._pool()
        try:
            return await loop.run_in_executor(
                pool, queries.execute_query_task, query.kind, params_json
            )
        except BrokenProcessPool:
            # The worker died mid-request (e.g. an injected crash).  The
            # pool is unusable; tear it down so the next query gets a
            # fresh one, and surface a structured error to the caller.
            if self._executor is pool:
                pool.shutdown(wait=False, cancel_futures=True)
                self._executor = None
            raise

    async def _execute(self, key: str, query: queries.Query) -> bytes:
        """Batcher execution body: run, merge stats, self-check, cache."""
        outcome = await self._run_task(query)
        memo.merge_stats(self.worker_stats, outcome["stats_delta"])
        payload = outcome["payload"]
        from repro.core.series import runtime_checks_enabled

        if runtime_checks_enabled():
            from repro.testing.invariants import check_result

            violations = check_result(queries.payload_to_result(payload))
            if violations:
                detail = "; ".join(
                    f"{v.invariant}({v.metric or v.detail})" for v in violations
                )
                raise InvariantViolation(
                    f"service response for {key!r} violates result invariants: {detail}"
                )
        body = queries.render_payload(payload)
        self.cache.put(key, body)
        self._record_claims(query, outcome, checked=runtime_checks_enabled())
        return body

    def _record_claims(
        self, query: queries.Query, outcome: dict[str, object], *, checked: bool
    ) -> None:
        """Append this execution's claims to the ledger run ``"service"``.

        Best-effort by design: the response bytes are already committed to
        the cache, so a ledger failure must never fail the request — it is
        counted (``/metrics`` -> ``ledger.errors``) instead.
        """
        try:
            bundle = ledger.bundle_from_payload(
                outcome["payload"],  # type: ignore[arg-type]
                kind=query.kind,
                substrates=outcome.get("substrates", ()),  # type: ignore[arg-type]
                invariant_status="ok" if checked else "not-checked",
                recorded_at=time.time(),
                source="service",
            )
            if bundle is not None:
                self.ledger.update_run(
                    "service", bundle, recorded_at=time.time()
                )
        except Exception:
            self.ledger_errors += 1

    async def _answer_query(self, endpoint: str, query: queries.Query) -> Response:
        """Admission -> LRU -> batcher -> worker, with structured errors."""
        if self._draining:
            return Response(
                503, _error_body("draining", "service is shutting down; retry elsewhere")
            )
        if self._active >= self.config.max_queue:
            return Response(
                429,
                _error_body(
                    "overloaded",
                    f"{self._active} request(s) in flight >= max queue "
                    f"{self.config.max_queue}; retry later",
                ),
            )
        self._active += 1
        try:
            key = query.cache_key()
            cached = self.cache.get(key)
            if cached is not None:
                return Response(200, cached)
            future = self.batcher.submit(key, query)
            body = await asyncio.wait_for(
                asyncio.shield(future), self.config.request_timeout_s
            )
            return Response(200, body)
        except asyncio.TimeoutError:
            return Response(
                504,
                _error_body(
                    "timeout",
                    f"query exceeded the per-request timeout "
                    f"({self.config.request_timeout_s}s); it may complete "
                    "in the background and be served from cache on retry",
                ),
            )
        except BrokenProcessPool:
            return Response(
                500, _error_body("crash", "worker process died mid-request")
            )
        except InjectedFault as exc:
            return Response(500, _error_body("injected-fault", str(exc)))
        except InvariantViolation as exc:
            return Response(500, _error_body("invariant-violation", str(exc)))
        except QueryError as exc:
            return Response(400, _error_body("bad-request", str(exc)))
        except SustainableAIError as exc:
            return Response(400, _error_body("invalid-query", str(exc)))
        finally:
            self._active -= 1

    # -- metrics -----------------------------------------------------------

    def metrics_payload(self) -> dict[str, object]:
        """The ``/metrics`` document (also the ``--metrics-json`` export)."""
        from repro.experiments.registry import experiment_ids

        substrate = {name: dict(row) for name, row in sorted(self.worker_stats.items())}
        return {
            "service": {
                "uptime_s": time.monotonic() - self._started_monotonic,
                "draining": self._draining,
                "workers": self.config.workers,
                "max_queue": self.config.max_queue,
                "batch_window_s": self.config.batch_window_s,
                "experiments": len(experiment_ids()),
            },
            "requests": self.counters.snapshot(),
            "response_cache": self.cache.stats(),
            "batching": self.batcher.stats(),
            "substrate_cache": {
                "per_substrate": substrate,
                "totals": memo.totals(self.worker_stats),
                "hit_rate": profiling.cache_hit_rate(self.worker_stats),
            },
            "sweeps": self.sweeps.stats(),
            "streams": self.streams.stats(),
            "ledger": {
                **self.ledger.stats(),
                "errors": self.ledger_errors,
                "gc_runs": self.ledger_gc_runs,
                "gc_interval_s": self.config.ledger_gc_interval_s,
            },
        }

    # -- routing -----------------------------------------------------------

    @staticmethod
    def _merge_params(request: Request) -> dict[str, object]:
        """Query-string parameters overlaid by the JSON body (POST)."""
        params: dict[str, object] = dict(request.params)
        params.update(request.json_body())
        return params

    async def handle(self, request: Request) -> Response:
        start = time.perf_counter()
        endpoint, response, cache_state = await self._route(request)
        elapsed = time.perf_counter() - start
        self.counters.record(endpoint, response.status, elapsed, cache_state)
        return response

    async def _route(self, request: Request) -> tuple[str, Response, str | None]:
        path, method = request.path.rstrip("/") or "/", request.method
        if path == "/healthz" and method == "GET":
            status = "draining" if self._draining else "ok"
            from repro.experiments.registry import experiment_ids

            return (
                "/healthz",
                Response(
                    200,
                    queries.render_payload(
                        {"status": status, "experiments": len(experiment_ids())}
                    ),
                ),
                None,
            )
        if path == "/metrics" and method == "GET":
            return (
                "/metrics",
                Response(200, queries.render_payload(self.metrics_payload())),
                None,
            )
        if path == "/experiments" and method == "GET":
            from repro.experiments.registry import experiment_ids

            return (
                "/experiments",
                Response(
                    200, queries.render_payload({"experiments": list(experiment_ids())})
                ),
                None,
            )
        if path.startswith("/experiments/") and method == "GET":
            experiment_id = path[len("/experiments/"):]
            try:
                query = queries.parse_query("experiment", {"experiment_id": experiment_id})
            except QueryError as exc:
                return (
                    "/experiments/{id}",
                    Response(404, _error_body("unknown-experiment", str(exc))),
                    None,
                )
            return await self._query_endpoint("/experiments/{id}", query)
        if path == "/footprint" and method in ("GET", "POST"):
            from repro.service.http import ProtocolError

            # A 'workload' parameter selects the genai scenario queries;
            # a malformed body falls through to the scalar parser, whose
            # error path turns it into the usual 400.
            try:
                genai = "workload" in self._merge_params(request)
            except ProtocolError:
                genai = False
            kind = "genai" if genai else "footprint"
            return await self._parse_and_answer("/footprint", kind, request)
        if path == "/schedule/carbon-aware" and method in ("GET", "POST"):
            return await self._parse_and_answer("/schedule/carbon-aware", "schedule", request)
        if path == "/stream" and method == "GET":
            return await self._stream_endpoint(request)
        if path == "/sweep" and method == "POST":
            return self._submit_sweep(request)
        if path == "/sweep" and method == "GET":
            jobs = [
                self.sweeps.jobs[sweep_id].progress_payload()
                for sweep_id in sorted(self.sweeps.jobs)
            ]
            return ("/sweep", Response(200, queries.render_payload({"sweeps": jobs})), None)
        if path.startswith("/sweep/") and method == "GET":
            return self._poll_sweep(path)
        if path == "/ledger" and method == "GET":
            return (
                "/ledger",
                Response(
                    200,
                    queries.render_payload(
                        {**self.ledger.stats(), "errors": self.ledger_errors}
                    ),
                ),
                None,
            )
        if path == "/ledger/diff" and method == "GET":
            return self._ledger_diff(request)
        if path == "/ledger/trace" and method == "GET":
            return self._ledger_trace(request)
        if path in (
            "/healthz", "/metrics", "/experiments", "/sweep", "/ledger", "/stream",
        ) or path.startswith(
            ("/experiments/", "/footprint", "/schedule", "/sweep/", "/ledger/")
        ):
            return (
                path,
                Response(405, _error_body("method-not-allowed", f"{method} {path}")),
                None,
            )
        return (
            "(unknown)",
            Response(
                404,
                _error_body(
                    "not-found",
                    f"no route for {path!r}; endpoints: /healthz, /metrics, "
                    "/experiments, /experiments/{id}, /footprint, "
                    "/schedule/carbon-aware, /stream, /sweep, /sweep/{id}, "
                    "/sweep/{id}/result, /ledger, /ledger/diff, "
                    "/ledger/trace",
                ),
            ),
            None,
        )

    def _submit_sweep(self, request: Request) -> tuple[str, Response, str | None]:
        """``POST /sweep``: parse, admit, start (or rejoin) the job."""
        from repro.service.http import ProtocolError

        if self._draining:
            return (
                "/sweep",
                Response(
                    503,
                    _error_body("draining", "service is shutting down; retry elsewhere"),
                ),
                None,
            )
        try:
            params = self._merge_params(request)
            query = queries.parse_query("sweep", params)
        except (ProtocolError, QueryError) as exc:
            return "/sweep", Response(400, _error_body("bad-request", str(exc))), None
        assert isinstance(query, queries.SweepQuery)
        from repro.service.sweeps import sweep_id_for

        if (
            self.sweeps.get(sweep_id_for(query)) is None
            and self.sweeps.active_count() >= self.config.max_sweeps
        ):
            return (
                "/sweep",
                Response(
                    429,
                    _error_body(
                        "overloaded",
                        f"{self.sweeps.active_count()} sweep(s) running >= "
                        f"max sweeps {self.config.max_sweeps}; retry later",
                    ),
                ),
                None,
            )
        job, created = self.sweeps.submit(query)
        status = 202 if job.status == "running" else 200
        return (
            "/sweep",
            Response(status, queries.render_payload(job.progress_payload())),
            "miss" if created else "hit",
        )

    def _poll_sweep(self, path: str) -> tuple[str, Response, str | None]:
        """``GET /sweep/{id}`` and ``GET /sweep/{id}/result``."""
        tail = path[len("/sweep/"):]
        want_result = tail.endswith("/result")
        sweep_id = tail[: -len("/result")] if want_result else tail
        endpoint = "/sweep/{id}/result" if want_result else "/sweep/{id}"
        job = self.sweeps.get(sweep_id)
        if job is None or "/" in sweep_id:
            return (
                endpoint,
                Response(
                    404,
                    _error_body(
                        "unknown-sweep",
                        f"no sweep job {sweep_id!r} (GET /sweep lists jobs)",
                    ),
                ),
                None,
            )
        if not want_result:
            return endpoint, Response(200, queries.render_payload(job.progress_payload())), None
        if job.status == "done":
            assert job.body is not None
            return endpoint, Response(200, job.body), "hit"
        if job.status == "failed":
            return (
                endpoint,
                Response(500, _error_body("sweep-failed", job.error or "sweep failed")),
                None,
            )
        return (
            endpoint,
            Response(
                409,
                queries.render_payload(
                    {
                        "error": {
                            "kind": "not-finished",
                            "message": "sweep is still running; poll /sweep/{id}",
                        },
                        **job.progress_payload(),
                    }
                ),
            ),
            None,
        )

    async def _stream_endpoint(self, request: Request) -> tuple[str, Response, str | None]:
        """``GET /stream``: long-poll one delta of a live intensity stream.

        Transport parameters (``cursor``, ``wait_s``, ``max_ticks``)
        select which delta to serve and are stripped before the stream
        spec is parsed — the spec alone is the stream's identity (and
        its fabric routing key).
        """
        from repro.service.http import ProtocolError
        from repro.service.streams import DEFAULT_STREAM_MAX_TICKS

        endpoint = "/stream"
        if self._draining:
            return (
                endpoint,
                Response(
                    503,
                    _error_body("draining", "service is shutting down; retry elsewhere"),
                ),
                None,
            )
        try:
            params = self._merge_params(request)
            cursor = queries._as_int("cursor", params.pop("cursor", 0))
            if cursor < 0:
                raise QueryError(f"parameter 'cursor' must be >= 0, got {cursor}")
            wait_s = queries._as_float("wait_s", params.pop("wait_s", 0.0))
            if wait_s < 0:
                raise QueryError(f"parameter 'wait_s' must be >= 0, got {wait_s}")
            max_ticks = queries._as_int(
                "max_ticks", params.pop("max_ticks", DEFAULT_STREAM_MAX_TICKS)
            )
            if not (1 <= max_ticks <= 20_000):
                raise QueryError(
                    f"parameter 'max_ticks' must be in [1, 20000], got {max_ticks}"
                )
            query = queries.parse_query("stream", params)
        except (ProtocolError, QueryError) as exc:
            return endpoint, Response(400, _error_body("bad-request", str(exc))), None
        assert isinstance(query, queries.StreamQuery)
        try:
            response = await self.streams.poll(
                query, cursor, wait_s, max_ticks, draining=self._stop_event
            )
        except InvariantViolation as exc:
            return endpoint, Response(500, _error_body("invariant-violation", str(exc))), None
        except SustainableAIError as exc:
            return endpoint, Response(400, _error_body("invalid-query", str(exc))), None
        return endpoint, response, None

    def _ledger_diff(self, request: Request) -> tuple[str, Response, str | None]:
        """``GET /ledger/diff?a=REF&b=REF[&strict=..]``: claim-by-claim diff."""
        endpoint = "/ledger/diff"
        ref_a = str(request.params.get("a", "")).strip()
        ref_b = str(request.params.get("b", "")).strip()
        if not ref_a or not ref_b:
            return (
                endpoint,
                Response(
                    400,
                    _error_body(
                        "bad-request",
                        "diff needs two refs: /ledger/diff?a=REF&b=REF "
                        f"(known refs: {', '.join(self.ledger.refs()) or '(none)'})",
                    ),
                ),
                None,
            )
        strict = str(request.params.get("strict", "true")).lower() not in (
            "0", "false", "no",
        )
        try:
            doc = self.ledger.diff_payload(ref_a, ref_b, strict=strict)
        except ledger.LedgerError as exc:
            return endpoint, Response(400, _error_body("unknown-ref", str(exc))), None
        return endpoint, Response(200, queries.render_payload(doc)), None

    def _ledger_trace(self, request: Request) -> tuple[str, Response, str | None]:
        """``GET /ledger/trace?experiment_id=..&metric=..[&ref=..]``."""
        endpoint = "/ledger/trace"
        experiment_id = str(request.params.get("experiment_id", "")).strip()
        metric = str(request.params.get("metric", "")).strip()
        if not experiment_id or not metric:
            return (
                endpoint,
                Response(
                    400,
                    _error_body(
                        "bad-request",
                        "trace needs /ledger/trace?experiment_id=ID&metric=METRIC",
                    ),
                ),
                None,
            )
        ref = str(request.params.get("ref", "")).strip() or None
        try:
            doc = self.ledger.trace(experiment_id, metric, ref=ref)
        except ledger.LedgerError as exc:
            return endpoint, Response(404, _error_body("unknown-claim", str(exc))), None
        return endpoint, Response(200, queries.render_payload(doc)), None

    async def _parse_and_answer(
        self, endpoint: str, kind: str, request: Request
    ) -> tuple[str, Response, str | None]:
        from repro.service.http import ProtocolError

        try:
            params = self._merge_params(request)
            query = queries.parse_query(kind, params)
        except ProtocolError as exc:
            return endpoint, Response(400, _error_body("bad-request", str(exc))), None
        except QueryError as exc:
            return endpoint, Response(400, _error_body("bad-request", str(exc))), None
        return await self._query_endpoint(endpoint, query)

    async def _query_endpoint(
        self, endpoint: str, query: queries.Query
    ) -> tuple[str, Response, str | None]:
        before_hits = self.cache.hits
        response = await self._answer_query(endpoint, query)
        if response.status != 200:
            return endpoint, response, None
        state = "hit" if self.cache.hits > before_hits else "miss"
        return endpoint, response, state


# ---------------------------------------------------------------------------
# Embedding and CLI entry points
# ---------------------------------------------------------------------------


class ServiceHandle:
    """A service running on a background thread (tests, benchmarks)."""

    def __init__(self, service: CarbonQueryService, thread: threading.Thread) -> None:
        self.service = service
        self.thread = thread

    @property
    def port(self) -> int:
        assert self.service.port is not None
        return self.service.port

    @property
    def base_url(self) -> str:
        return f"http://{self.service.config.host}:{self.port}"

    def stop(self, timeout: float = 30.0) -> None:
        self.service.request_shutdown()
        self.thread.join(timeout)
        if self.thread.is_alive():
            raise ServiceError("service thread did not stop within the timeout")

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def start_service(config: ServiceConfig, ready_timeout: float = 30.0) -> ServiceHandle:
    """Start a service on a daemon thread and wait until it is listening."""
    service = CarbonQueryService(config)
    ready = threading.Event()
    failure: list[BaseException] = []

    def _run() -> None:
        try:
            asyncio.run(service.run(on_ready=lambda _svc: ready.set()))
        except BaseException as exc:  # surface bind errors to the caller
            failure.append(exc)
            ready.set()

    thread = threading.Thread(target=_run, name="carbon-query-service", daemon=True)
    thread.start()
    if not ready.wait(ready_timeout):
        service.request_shutdown()
        raise ServiceError("service did not start listening within the timeout")
    if failure:
        raise ServiceError(f"service failed to start: {failure[0]}") from failure[0]
    return ServiceHandle(service, thread)


def serve(config: ServiceConfig) -> int:
    """Blocking CLI body: run until SIGTERM/SIGINT, drain, exit 0."""

    def _announce(service: CarbonQueryService) -> None:
        print(
            f"listening on http://{config.host}:{service.port} "
            f"(workers={config.workers}, batch_window={config.batch_window_s}s, "
            f"max_queue={config.max_queue})",
            flush=True,
        )

    async def _main() -> None:
        service = CarbonQueryService(config)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, service.request_shutdown)
        await service.run(on_ready=_announce)
        print("drained; bye", flush=True)

    asyncio.run(_main())
    return 0


# -- shared CLI flags --------------------------------------------------------


def add_serve_flags(parser) -> None:
    """Install the ``serve`` flags on an argparse (sub)parser."""
    parser.add_argument("--host", default="127.0.0.1", help="bind address (default: %(default)s)")
    parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help="TCP port; 0 picks an ephemeral port (default: %(default)s)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        metavar="K",
        default=DEFAULT_WORKERS,
        help="worker processes for query execution; 0 runs inline (default: %(default)s)",
    )
    parser.add_argument(
        "--batch-window",
        type=float,
        metavar="SECONDS",
        default=DEFAULT_BATCH_WINDOW_S,
        help="micro-batching window coalescing identical queries (default: %(default)s)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        metavar="N",
        default=DEFAULT_MAX_QUEUE,
        help="bounded in-flight request queue; excess gets 429 (default: %(default)s)",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        metavar="SECONDS",
        default=DEFAULT_REQUEST_TIMEOUT_S,
        help="per-request execution timeout -> 504 (default: %(default)s)",
    )
    parser.add_argument(
        "--lru-size",
        type=int,
        metavar="N",
        default=DEFAULT_LRU_SIZE,
        help="bounded response LRU fronting the disk cache (default: %(default)s)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        metavar="SECONDS",
        default=DEFAULT_DRAIN_TIMEOUT_S,
        help="grace period for in-flight requests on shutdown (default: %(default)s)",
    )
    parser.add_argument(
        "--metrics-json",
        metavar="PATH",
        default=None,
        help="write the final /metrics document to PATH on shutdown",
    )
    parser.add_argument(
        "--max-sweeps",
        type=int,
        metavar="N",
        default=DEFAULT_MAX_SWEEPS,
        help="bound on concurrently running /sweep jobs; excess gets 429 (default: %(default)s)",
    )
    parser.add_argument(
        "--ledger-dir",
        metavar="DIR",
        default=None,
        help="persist the claim ledger under DIR (default: env "
        f"{ledger.LEDGER_DIR_ENV_VAR} if set, else in-memory)",
    )
    parser.add_argument(
        "--ledger-gc-interval",
        type=float,
        metavar="SECONDS",
        default=None,
        help="compact the claim ledger ('ledger gc') every SECONDS while "
        "serving; 0 or unset disables the loop (default: disabled)",
    )
    parser.add_argument(
        "--max-streams",
        type=int,
        metavar="N",
        default=DEFAULT_MAX_STREAMS,
        help="bound on live /stream states; excess new streams get 429 "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--stream-tick-hz",
        type=float,
        metavar="HZ",
        default=DEFAULT_STREAM_TICK_HZ,
        help="feed release rate: ticks made visible per second per stream "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--stream-max-wait",
        type=float,
        metavar="SECONDS",
        default=DEFAULT_STREAM_MAX_WAIT_S,
        help="cap on one /stream long-poll's wait_s (default: %(default)s)",
    )


def config_from_args(args) -> ServiceConfig:
    """A :class:`ServiceConfig` from parsed ``add_serve_flags`` output."""
    return ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        batch_window_s=args.batch_window,
        max_queue=args.max_queue,
        request_timeout_s=args.request_timeout if args.request_timeout > 0 else None,
        lru_size=args.lru_size,
        drain_timeout_s=args.drain_timeout,
        metrics_json=args.metrics_json,
        max_sweeps=args.max_sweeps,
        ledger_dir=args.ledger_dir,
        ledger_gc_interval_s=(
            args.ledger_gc_interval
            if args.ledger_gc_interval and args.ledger_gc_interval > 0
            else None
        ),
        max_streams=args.max_streams,
        stream_tick_hz=args.stream_tick_hz,
        stream_max_wait_s=args.stream_max_wait,
    )
