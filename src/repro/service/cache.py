"""Bounded in-process LRU of rendered responses.

The service answers repeated identical queries from this cache before any
execution is scheduled, fronting the two-tier substrate cache of
:mod:`repro.core.memo`: a hit costs a dict lookup and serves the exact
bytes a cold execution produced, so warm responses are byte-identical to
cold ones by construction.

The cache is bounded (least-recently-used eviction) and counts its
traffic; ``/metrics`` surfaces the counters and the hit rate.  A lock
guards every operation — the event loop owns the cache in production,
but tests and the load generator may inspect it from other threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.errors import ServiceError


class ResponseCache:
    """A bounded LRU mapping canonical query keys to response bytes."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 0:
            raise ServiceError(f"cache size must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> bytes | None:
        """The cached response for ``key``, refreshing its recency."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: str, value: bytes) -> None:
        """Insert (or refresh) one response, evicting the LRU entry if full.

        With ``maxsize == 0`` the cache is disabled: every put is a no-op
        and every get a miss.
        """
        if self.maxsize == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            while len(self._entries) >= self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._entries[key] = value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, object]:
        """Counter snapshot for ``/metrics`` (hit rate ``None`` if unused)."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hit_rate": (self.hits / lookups) if lookups else None,
            }
