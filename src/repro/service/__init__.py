"""The async carbon-query service (``sustainable-ai serve``).

A thin asyncio layer over the accounting engine: JSON endpoints for
experiments, footprints, and carbon-aware schedules, with single-flight
micro-batching, a bounded response LRU, a worker pool, backpressure, and
graceful drain.  Responses are byte-identical to the direct library
calls they front — see docs/SERVICE.md.
"""

from repro.service.app import (
    CarbonQueryService,
    ServiceConfig,
    ServiceHandle,
    serve,
    start_service,
)
from repro.service.batching import QueryBatcher
from repro.service.cache import ResponseCache
from repro.service.queries import (
    QUERY_KINDS,
    ExperimentQuery,
    FootprintQuery,
    Query,
    ScheduleQuery,
    SweepQuery,
    execute_query_task,
    execute_sweep_chunk_task,
    parse_query,
    payload_to_result,
    render_payload,
)
from repro.service.sweeps import SweepJob, SweepManager

__all__ = [
    "CarbonQueryService",
    "ExperimentQuery",
    "FootprintQuery",
    "QUERY_KINDS",
    "Query",
    "QueryBatcher",
    "ResponseCache",
    "ScheduleQuery",
    "ServiceConfig",
    "ServiceHandle",
    "SweepJob",
    "SweepManager",
    "SweepQuery",
    "execute_query_task",
    "execute_sweep_chunk_task",
    "parse_query",
    "payload_to_result",
    "render_payload",
    "serve",
    "start_service",
]
