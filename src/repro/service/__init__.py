"""The async carbon-query service (``sustainable-ai serve``).

A thin asyncio layer over the accounting engine: JSON endpoints for
experiments, footprints, and carbon-aware schedules, with single-flight
micro-batching, a bounded response LRU, a worker pool, backpressure, and
graceful drain.  Responses are byte-identical to the direct library
calls they front — see docs/SERVICE.md.

``sustainable-ai fabric`` scales the service horizontally: a
consistent-hash router (:mod:`repro.service.router`) shards canonical
query keys across N replicas with health-checked failover, keeping the
byte-identity contract fleet-wide — see the Fabric section of
docs/SERVICE.md.
"""

from repro.service.app import (
    CarbonQueryService,
    ServiceConfig,
    ServiceHandle,
    serve,
    start_service,
)
from repro.service.batching import QueryBatcher
from repro.service.cache import ResponseCache
from repro.service.hashring import HashRing
from repro.service.queries import (
    QUERY_KINDS,
    ExperimentQuery,
    FootprintQuery,
    Query,
    ScheduleQuery,
    SweepQuery,
    execute_query_task,
    execute_sweep_chunk_task,
    parse_query,
    payload_to_result,
    render_payload,
)
from repro.service.sweeps import SweepJob, SweepManager

# The router is re-exported lazily (PEP 562): importing it here eagerly
# would put repro.service.router into sys.modules while runpy is still
# importing the parent package, so ``python -m repro.service.router``
# would warn about a double import before printing its banner.
_ROUTER_EXPORTS = frozenset(
    {
        "CarbonQueryRouter",
        "RouterConfig",
        "RouterHandle",
        "merge_replica_metrics",
        "run_router",
        "start_router",
    }
)


def __getattr__(name: str):
    if name in _ROUTER_EXPORTS:
        from repro.service import router

        return getattr(router, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CarbonQueryRouter",
    "CarbonQueryService",
    "ExperimentQuery",
    "FootprintQuery",
    "HashRing",
    "QUERY_KINDS",
    "Query",
    "QueryBatcher",
    "ResponseCache",
    "RouterConfig",
    "RouterHandle",
    "ScheduleQuery",
    "ServiceConfig",
    "ServiceHandle",
    "SweepJob",
    "SweepManager",
    "SweepQuery",
    "execute_query_task",
    "execute_sweep_chunk_task",
    "merge_replica_metrics",
    "parse_query",
    "payload_to_result",
    "render_payload",
    "run_router",
    "serve",
    "start_router",
    "start_service",
]
