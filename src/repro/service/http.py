"""A small asyncio HTTP/1.1 server (stdlib only).

The container ships no third-party HTTP stack, so the service speaks a
deliberately narrow slice of HTTP/1.1 over ``asyncio.start_server``:
request-line + headers + optional ``Content-Length`` body in, status
line + ``Content-Length`` JSON body out, with keep-alive.  Chunked
transfer encoding, trailers, upgrades, and pipelining are out of scope —
a request with a body must declare its length.

The server tracks every connection and whether it is mid-request, which
is what makes graceful drain possible: on shutdown it stops accepting,
closes *idle* keep-alive connections immediately, and gives in-flight
requests ``drain_timeout`` seconds to complete before aborting them.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Awaitable, Callable
from urllib.parse import parse_qsl, unquote, urlsplit

#: Hard limits keeping a single connection's memory bounded.
MAX_REQUEST_LINE = 8192
MAX_HEADER_COUNT = 100
MAX_BODY_BYTES = 1_048_576

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(Exception):
    """The peer sent something that is not acceptable HTTP/1.1."""


@dataclass(frozen=True)
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    params: dict[str, str]
    headers: dict[str, str]
    body: bytes
    #: The request target exactly as the client sent it (path + query,
    #: percent-encoding intact) — what a proxy must forward verbatim so
    #: the upstream parses the same request the client wrote.
    raw_target: str = ""

    def json_body(self) -> dict[str, object]:
        """The body decoded as a JSON object (empty body -> empty dict)."""
        if not self.body:
            return {}
        try:
            decoded = json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from None
        if not isinstance(decoded, dict):
            raise ProtocolError("request body must be a JSON object")
        return decoded


@dataclass(frozen=True)
class Response:
    """One response: status, JSON body bytes, and extra headers."""

    status: int
    body: bytes
    content_type: str = "application/json"
    close: bool = False

    def encode(self) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        connection = "close" if self.close else "keep-alive"
        head = (
            f"HTTP/1.1 {self.status} {reason}\r\n"
            f"Content-Type: {self.content_type}\r\n"
            f"Content-Length: {len(self.body)}\r\n"
            f"Connection: {connection}\r\n"
            "\r\n"
        )
        return head.encode("ascii") + self.body


Handler = Callable[[Request], Awaitable[Response]]


async def _read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request; ``None`` on clean EOF before any bytes."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-request-line") from None
    except asyncio.LimitOverrunError:
        raise ProtocolError("request line too long") from None
    if len(line) > MAX_REQUEST_LINE:
        raise ProtocolError("request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line: {line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported protocol version {version!r}")

    headers: dict[str, str] = {}
    for _ in range(MAX_HEADER_COUNT + 1):
        try:
            raw = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise ProtocolError("connection closed mid-headers") from None
        if raw == b"\r\n":
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {raw!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise ProtocolError("too many headers")

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise ProtocolError("non-integer Content-Length") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise ProtocolError(f"Content-Length {length} outside [0, {MAX_BODY_BYTES}]")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError("connection closed mid-body") from None
    elif headers.get("transfer-encoding"):
        raise ProtocolError("chunked transfer encoding is not supported")

    split = urlsplit(target)
    params = {key: value for key, value in parse_qsl(split.query, keep_blank_values=True)}
    return Request(
        method=method.upper(),
        path=unquote(split.path) or "/",
        params=params,
        headers=headers,
        body=body,
        raw_target=target,
    )


def json_response(status: int, payload_bytes: bytes, close: bool = False) -> Response:
    """Shorthand for a JSON response from pre-rendered bytes."""
    return Response(status=status, body=payload_bytes, close=close)


@dataclass
class _Connection:
    writer: asyncio.StreamWriter
    busy: bool = False


@dataclass
class HttpServer:
    """The listener + connection loop around one request handler."""

    handler: Handler
    host: str = "127.0.0.1"
    port: int = 0
    _server: asyncio.AbstractServer | None = None
    _connections: dict[asyncio.Task, _Connection] = field(default_factory=dict)
    _draining: bool = False

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._client_connected, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def _client_connected(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # The sync-callback variant of start_server: we create the
        # connection task ourselves so it can be registered (with its
        # busy flag) before the first byte is read — drain relies on it.
        conn = _Connection(writer=writer)
        loop_task = asyncio.get_running_loop().create_task(
            self._serve_connection(reader, writer, conn)
        )
        self._connections[loop_task] = conn
        loop_task.add_done_callback(lambda t: self._connections.pop(t, None))

    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        conn: _Connection,
    ) -> None:
        try:
            while not self._draining:
                try:
                    request = await _read_request(reader)
                except ProtocolError as exc:
                    body = json.dumps(
                        {"error": {"kind": "bad-request", "message": str(exc)}}
                    ).encode()
                    writer.write(Response(400, body, close=True).encode())
                    await writer.drain()
                    return
                if request is None:
                    return
                conn.busy = True
                try:
                    response = await self.handler(request)
                finally:
                    conn.busy = False
                close = (
                    response.close
                    or self._draining
                    or request.headers.get("connection", "").lower() == "close"
                )
                if close:
                    response = Response(
                        response.status, response.body, response.content_type, close=True
                    )
                writer.write(response.encode())
                await writer.drain()
                if close:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def drain_and_stop(self, timeout: float) -> None:
        """Stop accepting, let in-flight requests finish, then close.

        Idle keep-alive connections are closed immediately; connections
        mid-request get up to ``timeout`` seconds to write their response.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task, conn in list(self._connections.items()):
            if not conn.busy:
                task.cancel()
        remaining = [t for t in self._connections if not t.done()]
        if remaining:
            _done, pending = await asyncio.wait(remaining, timeout=timeout)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
