"""Load/soak generator for the carbon-query service.

``python -m repro.service.loadgen --url http://127.0.0.1:8151`` drives a
deterministic, seeded mix of experiment/footprint/schedule queries from
``--clients`` concurrent keep-alive connections for ``--duration``
seconds (or a fixed ``--requests`` budget), then reports throughput,
client-side latency percentiles, an error census, and the server's own
``/metrics`` hit rates.

``--spawn`` self-starts a service subprocess on an ephemeral port (used
by the CI smoke job and the benchmark suite), and ``--fail-on-5xx`` /
``--max-p99`` turn the report into a gate: exit code 1 when the soak saw
a server error or the p99 exceeded the bound.

The generator is stdlib-only (``http.client`` + threads) so it exercises
the service through an HTTP stack it does not share.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import random
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from urllib.parse import urlsplit

from repro.core.canonical import canonical_bytes
from repro.telemetry.counters import LatencyReservoir

#: The default traffic mix: fast experiments plus parameterized queries,
#: weighted toward repetition so the cache/batching layers see realistic
#: (dashboard-like) traffic.  Weights are (path, repeats-in-deck).
DEFAULT_EXPERIMENTS = ("fig7", "fig8", "fig9", "text-gpudays")


def build_mix(seed: int, experiments: tuple[str, ...] = DEFAULT_EXPERIMENTS) -> list[str]:
    """A deterministic shuffled deck of request paths."""
    deck: list[str] = []
    for exp_id in experiments:
        deck.extend([f"/experiments/{exp_id}"] * 4)
    for busy in (100, 1000, 10_000, 100_000):
        deck.extend([f"/footprint?busy_device_hours={busy}"] * 3)
    deck.extend(["/footprint?busy_device_hours=5000&region=us-average"] * 2)
    for n_jobs, grid_seed in ((10, 0), (25, 1)):
        deck.append(f"/schedule/carbon-aware?n_jobs={n_jobs}&grid_seed={grid_seed}")
    random.Random(seed).shuffle(deck)
    return deck


@dataclass
class ClientStats:
    """One worker thread's tally."""

    requests: int = 0
    by_status: dict[int, int] = field(default_factory=dict)
    transport_errors: int = 0
    latency: LatencyReservoir = field(default_factory=lambda: LatencyReservoir(65536))


@dataclass
class LoadgenReport:
    """Aggregated outcome of one load run."""

    clients: int
    duration_s: float
    requests: int
    throughput_rps: float
    by_status: dict[str, int]
    errors_5xx: int
    transport_errors: int
    latency_s: dict[str, object]
    server_metrics: dict[str, object] | None

    def to_payload(self) -> dict[str, object]:
        return {
            "clients": self.clients,
            "duration_s": self.duration_s,
            "requests": self.requests,
            "throughput_rps": self.throughput_rps,
            "by_status": self.by_status,
            "errors_5xx": self.errors_5xx,
            "transport_errors": self.transport_errors,
            "latency_s": self.latency_s,
            "server_metrics": self.server_metrics,
        }

    def render(self) -> str:
        lat = self.latency_s
        lines = [
            f"{self.requests} requests from {self.clients} client(s) "
            f"in {self.duration_s:.2f}s ({self.throughput_rps:,.1f} req/s)",
            f"  statuses: {self.by_status}  "
            f"(5xx: {self.errors_5xx}, transport errors: {self.transport_errors})",
            f"  latency: p50 {lat['p50_s'] * 1e3:.2f}ms  p90 {lat['p90_s'] * 1e3:.2f}ms  "
            f"p99 {lat['p99_s'] * 1e3:.2f}ms  max {lat['max_s'] * 1e3:.2f}ms",
        ]
        if self.server_metrics is not None:
            requests = self.server_metrics.get("requests", {})
            cache = self.server_metrics.get("response_cache", {})
            batching = self.server_metrics.get("batching", {})
            lines.append(
                f"  server: cache hit rate {cache.get('hit_rate')}  "
                f"coalesced {batching.get('coalesced', 0)}  "
                f"answered-from-cache {requests.get('answered_from_cache_rate')}"
            )
        return "\n".join(lines)


def _drive_client(
    host: str,
    port: int,
    deck: list[str],
    offset: int,
    stop_at: float,
    max_requests: int | None,
    stats: ClientStats,
    timeout: float,
) -> None:
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    index = offset
    try:
        while time.monotonic() < stop_at:
            if max_requests is not None and stats.requests >= max_requests:
                break
            path = deck[index % len(deck)]
            index += 1
            started = time.perf_counter()
            try:
                conn.request("GET", path)
                response = conn.getresponse()
                response.read()
                status = response.status
                if response.will_close:
                    conn.close()
            except (http.client.HTTPException, OSError):
                stats.transport_errors += 1
                conn.close()
                continue
            stats.latency.observe(time.perf_counter() - started)
            stats.requests += 1
            stats.by_status[status] = stats.by_status.get(status, 0) + 1
    finally:
        conn.close()


def run_load(
    host: str,
    port: int,
    clients: int,
    duration_s: float,
    requests_per_client: int | None = None,
    seed: int = 0,
    timeout: float = 120.0,
    fetch_server_metrics: bool = True,
) -> LoadgenReport:
    """Drive the mix from ``clients`` threads and aggregate the outcome."""
    deck = build_mix(seed)
    per_client = [ClientStats() for _ in range(clients)]
    stop_at = time.monotonic() + duration_s
    started = time.monotonic()
    threads = [
        threading.Thread(
            target=_drive_client,
            args=(
                host,
                port,
                deck,
                # Distinct deck offsets so clients collide on the same
                # paths *sometimes* (coalescing) but not in lockstep.
                (i * 7) % len(deck),
                stop_at,
                requests_per_client,
                per_client[i],
                timeout,
            ),
            name=f"loadgen-{i}",
        )
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started

    merged = LatencyReservoir(65536)
    by_status: dict[int, int] = {}
    total = 0
    transport_errors = 0
    for stats in per_client:
        total += stats.requests
        transport_errors += stats.transport_errors
        for status, count in stats.by_status.items():
            by_status[status] = by_status.get(status, 0) + count
        for sample in list(stats.latency._samples):
            merged.observe(sample)

    server_metrics = None
    if fetch_server_metrics:
        try:
            conn = http.client.HTTPConnection(host, port, timeout=timeout)
            conn.request("GET", "/metrics")
            server_metrics = json.loads(conn.getresponse().read())
            conn.close()
        except (http.client.HTTPException, OSError, ValueError):
            server_metrics = None

    return LoadgenReport(
        clients=clients,
        duration_s=elapsed,
        requests=total,
        throughput_rps=total / elapsed if elapsed > 0 else 0.0,
        by_status={str(k): v for k, v in sorted(by_status.items())},
        errors_5xx=sum(v for k, v in by_status.items() if 500 <= k < 600),
        transport_errors=transport_errors,
        latency_s=merged.snapshot(),
        server_metrics=server_metrics,
    )


def spawn_service(extra_args: list[str] | None = None) -> tuple[subprocess.Popen, int]:
    """Start ``python -m repro.service`` on an ephemeral port; (proc, port)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0"] + (extra_args or []),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=dict(os.environ),
    )
    assert proc.stdout is not None
    banner = proc.stdout.readline()
    if "listening on http://" not in banner:
        proc.kill()
        raise RuntimeError(f"service did not start: {banner!r}")
    port = int(banner.split("http://")[1].split()[0].rsplit(":", 1)[1])
    return proc, port


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: soak a service and gate on the report."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen",
        description="Load/soak-test a carbon-query service instance.",
    )
    parser.add_argument(
        "--url",
        default="http://127.0.0.1:8151",
        help="service base URL (default: %(default)s); ignored with --spawn",
    )
    parser.add_argument(
        "--spawn",
        action="store_true",
        help="start a service subprocess on an ephemeral port for the run",
    )
    parser.add_argument(
        "--clients", type=int, default=4, help="concurrent client threads (default: 4)"
    )
    parser.add_argument(
        "--duration", type=float, default=10.0, help="soak seconds (default: 10)"
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=None,
        metavar="N",
        help="stop each client after N requests (default: duration-bound only)",
    )
    parser.add_argument("--seed", type=int, default=0, help="traffic-mix shuffle seed")
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="also write the report as JSON"
    )
    parser.add_argument(
        "--fail-on-5xx",
        action="store_true",
        help="exit 1 if any request returned a 5xx status",
    )
    parser.add_argument(
        "--max-p99",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit 1 if the client-side p99 latency exceeds this bound",
    )
    args = parser.parse_args(argv)
    if args.clients < 1:
        parser.error(f"--clients must be >= 1, got {args.clients}")
    if args.duration <= 0:
        parser.error(f"--duration must be positive, got {args.duration}")

    proc: subprocess.Popen | None = None
    if args.spawn:
        proc, port = spawn_service()
        host = "127.0.0.1"
    else:
        split = urlsplit(args.url)
        host = split.hostname or "127.0.0.1"
        port = split.port or 8151
    try:
        report = run_load(
            host,
            port,
            clients=args.clients,
            duration_s=args.duration,
            requests_per_client=args.requests,
            seed=args.seed,
        )
    finally:
        if proc is not None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
            if proc.stdout is not None:
                proc.stdout.close()

    print(report.render())
    if args.json:
        with open(args.json, "wb") as handle:
            handle.write(canonical_bytes(report.to_payload()))
        print(f"wrote {args.json}")

    failed = False
    if args.fail_on_5xx and (report.errors_5xx or report.transport_errors):
        print(
            f"FAIL: {report.errors_5xx} 5xx response(s), "
            f"{report.transport_errors} transport error(s)",
            file=sys.stderr,
        )
        failed = True
    p99 = report.latency_s["p99_s"]
    if args.max_p99 is not None and p99 > args.max_p99:
        print(f"FAIL: p99 {p99:.3f}s exceeds bound {args.max_p99}s", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
