"""Load/soak generator for the carbon-query service.

``python -m repro.service.loadgen --url http://127.0.0.1:8151`` drives a
deterministic, seeded mix of experiment/footprint/schedule queries from
``--clients`` concurrent keep-alive connections for ``--duration``
seconds (or a fixed ``--requests`` budget), then reports throughput,
client-side latency percentiles, an error census, and the server's own
``/metrics`` hit rates.

``--spawn`` self-starts a service subprocess on an ephemeral port (used
by the CI smoke job and the benchmark suite), and ``--fail-on-5xx`` /
``--max-p99`` turn the report into a gate: exit code 1 when the soak saw
a server error or the p99 exceeded the bound.

The generator is stdlib-only (``http.client`` + threads) so it exercises
the service through an HTTP stack it does not share.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import random
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from urllib.parse import urlsplit

from repro.core.canonical import canonical_bytes
from repro.telemetry.counters import LatencyReservoir

#: The default traffic mix: fast experiments plus parameterized queries,
#: weighted toward repetition so the cache/batching layers see realistic
#: (dashboard-like) traffic.  Weights are (path, repeats-in-deck).
DEFAULT_EXPERIMENTS = ("fig7", "fig8", "fig9", "text-gpudays")


def build_mix(seed: int, experiments: tuple[str, ...] = DEFAULT_EXPERIMENTS) -> list[str]:
    """A deterministic shuffled deck of request paths."""
    deck: list[str] = []
    for exp_id in experiments:
        deck.extend([f"/experiments/{exp_id}"] * 4)
    for busy in (100, 1000, 10_000, 100_000):
        deck.extend([f"/footprint?busy_device_hours={busy}"] * 3)
    deck.extend(["/footprint?busy_device_hours=5000&region=us-average"] * 2)
    for n_jobs, grid_seed in ((10, 0), (25, 1)):
        deck.append(f"/schedule/carbon-aware?n_jobs={n_jobs}&grid_seed={grid_seed}")
    random.Random(seed).shuffle(deck)
    return deck


def build_churn_mix(seed: int, distinct: int = 384) -> list[str]:
    """A cycling deck of ``distinct`` unique carbon-aware schedule queries.

    Every path normalizes to a different canonical cache key, so the deck's
    working set is exactly ``distinct`` responses, each costing a real
    scheduler run (~10-25ms) on a miss.  Sized above one node's response
    LRU, a cycling scan is the LRU's worst case (every entry is evicted
    before its revisit) — the workload the fabric exists for: consistent
    hashing splits the working set across replicas until each shard fits
    its node's LRU again and misses collapse to dict lookups.  The shuffle
    order is deterministic per seed; clients start at different offsets of
    the same cycle.
    """
    if distinct < 1:
        raise ValueError(f"distinct must be >= 1, got {distinct}")
    deck = [
        f"/schedule/carbon-aware?n_jobs={10 + index % 16}&grid_seed={index // 16}"
        for index in range(distinct)
    ]
    random.Random(seed).shuffle(deck)
    return deck


def build_stream_mix(seed: int, distinct: int = 4) -> list[str]:
    """A deck of live ``/stream`` polls across ``distinct`` stream specs.

    Each spec appears at cursor 0 (stream creation + frontier fold) and
    at a few small cursors (frontier advances and bounded replays), all
    with ``wait_s=0`` so a soak thread never parks inside a long poll.
    A sprinkle of ``/footprint`` keeps the ordinary query path (and its
    cache counters) exercised alongside the stream path.
    """
    if distinct < 1:
        raise ValueError(f"distinct must be >= 1, got {distinct}")
    deck: list[str] = []
    for index in range(distinct):
        spec = f"hours=48&grid_seed={index}&feed_seed={index % 2}"
        deck.extend([f"/stream?{spec}&cursor=0&wait_s=0"] * 3)
        for cursor in (1, 4, 16):
            deck.append(f"/stream?{spec}&cursor={cursor}&wait_s=0&max_ticks=8")
    deck.extend(["/footprint?busy_device_hours=1000"] * max(2, distinct))
    random.Random(seed).shuffle(deck)
    return deck


@dataclass
class ClientStats:
    """One worker thread's tally."""

    requests: int = 0
    by_status: dict[int, int] = field(default_factory=dict)
    transport_errors: int = 0
    latency: LatencyReservoir = field(default_factory=lambda: LatencyReservoir(65536))


@dataclass
class LoadgenReport:
    """Aggregated outcome of one load run."""

    clients: int
    duration_s: float
    requests: int
    throughput_rps: float
    by_status: dict[str, int]
    errors_5xx: int
    transport_errors: int
    latency_s: dict[str, object]
    server_metrics: dict[str, object] | None

    def to_payload(self) -> dict[str, object]:
        return {
            "clients": self.clients,
            "duration_s": self.duration_s,
            "requests": self.requests,
            "throughput_rps": self.throughput_rps,
            "by_status": self.by_status,
            "errors_5xx": self.errors_5xx,
            "transport_errors": self.transport_errors,
            "latency_s": self.latency_s,
            "server_metrics": self.server_metrics,
        }

    def render(self) -> str:
        lat = self.latency_s
        lines = [
            f"{self.requests} requests from {self.clients} client(s) "
            f"in {self.duration_s:.2f}s ({self.throughput_rps:,.1f} req/s)",
            f"  statuses: {self.by_status}  "
            f"(5xx: {self.errors_5xx}, transport errors: {self.transport_errors})",
            f"  latency: p50 {lat['p50_s'] * 1e3:.2f}ms  p90 {lat['p90_s'] * 1e3:.2f}ms  "
            f"p99 {lat['p99_s'] * 1e3:.2f}ms  max {lat['max_s'] * 1e3:.2f}ms",
        ]
        if self.server_metrics is not None:
            requests = self.server_metrics.get("requests", {})
            cache = self.server_metrics.get("response_cache", {})
            batching = self.server_metrics.get("batching", {})
            lines.append(
                f"  server: cache hit rate {cache.get('hit_rate')}  "
                f"coalesced {batching.get('coalesced', 0)}  "
                f"answered-from-cache {requests.get('answered_from_cache_rate')}"
            )
        return "\n".join(lines)


def _drive_client(
    host: str,
    port: int,
    deck: list[str],
    offset: int,
    stop_at: float,
    max_requests: int | None,
    stats: ClientStats,
    timeout: float,
) -> None:
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    index = offset
    try:
        while time.monotonic() < stop_at:
            if max_requests is not None and stats.requests >= max_requests:
                break
            path = deck[index % len(deck)]
            index += 1
            started = time.perf_counter()
            try:
                conn.request("GET", path)
                response = conn.getresponse()
                response.read()
                status = response.status
                if response.will_close:
                    conn.close()
            except (http.client.HTTPException, OSError):
                stats.transport_errors += 1
                conn.close()
                continue
            stats.latency.observe(time.perf_counter() - started)
            stats.requests += 1
            stats.by_status[status] = stats.by_status.get(status, 0) + 1
    finally:
        conn.close()


def run_load(
    host: str,
    port: int,
    clients: int,
    duration_s: float,
    requests_per_client: int | None = None,
    seed: int = 0,
    timeout: float = 120.0,
    fetch_server_metrics: bool = True,
    deck: list[str] | None = None,
) -> LoadgenReport:
    """Drive the mix from ``clients`` threads and aggregate the outcome."""
    if deck is None:
        deck = build_mix(seed)
    per_client = [ClientStats() for _ in range(clients)]
    stop_at = time.monotonic() + duration_s
    started = time.monotonic()
    threads = [
        threading.Thread(
            target=_drive_client,
            args=(
                host,
                port,
                deck,
                # Distinct deck offsets so clients collide on the same
                # paths *sometimes* (coalescing) but not in lockstep.
                (i * 7) % len(deck),
                stop_at,
                requests_per_client,
                per_client[i],
                timeout,
            ),
            name=f"loadgen-{i}",
        )
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.monotonic() - started

    merged = LatencyReservoir(65536)
    by_status: dict[int, int] = {}
    total = 0
    transport_errors = 0
    for stats in per_client:
        total += stats.requests
        transport_errors += stats.transport_errors
        for status, count in stats.by_status.items():
            by_status[status] = by_status.get(status, 0) + count
        for sample in list(stats.latency._samples):
            merged.observe(sample)

    server_metrics = None
    if fetch_server_metrics:
        try:
            conn = http.client.HTTPConnection(host, port, timeout=timeout)
            conn.request("GET", "/metrics")
            server_metrics = json.loads(conn.getresponse().read())
            conn.close()
        except (http.client.HTTPException, OSError, ValueError):
            server_metrics = None

    return LoadgenReport(
        clients=clients,
        duration_s=elapsed,
        requests=total,
        throughput_rps=total / elapsed if elapsed > 0 else 0.0,
        by_status={str(k): v for k, v in sorted(by_status.items())},
        errors_5xx=sum(v for k, v in by_status.items() if 500 <= k < 600),
        transport_errors=transport_errors,
        latency_s=merged.snapshot(),
        server_metrics=server_metrics,
    )


def spawn_service(extra_args: list[str] | None = None) -> tuple[subprocess.Popen, int]:
    """Start ``python -m repro.service`` on an ephemeral port; (proc, port)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0"] + (extra_args or []),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=dict(os.environ),
    )
    return proc, _await_banner(proc, "service")


def _await_banner(proc: subprocess.Popen, what: str, max_lines: int = 20) -> int:
    """Read stdout until the listen banner appears; return the bound port.

    Warnings from the interpreter or libraries may precede the banner, so
    non-banner lines are skipped (up to ``max_lines``, so a process that
    never binds still fails fast).
    """
    assert proc.stdout is not None
    seen: list[str] = []
    for _ in range(max_lines):
        line = proc.stdout.readline()
        if not line:
            break
        if "listening on http://" in line:
            return int(line.split("http://")[1].split()[0].rsplit(":", 1)[1])
        seen.append(line)
    proc.kill()
    raise RuntimeError(f"{what} did not start: {''.join(seen)!r}")


def spawn_fabric(
    replicas: int, extra_args: list[str] | None = None
) -> tuple[subprocess.Popen, int]:
    """Start a ``repro.service.router`` fabric on an ephemeral port.

    Replicas run with ``--workers 0`` (inline execution) so killing one
    mid-soak cannot orphan process-pool workers.
    """
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service.router",
            "--port",
            "0",
            "--replicas",
            str(replicas),
            "--workers",
            "0",
        ]
        + (extra_args or []),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=dict(os.environ),
    )
    return proc, _await_banner(proc, "fabric")


def _chaos_kill_replica(host: str, port: int, timeout: float = 10.0) -> None:
    """SIGKILL one healthy replica of the fabric at ``host:port``.

    Reads the router's aggregated ``/metrics`` for replica pids; used by
    ``--chaos-kill-after`` to prove the soak survives a replica death.
    """
    try:
        conn = http.client.HTTPConnection(host, port, timeout=timeout)
        conn.request("GET", "/metrics")
        metrics = json.loads(conn.getresponse().read())
        conn.close()
    except (http.client.HTTPException, OSError, ValueError) as exc:
        print(f"chaos: could not fetch /metrics: {exc}", file=sys.stderr)
        return
    replicas = metrics.get("router", {}).get("replicas", [])
    for replica in replicas:
        pid = replica.get("pid")
        if replica.get("healthy") and isinstance(pid, int):
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError as exc:
                print(f"chaos: kill {pid} failed: {exc}", file=sys.stderr)
                return
            print(f"chaos: SIGKILLed replica {replica.get('name')} (pid {pid})")
            return
    print("chaos: no healthy managed replica to kill", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: soak a service and gate on the report."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen",
        description="Load/soak-test a carbon-query service instance.",
    )
    parser.add_argument(
        "--url",
        default="http://127.0.0.1:8151",
        help="service base URL (default: %(default)s); ignored with --spawn",
    )
    parser.add_argument(
        "--spawn",
        action="store_true",
        help="start a service subprocess on an ephemeral port for the run",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=None,
        metavar="N",
        help="with --spawn: start an N-replica fabric router instead of a "
        "single service",
    )
    parser.add_argument(
        "--mix",
        choices=("default", "churn", "stream"),
        default="default",
        help="traffic deck: 'default' (dashboard-like repetition), 'churn' "
        "(--distinct unique schedule queries cycling through the LRU), or "
        "'stream' (live /stream polls across --distinct stream specs)",
    )
    parser.add_argument(
        "--distinct",
        type=int,
        default=384,
        metavar="K",
        help="working-set size of the churn mix (default: 384); the stream "
        "mix caps it at 16 specs to stay under the service's stream limit",
    )
    parser.add_argument(
        "--chaos-kill-after",
        type=float,
        default=None,
        metavar="SECONDS",
        help="SIGKILL one fabric replica this many seconds into the soak "
        "(requires a router target)",
    )
    parser.add_argument(
        "--clients", type=int, default=4, help="concurrent client threads (default: 4)"
    )
    parser.add_argument(
        "--duration", type=float, default=10.0, help="soak seconds (default: 10)"
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=None,
        metavar="N",
        help="stop each client after N requests (default: duration-bound only)",
    )
    parser.add_argument("--seed", type=int, default=0, help="traffic-mix shuffle seed")
    parser.add_argument(
        "--json", metavar="PATH", default=None, help="also write the report as JSON"
    )
    parser.add_argument(
        "--fail-on-5xx",
        action="store_true",
        help="exit 1 if any request returned a 5xx status",
    )
    parser.add_argument(
        "--max-p99",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit 1 if the client-side p99 latency exceeds this bound",
    )
    args = parser.parse_args(argv)
    if args.clients < 1:
        parser.error(f"--clients must be >= 1, got {args.clients}")
    if args.duration <= 0:
        parser.error(f"--duration must be positive, got {args.duration}")
    if args.replicas is not None and not args.spawn:
        parser.error("--replicas requires --spawn")
    if args.replicas is not None and args.replicas < 1:
        parser.error(f"--replicas must be >= 1, got {args.replicas}")
    if args.distinct < 1:
        parser.error(f"--distinct must be >= 1, got {args.distinct}")

    proc: subprocess.Popen | None = None
    if args.spawn:
        if args.replicas is not None:
            proc, port = spawn_fabric(args.replicas)
        else:
            proc, port = spawn_service()
        host = "127.0.0.1"
    else:
        split = urlsplit(args.url)
        host = split.hostname or "127.0.0.1"
        port = split.port or 8151

    if args.mix == "churn":
        deck = build_churn_mix(args.seed, args.distinct)
    elif args.mix == "stream":
        deck = build_stream_mix(args.seed, min(args.distinct, 16))
    else:
        deck = build_mix(args.seed)
    chaos_timer: threading.Timer | None = None
    if args.chaos_kill_after is not None:
        chaos_timer = threading.Timer(
            args.chaos_kill_after, _chaos_kill_replica, args=(host, port)
        )
        chaos_timer.daemon = True
        chaos_timer.start()
    try:
        report = run_load(
            host,
            port,
            clients=args.clients,
            duration_s=args.duration,
            requests_per_client=args.requests,
            seed=args.seed,
            deck=deck,
        )
    finally:
        if chaos_timer is not None:
            chaos_timer.cancel()
        if proc is not None:
            proc.send_signal(signal.SIGTERM)
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
            if proc.stdout is not None:
                proc.stdout.close()

    print(report.render())
    if args.json:
        with open(args.json, "wb") as handle:
            handle.write(canonical_bytes(report.to_payload()))
        print(f"wrote {args.json}")

    failed = False
    if args.fail_on_5xx and (report.errors_5xx or report.transport_errors):
        print(
            f"FAIL: {report.errors_5xx} 5xx response(s), "
            f"{report.transport_errors} transport error(s)",
            file=sys.stderr,
        )
        failed = True
    p99 = report.latency_s["p99_s"]
    if args.max_p99 is not None and p99 > args.max_p99:
        print(f"FAIL: p99 {p99:.3f}s exceeds bound {args.max_p99}s", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
