"""Synthetic production traces: diurnal serving demand and experiment streams.

Substitutes for the private fleet telemetry behind Figures 3, 8 and 10:

* :func:`diurnal_demand` — hourly inference request rates with the
  day/night swing that makes Auto-Scaling worthwhile (the paper: up to
  25% of web-tier machines freed off-peak);
* :func:`experiment_arrivals` — a Poisson stream of research training
  jobs whose durations come from the lifecycle job models;
* :func:`inference_request_volume` — trillions-per-day demand series
  growing per the Figure 2(d) trend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.memo import memoized_substrate
from repro.errors import UnitError
from repro.lifecycle.jobs import JobDurationModel
from repro.workloads.growthtrends import INFERENCE_DEMAND_GROWTH, GrowthTrend


@memoized_substrate
def diurnal_demand(
    hours: int = 168,
    peak: float = 1.0,
    trough_fraction: float = 0.68,
    peak_hour: int = 20,
    weekend_dip: float = 0.95,
    noise: float = 0.02,
    seed: int = 0,
) -> np.ndarray:
    """Hourly relative demand in (0, peak] with a diurnal sinusoid.

    ``trough_fraction`` is the overnight floor relative to the peak — the
    default gives the "up to 25% of the web tier" off-peak capacity-freeing
    opportunity the paper reports once serving headroom is accounted for.

    Memoized: identical calls share one read-only array.
    """
    if hours <= 0:
        raise UnitError("hours must be positive")
    if not (0 < trough_fraction <= 1):
        raise UnitError("trough fraction must be in (0, 1]")
    if peak <= 0:
        raise UnitError("peak must be positive")
    rng = np.random.default_rng(seed)
    t = np.arange(hours)
    hour_of_day = t % 24
    day_of_week = (t // 24) % 7
    swing = (1.0 + trough_fraction) / 2.0 + (1.0 - trough_fraction) / 2.0 * np.cos(
        (hour_of_day - peak_hour) / 24.0 * 2.0 * np.pi
    )
    weekend = np.where(day_of_week >= 5, weekend_dip, 1.0)
    demand = peak * swing * weekend * (1.0 + rng.normal(0.0, noise, size=hours))
    return np.clip(demand, peak * trough_fraction * 0.5, peak)


@dataclass(frozen=True, slots=True)
class ExperimentStream:
    """A stream of research training jobs arriving over a window."""

    start_hours: np.ndarray
    duration_hours: np.ndarray
    n_gpus: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.start_hours)
        if len(self.duration_hours) != n or len(self.n_gpus) != n:
            raise UnitError("experiment stream arrays must align")

    def __len__(self) -> int:
        return len(self.start_hours)

    @property
    def total_gpu_hours(self) -> float:
        return float(np.sum(self.duration_hours * self.n_gpus))


@memoized_substrate
def experiment_arrivals(
    model: JobDurationModel,
    jobs_per_day: float,
    days: float,
    gpus_choices: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    gpus_weights: tuple[float, ...] = (0.35, 0.22, 0.18, 0.14, 0.08, 0.03),
    seed: int = 0,
) -> ExperimentStream:
    """Poisson arrivals of experiments with lognormal GPU-day durations.

    A job's duration in *GPU-days* is divided by its GPU count to get
    wall-clock hours (perfect scaling is assumed for trace purposes).
    """
    if jobs_per_day < 0 or days <= 0:
        raise UnitError("rates and window must be positive")
    if len(gpus_choices) != len(gpus_weights):
        raise UnitError("GPU choice/weight lengths must match")
    rng = np.random.default_rng(seed)
    n = rng.poisson(jobs_per_day * days)
    start = np.sort(rng.uniform(0.0, days * 24.0, size=n))
    gpu_days = model.sample_gpu_days(n, seed=seed + 1)
    weights = np.asarray(gpus_weights, dtype=float)
    weights = weights / weights.sum()
    n_gpus = rng.choice(np.asarray(gpus_choices), size=n, p=weights)
    duration_hours = gpu_days * 24.0 / n_gpus
    return ExperimentStream(start, duration_hours, n_gpus)


def inference_request_volume(
    years: float = 3.0,
    samples_per_year: int = 12,
    base_daily_trillions: float = 1.0,
    trend: GrowthTrend = INFERENCE_DEMAND_GROWTH,
) -> tuple[np.ndarray, np.ndarray]:
    """(years, trillions of daily inferences) series (Figure 2d inset).

    The paper: "trillions of inferences per day ... more than doubling in
    the past 3 years".
    """
    if years <= 0 or samples_per_year <= 0:
        raise UnitError("window and sampling must be positive")
    t = np.linspace(0.0, years, int(years * samples_per_year) + 1)
    volume = base_daily_trillions * trend.annual_rate**t
    return t, volume
