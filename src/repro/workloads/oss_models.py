"""Published reference footprints for open-source large-scale ML models.

Training energy and emissions from Patterson et al., "Carbon Emissions and
Large Neural Network Training" (2021), which the paper cites as its source
for Figure 4's OSS comparison; BERT-NAS from Strubell et al. (2019).

These are *anchors*: Figure 4 places Facebook's production models relative
to them (fleet-average training footprint = 1.8x Meena and ~1/3 of
GPT-3), and the "parameters do not predict carbon" observation (Switch
Transformer's 1.5T parameters emitting far less than GPT-3's 175B) is a
direct read off this table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quantities import Carbon, Energy


@dataclass(frozen=True, slots=True)
class ReferenceFootprint:
    """One published model-training footprint."""

    name: str
    parameters_billion: float
    training_energy: Energy
    training_carbon: Carbon
    sparse: bool = False

    @property
    def carbon_per_parameter(self) -> float:
        """gCO2e per million parameters — the non-correlation metric."""
        return self.training_carbon.grams / (self.parameters_billion * 1e3)


BERT_NAS = ReferenceFootprint(
    "BERT-NAS", 0.11, Energy.from_mwh(650.0), Carbon.from_tonnes(284.0)
)
T5 = ReferenceFootprint("T5", 11.0, Energy.from_mwh(86.0), Carbon.from_tonnes(46.7))
MEENA = ReferenceFootprint(
    "Meena", 2.6, Energy.from_mwh(232.0), Carbon.from_tonnes(96.4)
)
GSHARD_600B = ReferenceFootprint(
    "GShard-600B", 619.0, Energy.from_mwh(24.0), Carbon.from_tonnes(4.3), sparse=True
)
SWITCH_TRANSFORMER = ReferenceFootprint(
    "Switch Transformer",
    1500.0,
    Energy.from_mwh(179.0),
    Carbon.from_tonnes(59.1),
    sparse=True,
)
GPT3 = ReferenceFootprint(
    "GPT-3", 175.0, Energy.from_mwh(1287.0), Carbon.from_tonnes(552.1)
)

OSS_MODELS: tuple[ReferenceFootprint, ...] = (
    BERT_NAS,
    T5,
    MEENA,
    GSHARD_600B,
    SWITCH_TRANSFORMER,
    GPT3,
)

#: The paper: FB fleet-average training footprint is 1.8x Meena's.
FB_AVG_TRAINING_VS_MEENA = 1.8
#: ... and roughly one third of GPT-3's training footprint.
FB_AVG_TRAINING_VS_GPT3 = 1.0 / 3.0

#: Transformer_Big (Vaswani 2017) training footprints used in Figure 11.
#: Patterson et al.: P100 setup ~8.8 MWh is for the evolved variant; the
#: classic big model on 8xP100 for ~3.5 days lands near 0.66 MWh and
#: ~0.28 tCO2e on the US grid; TPU training is ~4x more energy-efficient.
TRANSFORMER_BIG_P100 = ReferenceFootprint(
    "Transformer_Big (P100)", 0.21, Energy.from_mwh(0.66), Carbon.from_tonnes(0.283)
)
TRANSFORMER_BIG_TPU = ReferenceFootprint(
    "Transformer_Big (TPU)", 0.21, Energy.from_mwh(0.165), Carbon.from_tonnes(0.071)
)


def fb_average_training_target() -> Carbon:
    """Fleet-average FB training footprint implied by the paper's anchors.

    1.8x Meena (173.5 t) and GPT-3/3 (184 t) agree to within ~6%; we use
    the Meena anchor, which the paper states first.
    """
    return Carbon.from_tonnes(MEENA.training_carbon.tonnes * FB_AVG_TRAINING_VS_MEENA)


def parameters_vs_carbon_correlation() -> float:
    """Pearson correlation of parameter count vs training carbon.

    The paper notes operational carbon "does not correlate with the number
    of model parameters"; across the OSS anchors the correlation is weak.
    """
    import numpy as np

    params = np.array([m.parameters_billion for m in OSS_MODELS])
    carbon = np.array([m.training_carbon.tonnes for m in OSS_MODELS])
    return float(np.corrcoef(params, carbon)[0, 1])
