"""LM serving mechanics: deriving Figure 7's first rungs from first
principles instead of anchoring them.

* **Platform-level caching (6.7x)** — "pre-computing and caching
  frequently accessed embeddings ... using DRAM and Flash as caches".
  Translation requests follow a Zipf popularity law; an LRU cache of
  capacity C over N keys has a hit ratio given by Che's approximation,
  and each hit replaces the full encoder computation with a cheap lookup.
  The power gain is ``1 / (1 - h * (1 - r))`` for hit ratio ``h`` and
  lookup/compute cost ratio ``r``.
* **GPU acceleration (10.1x)** — serving tokens on an accelerator whose
  tokens-per-joule is an order of magnitude above a CPU server's.

Both rungs become *outputs* of a model with physical knobs, so the
experiment can show which operating points reproduce the paper's
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np
from scipy import optimize

from repro.energy.devices import CPU_SERVER, DeviceSpec, V100
from repro.errors import CalibrationError, UnitError


@lru_cache(maxsize=8)
def _zipf_probabilities(n_keys: int, exponent: float) -> np.ndarray:
    """Cached Zipf pmf (large catalogs are expensive to rebuild)."""
    ranks = np.arange(1, n_keys + 1, dtype=float)
    weights = ranks**-exponent
    return weights / weights.sum()


# ---------------------------------------------------------------------------
# Zipf popularity + LRU hit ratio (Che's approximation)
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ZipfPopularity:
    """Zipf(s) popularity over a catalog of N keys."""

    n_keys: int
    exponent: float = 1.05

    def __post_init__(self) -> None:
        if self.n_keys <= 0:
            raise UnitError("catalog must be non-empty")
        if self.exponent <= 0:
            raise UnitError("Zipf exponent must be positive")

    def probabilities(self) -> np.ndarray:
        return _zipf_probabilities(self.n_keys, self.exponent)

    def sample(self, n_requests: int, seed: int = 0) -> np.ndarray:
        if n_requests <= 0:
            raise UnitError("request count must be positive")
        rng = np.random.default_rng(seed)
        return rng.choice(self.n_keys, size=n_requests, p=self.probabilities())


def che_hit_ratio(popularity: ZipfPopularity, cache_size: int) -> float:
    """LRU hit ratio under the independent reference model.

    Che's approximation: the characteristic time T solves
    ``sum_i (1 - exp(-p_i * T)) = C``; the hit ratio is then
    ``sum_i p_i * (1 - exp(-p_i * T))``.
    """
    if cache_size <= 0:
        raise UnitError("cache size must be positive")
    if cache_size >= popularity.n_keys:
        return 1.0
    p = popularity.probabilities()

    def occupied(log_t: float) -> float:
        return float(np.sum(1.0 - np.exp(-p * np.exp(log_t)))) - cache_size

    # T is bracketed between 1 request and vastly more than the catalog.
    lo, hi = 0.0, np.log(popularity.n_keys / p.min() * 10.0)
    if occupied(lo) > 0:
        lo = -10.0
    solution = optimize.brentq(occupied, lo, hi)
    t = np.exp(solution)
    return float(np.sum(p * (1.0 - np.exp(-p * t))))


def simulate_lru_hit_ratio(
    popularity: ZipfPopularity, cache_size: int, n_requests: int = 200_000, seed: int = 0
) -> float:
    """Empirical LRU hit ratio (validates Che's approximation in tests)."""
    if cache_size <= 0:
        raise UnitError("cache size must be positive")
    requests = popularity.sample(n_requests, seed)
    from collections import OrderedDict

    cache: OrderedDict[int, None] = OrderedDict()
    hits = 0
    for key in requests:
        key = int(key)
        if key in cache:
            hits += 1
            cache.move_to_end(key)
        else:
            cache[key] = None
            if len(cache) > cache_size:
                cache.popitem(last=False)
    return hits / n_requests


# ---------------------------------------------------------------------------
# The serving power model
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class ServingWorkload:
    """A translation service: catalog, traffic skew, per-request costs."""

    catalog_size: int = 2_000_000
    zipf_exponent: float = 1.05
    compute_joules_per_request: float = 3.0
    lookup_joules_per_request: float = 0.05

    def __post_init__(self) -> None:
        if self.compute_joules_per_request <= 0:
            raise UnitError("compute cost must be positive")
        if not (0 <= self.lookup_joules_per_request < self.compute_joules_per_request):
            raise UnitError("lookup must be cheaper than compute")

    @property
    def cost_ratio(self) -> float:
        return self.lookup_joules_per_request / self.compute_joules_per_request

    def caching_gain(self, cache_fraction: float) -> float:
        """Power-efficiency gain of a cache holding ``cache_fraction`` of
        the catalog (the Figure-7 'platform-level caching' rung)."""
        if not (0 < cache_fraction <= 1):
            raise UnitError("cache fraction must be in (0, 1]")
        popularity = ZipfPopularity(self.catalog_size, self.zipf_exponent)
        cache_size = max(1, int(self.catalog_size * cache_fraction))
        h = che_hit_ratio(popularity, cache_size)
        return 1.0 / (1.0 - h * (1.0 - self.cost_ratio))

    def cache_fraction_for_gain(self, target_gain: float) -> float:
        """Invert: how much of the catalog must be cached for a gain.

        Closed-form through the Che model: the target gain fixes the
        required hit ratio ``h = (1 - 1/g) / (1 - r)``; one root-solve
        finds the characteristic time T with that hit ratio, and the
        cache size is then the direct sum ``sum_i (1 - exp(-p_i T))``.
        Raises if the target exceeds what a full cache can deliver.
        """
        if target_gain <= 1:
            raise CalibrationError("target gain must exceed 1")
        max_gain = 1.0 / self.cost_ratio
        if target_gain >= max_gain:
            raise CalibrationError(
                f"target {target_gain}x exceeds the cache ceiling {max_gain:.1f}x"
            )
        target_h = (1.0 - 1.0 / target_gain) / (1.0 - self.cost_ratio)
        p = ZipfPopularity(self.catalog_size, self.zipf_exponent).probabilities()

        def hit_ratio_gap(log_t: float) -> float:
            return float(np.sum(p * (1.0 - np.exp(-p * np.exp(log_t))))) - target_h

        lo, hi = -5.0, float(np.log(self.catalog_size / p[-1] * 10.0))
        log_t = optimize.brentq(hit_ratio_gap, lo, hi)
        cache_size = float(np.sum(1.0 - np.exp(-p * np.exp(log_t))))
        return min(1.0, cache_size / self.catalog_size)


@dataclass(frozen=True, slots=True)
class AcceleratorServing:
    """Tokens-per-joule comparison of CPU vs accelerator serving."""

    cpu: DeviceSpec = CPU_SERVER
    accelerator: DeviceSpec = V100
    cpu_tokens_per_s: float = 900.0
    accelerator_tokens_per_s: float = 7_000.0
    cpu_serving_power_fraction: float = 0.85
    accelerator_serving_power_fraction: float = 0.88

    def __post_init__(self) -> None:
        if self.cpu_tokens_per_s <= 0 or self.accelerator_tokens_per_s <= 0:
            raise UnitError("throughputs must be positive")
        for name in ("cpu_serving_power_fraction", "accelerator_serving_power_fraction"):
            if not (0 < getattr(self, name) <= 1):
                raise UnitError(f"{name} must be in (0, 1]")

    def cpu_tokens_per_joule(self) -> float:
        watts = self.cpu.tdp_watts * self.cpu_serving_power_fraction
        return self.cpu_tokens_per_s / watts

    def accelerator_tokens_per_joule(self) -> float:
        watts = self.accelerator.tdp_watts * self.accelerator_serving_power_fraction
        return self.accelerator_tokens_per_s / watts

    @property
    def gpu_gain(self) -> float:
        """The Figure-7 'GPU acceleration' rung as a derived quantity."""
        return self.accelerator_tokens_per_joule() / self.cpu_tokens_per_joule()


def derived_ladder_gains(
    workload: ServingWorkload | None = None,
    cache_fraction: float | None = None,
    accel: AcceleratorServing | None = None,
    precision_gain: float = 2.4,
    fused_kernel_gain: float = 5.0,
) -> dict[str, float]:
    """Figure 7's ladder with its first two rungs derived, not anchored.

    The precision and fused-kernel rungs remain published anchors (they
    are microarchitectural measurements); caching and GPU gains come from
    the cache and device models above.  When ``cache_fraction`` is None,
    the cache is sized to the paper's 6.7x operating point, and the
    returned ``cache_fraction`` reports how much of the catalog that
    takes — the deployment-sizing insight the mechanistic model adds.
    """
    workload = workload or ServingWorkload()
    accel = accel or AcceleratorServing()
    if cache_fraction is None:
        cache_fraction = workload.cache_fraction_for_gain(6.7)
    caching = workload.caching_gain(cache_fraction)
    gpu = accel.gpu_gain
    return {
        "caching": caching,
        "gpu": gpu,
        "precision": precision_gain,
        "fused_kernels": fused_kernel_gain,
        "total": caching * gpu * precision_gain * fused_kernel_gain,
        "cache_fraction": cache_fraction,
    }
