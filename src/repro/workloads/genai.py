"""GenAI workloads: LLM-era training and inference-serving footprints.

The paper predates the scaling-law era; this module closes the gap the
ROADMAP names ("Hugging Carbon", the GenAI training-vs-inference stage
split) with two parameterized workload families:

* :class:`LLMTrainingSpec` — params, tokens, MFU, accelerator SKU.
  FLOPs follow the standard ``6 * params * tokens`` accounting
  (:mod:`repro.models.flops`); device-hours follow from the
  accelerator's peak throughput at the achieved MFU; multi-month-run
  realities enter as *analytic* overheads: checkpoint writes
  (``cost / interval``), expected lost work on failures
  (``interval / (2 * MTBF)``), and a failed/abandoned-run surcharge.
  Energy and carbon are priced exclusively through the existing
  :class:`~repro.core.context.AccountingContext` /
  :class:`~repro.core.series.HourlySeries` engine — no private
  ``kWh x intensity`` arithmetic.
* :class:`LLMServingSpec` — an inference fleet serving diurnal QPS
  (the *shared* trace helper :func:`repro.workloads.traces.diurnal_demand`;
  a grep-enforced test keeps the sinusoid confined there), with
  batch-size-dependent throughput, KV-cache memory pressure capping the
  effective batch, and per-token energy.  The fleet view drives
  :func:`repro.fleet.autoscale.autoscale_tier`.

Both spec constructors validate every knob with structured
:class:`~repro.errors.UnitError` messages (finite, sign, range), so the
Hypothesis strategies explore the interior of the valid space and the
service layer can surface precise 400s.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.carbon.embodied import AmortizationPolicy, GPU_SERVER_EMBODIED
from repro.carbon.intensity import US_AVERAGE
from repro.core.context import AccountingContext
from repro.core.quantities import Carbon, Energy
from repro.core.series import HourlySeries
from repro.energy.devices import A100_TENSOR, CPU_SERVER, DeviceSpec
from repro.errors import UnitError
from repro.fleet.autoscale import AutoScaleResult, AutoScalerConfig, autoscale_tier
from repro.fleet.server import ServerSKU
from repro.models.flops import TRAIN_FLOPS_PER_PARAM_TOKEN, device_hours_for_flops
from repro.reliability.checkpoints import young_daly_interval
from repro.workloads.traces import diurnal_demand

__all__ = [
    "LLMTrainingSpec",
    "LLMServingSpec",
    "GenAIFootprint",
    "ServingFleetResult",
    "MODEL_INVENTORY",
    "inventory_spec",
    "default_genai_context",
    "default_serving_spec",
    "kv_cache_gb_per_request",
    "training_footprint",
    "serving_footprint",
    "serving_fleet",
    "serving_sku",
    "lifetime_crossover",
    "LifetimeCrossover",
    "scale_qps",
]


def _finite(name: str, value: float) -> float:
    if not (isinstance(value, (int, float)) and not isinstance(value, bool)):
        raise UnitError(f"{name} must be a number, got {type(value).__name__}")
    if not math.isfinite(value):
        raise UnitError(f"{name} must be finite, got {value!r}")
    return float(value)


def _positive(name: str, value: float) -> float:
    if _finite(name, value) <= 0:
        raise UnitError(f"{name} must be positive, got {value}")
    return float(value)


def _non_negative(name: str, value: float) -> float:
    if _finite(name, value) < 0:
        raise UnitError(f"{name} must be non-negative, got {value}")
    return float(value)


def _unit_open(name: str, value: float) -> float:
    if not (0.0 < _finite(name, value) <= 1.0):
        raise UnitError(f"{name} must be in (0, 1], got {value}")
    return float(value)


# ---------------------------------------------------------------------------
# Training
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LLMTrainingSpec:
    """One LLM pre-training run: scale knobs plus multi-month overheads.

    ``mfu`` is model-FLOPs utilization (achieved / peak throughput); the
    checkpoint knobs describe fixed-interval checkpointing against a
    hardware MTBF; ``failed_run_fraction`` is the surcharge for failed
    and abandoned runs across the training *program* (restarts from
    scratch, bad configs), which real multi-month efforts report on top
    of the converged run.
    """

    name: str
    n_params: float
    n_tokens: float
    mfu: float = 0.40
    accelerator: DeviceSpec = A100_TENSOR
    n_accelerators: int = 1024
    board_power_fraction: float = 0.85
    checkpoint_interval_hours: float = 1.0
    checkpoint_cost_hours: float = 0.05
    mtbf_hours: float = 200.0
    failed_run_fraction: float = 0.10

    def __post_init__(self) -> None:
        if not self.name:
            raise UnitError("training spec name must be non-empty")
        _positive("n_params", self.n_params)
        _positive("n_tokens", self.n_tokens)
        _unit_open("mfu", self.mfu)
        if not isinstance(self.accelerator, DeviceSpec):
            raise UnitError("accelerator must be a DeviceSpec")
        if self.accelerator.peak_tflops <= 0:
            raise UnitError(
                f"accelerator {self.accelerator.name!r} has no peak throughput "
                "recorded; training needs peak_tflops > 0"
            )
        if not isinstance(self.n_accelerators, int) or self.n_accelerators < 1:
            raise UnitError(
                f"n_accelerators must be a positive integer, got {self.n_accelerators!r}"
            )
        _unit_open("board_power_fraction", self.board_power_fraction)
        _positive("checkpoint_interval_hours", self.checkpoint_interval_hours)
        _non_negative("checkpoint_cost_hours", self.checkpoint_cost_hours)
        _positive("mtbf_hours", self.mtbf_hours)
        failed = _non_negative("failed_run_fraction", self.failed_run_fraction)
        if failed > 10.0:
            raise UnitError(
                f"failed_run_fraction must be at most 10 (a 10x program "
                f"surcharge), got {failed}"
            )

    # -- compute ----------------------------------------------------------
    @property
    def total_training_flops(self) -> float:
        """``6 * params * tokens`` — the converged run, before overheads."""
        return TRAIN_FLOPS_PER_PARAM_TOKEN * self.n_params * self.n_tokens

    @property
    def base_accelerator_hours(self) -> float:
        """Device-hours of the converged run at the achieved MFU."""
        return device_hours_for_flops(
            self.total_training_flops, self.accelerator.peak_tflops, self.mfu
        )

    # -- overheads --------------------------------------------------------
    @property
    def checkpoint_write_overhead(self) -> float:
        """Fraction of run time spent writing checkpoints: ``cost / interval``.

        Non-negative, and -> 0 as the interval -> infinity (the
        ``genai-checkpoint-overhead-vanishes`` invariant).
        """
        return self.checkpoint_cost_hours / self.checkpoint_interval_hours

    @property
    def expected_lost_work_fraction(self) -> float:
        """Expected re-done work per useful hour: ``interval / (2 * MTBF)``.

        A failure loses on average half a checkpoint interval; failures
        arrive at rate ``1 / MTBF``.
        """
        return self.checkpoint_interval_hours / (2.0 * self.mtbf_hours)

    @property
    def restart_overhead_fraction(self) -> float:
        """Checkpoint writes plus expected lost work, as a fraction."""
        return self.checkpoint_write_overhead + self.expected_lost_work_fraction

    @property
    def overhead_multiplier(self) -> float:
        """Total compute multiplier over the ideal converged run."""
        return (1.0 + self.restart_overhead_fraction) * (1.0 + self.failed_run_fraction)

    @property
    def accelerator_hours(self) -> float:
        """Device-hours including checkpoint, failure, and failed-run overheads."""
        return self.base_accelerator_hours * self.overhead_multiplier

    @property
    def optimal_checkpoint_interval_hours(self) -> float:
        """The Young/Daly interval for this spec's cost and MTBF."""
        if self.checkpoint_cost_hours == 0:
            return 0.0
        return young_daly_interval(self.mtbf_hours, self.checkpoint_cost_hours)

    # -- time and energy --------------------------------------------------
    @property
    def wall_clock_hours(self) -> float:
        return self.accelerator_hours / self.n_accelerators

    @property
    def wall_clock_days(self) -> float:
        return self.wall_clock_hours / 24.0

    @property
    def board_watts(self) -> float:
        """Average per-accelerator board power while training."""
        return self.accelerator.tdp_watts * self.board_power_fraction

    @property
    def it_energy(self) -> Energy:
        """IT-level (pre-PUE) energy of the whole training program."""
        return Energy(self.accelerator_hours * self.board_watts / 1000.0)

    def it_series(self) -> HourlySeries:
        """The program's IT energy as an hourly series over its wall clock.

        Energy is spread uniformly over ``ceil(wall_clock_hours)`` hours —
        the hourly granularity the accounting engine prices time-varying
        grids at.  Under a static intensity the split is irrelevant (the
        engine integrates it), which is what keeps the training-energy
        invariants exact.
        """
        hours = max(1, math.ceil(self.wall_clock_hours))
        return HourlySeries.constant(self.it_energy.kwh / hours, hours)


# ---------------------------------------------------------------------------
# KV-cache geometry
# ---------------------------------------------------------------------------


def kv_cache_gb_per_request(
    n_params: float,
    context_tokens: float,
    bytes_per_value: float = 2.0,
    aspect_ratio: float = 128.0,
) -> float:
    """KV-cache footprint (GB) of one in-flight request.

    Per token, attention caches keys and values for every layer:
    ``2 * n_layers * d_model * bytes_per_value``.  The architecture is
    recovered from the parameter count through the dense-Transformer
    identity ``n_params ~ 12 * n_layers * d_model^2`` with the width
    aspect ratio ``d_model = aspect_ratio * n_layers`` (GPT-3-era models
    sit near 128), giving ``d_model = (n_params * aspect_ratio / 12)^(1/3)``.
    """
    _positive("n_params", n_params)
    _positive("context_tokens", context_tokens)
    _positive("bytes_per_value", bytes_per_value)
    _positive("aspect_ratio", aspect_ratio)
    d_model = (n_params * aspect_ratio / 12.0) ** (1.0 / 3.0)
    n_layers = d_model / aspect_ratio
    bytes_per_token = 2.0 * n_layers * d_model * bytes_per_value
    return bytes_per_token * context_tokens / 1e9


# ---------------------------------------------------------------------------
# Serving
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LLMServingSpec:
    """An LLM inference-serving deployment against diurnal QPS.

    Throughput per accelerator saturates with batch size
    (``peak_tokens_per_s * b / (b + half_saturation_batch)``); the
    *effective* batch is the requested one capped by what the KV cache
    fits next to the weights in device memory.  Demand is the shared
    diurnal trace (:func:`repro.workloads.traces.diurnal_demand`) scaled
    by ``peak_qps``, so serving energy is linear in QPS — the additivity
    law the invariant registry checks.
    """

    name: str
    n_params: float
    peak_qps: float
    accelerator: DeviceSpec = A100_TENSOR
    tokens_per_request: float = 256.0
    context_tokens: float = 1024.0
    batch_size: int = 16
    bytes_per_param: float = 2.0
    kv_bytes_per_value: float = 2.0
    peak_tokens_per_s: float = 4000.0
    half_saturation_batch: float = 8.0
    board_power_fraction: float = 0.85
    hours: int = 168
    trough_fraction: float = 0.68
    demand_seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise UnitError("serving spec name must be non-empty")
        _positive("n_params", self.n_params)
        _positive("peak_qps", self.peak_qps)
        if not isinstance(self.accelerator, DeviceSpec):
            raise UnitError("accelerator must be a DeviceSpec")
        if self.accelerator.memory_gb <= 0:
            raise UnitError(
                f"accelerator {self.accelerator.name!r} has no memory capacity "
                "recorded; serving needs memory_gb > 0"
            )
        _positive("tokens_per_request", self.tokens_per_request)
        _positive("context_tokens", self.context_tokens)
        if not isinstance(self.batch_size, int) or self.batch_size < 1:
            raise UnitError(
                f"batch_size must be a positive integer, got {self.batch_size!r}"
            )
        _positive("bytes_per_param", self.bytes_per_param)
        _positive("kv_bytes_per_value", self.kv_bytes_per_value)
        _positive("peak_tokens_per_s", self.peak_tokens_per_s)
        _positive("half_saturation_batch", self.half_saturation_batch)
        _unit_open("board_power_fraction", self.board_power_fraction)
        if not isinstance(self.hours, int) or self.hours < 1:
            raise UnitError(f"hours must be a positive integer, got {self.hours!r}")
        _unit_open("trough_fraction", self.trough_fraction)
        if self.weights_gb >= self.accelerator.memory_gb:
            raise UnitError(
                f"model weights ({self.weights_gb:.1f} GB) do not fit in "
                f"{self.accelerator.name!r} memory ({self.accelerator.memory_gb:.0f} GB)"
            )
        if self.kv_capped_batch < 1:
            raise UnitError(
                f"KV cache for one {self.context_tokens:.0f}-token request "
                f"({self.kv_gb_per_request:.1f} GB) does not fit beside the "
                f"weights ({self.weights_gb:.1f} GB) in "
                f"{self.accelerator.memory_gb:.0f} GB of device memory"
            )

    # -- memory pressure --------------------------------------------------
    @property
    def weights_gb(self) -> float:
        return self.n_params * self.bytes_per_param / 1e9

    @property
    def kv_gb_per_request(self) -> float:
        return kv_cache_gb_per_request(
            self.n_params, self.context_tokens, self.kv_bytes_per_value
        )

    @property
    def kv_capped_batch(self) -> int:
        """Largest batch whose KV cache fits beside the weights."""
        free_gb = self.accelerator.memory_gb - self.weights_gb
        return int(free_gb / self.kv_gb_per_request)

    @property
    def effective_batch(self) -> int:
        """The requested batch, capped by KV-cache memory pressure."""
        return min(self.batch_size, self.kv_capped_batch)

    # -- throughput and energy --------------------------------------------
    def device_tokens_per_s(self, batch: int | None = None) -> float:
        """Decode throughput of one accelerator at a batch size."""
        b = float(self.effective_batch if batch is None else batch)
        if b < 1:
            raise UnitError(f"batch must be at least 1, got {b}")
        return self.peak_tokens_per_s * b / (b + self.half_saturation_batch)

    @property
    def board_watts(self) -> float:
        return self.accelerator.tdp_watts * self.board_power_fraction

    @property
    def joules_per_token(self) -> float:
        """Serving energy per generated token at the effective batch."""
        return self.board_watts / self.device_tokens_per_s()

    @property
    def accelerators_at_peak(self) -> int:
        """Accelerators needed to sustain peak-hour token throughput."""
        peak_tokens_per_s = self.peak_qps * self.tokens_per_request
        return max(1, math.ceil(peak_tokens_per_s / self.device_tokens_per_s()))

    # -- demand -----------------------------------------------------------
    def demand_trace(self) -> np.ndarray:
        """Relative hourly demand in (0, 1] — the one shared diurnal shape."""
        return diurnal_demand(
            hours=self.hours,
            peak=1.0,
            trough_fraction=self.trough_fraction,
            seed=self.demand_seed,
        )

    def tokens_per_hour(self) -> np.ndarray:
        """Generated tokens per hour under the diurnal QPS trace."""
        return self.demand_trace() * (self.peak_qps * self.tokens_per_request * 3600.0)

    @property
    def total_tokens(self) -> float:
        return float(np.sum(self.tokens_per_hour()))

    @property
    def busy_device_hours(self) -> float:
        """Fully-busy-equivalent accelerator hours over the window."""
        return self.total_tokens / self.device_tokens_per_s() / 3600.0

    def it_series(self) -> HourlySeries:
        """Hourly IT kWh of token generation (linear in QPS)."""
        joules = self.tokens_per_hour() * self.joules_per_token
        return HourlySeries(joules / 3.6e6)


# ---------------------------------------------------------------------------
# Footprints through the accounting engine
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GenAIFootprint:
    """Operational + embodied carbon of one genai workload window."""

    it_energy: Energy
    facility_energy: Energy
    operational: Carbon
    embodied: Carbon

    @property
    def total(self) -> Carbon:
        return Carbon(self.operational.kg + self.embodied.kg)

    @property
    def embodied_share(self) -> float:
        total = self.total.kg
        return self.embodied.kg / total if total else 0.0

    @property
    def operational_share(self) -> float:
        total = self.total.kg
        return self.operational.kg / total if total else 0.0


def default_genai_context(
    intensity=US_AVERAGE,
    pue: float = 1.1,
    lifetime_years: float = 4.0,
    average_utilization: float = 0.45,
    devices_per_server: float = 8.0,
) -> AccountingContext:
    """The canonical accounting assumptions for the genai experiments.

    8 accelerators per chassis (the paper's training SKU), the paper's
    3-5-year lifetime midpoint and 30-60% utilization midpoint, and a
    hyperscale PUE.
    """
    return AccountingContext(
        intensity=intensity,
        pue=pue,
        amortization=AmortizationPolicy(
            lifetime_years=lifetime_years,
            average_utilization=average_utilization,
            devices_per_server=devices_per_server,
        ),
    )


def _embodied_for_device_hours(device_hours: float, context: AccountingContext) -> Carbon:
    """Embodied carbon of accelerator busy-hours under the context policy."""
    server_hours = device_hours / context.amortization.devices_per_server
    return context.amortized_embodied(GPU_SERVER_EMBODIED, server_hours)


def training_footprint(
    spec: LLMTrainingSpec, context: AccountingContext | None = None
) -> GenAIFootprint:
    """Full footprint of one training program, overheads included.

    Operational carbon prices the program's hourly IT series through the
    context (grid or static intensity, PUE applied); embodied carbon
    amortizes server manufacturing over the accelerator busy-hours.
    """
    context = context or default_genai_context()
    it_series = spec.it_series()
    return GenAIFootprint(
        it_energy=spec.it_energy,
        facility_energy=context.facility_energy(spec.it_energy),
        operational=context.operational(it_series),
        embodied=_embodied_for_device_hours(spec.accelerator_hours, context),
    )


def serving_footprint(
    spec: LLMServingSpec, context: AccountingContext | None = None
) -> GenAIFootprint:
    """Footprint of one serving window (``spec.hours``) of diurnal traffic."""
    context = context or default_genai_context()
    it_series = spec.it_series()
    it_energy = it_series.integrate()
    return GenAIFootprint(
        it_energy=it_energy,
        facility_energy=context.facility_energy(it_energy),
        operational=context.operational(it_series),
        embodied=_embodied_for_device_hours(spec.busy_device_hours, context),
    )


# ---------------------------------------------------------------------------
# The serving fleet: autoscaling + fleet embodied share
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ServingFleetResult:
    """An autoscaled genai serving tier over one demand window."""

    spec: LLMServingSpec
    sku: ServerSKU
    tier_servers: int
    autoscale: AutoScaleResult
    operational: Carbon
    embodied: Carbon

    @property
    def total(self) -> Carbon:
        return Carbon(self.operational.kg + self.embodied.kg)

    @property
    def embodied_share(self) -> float:
        total = self.total.kg
        return self.embodied.kg / total if total else 0.0


def serving_sku(spec: LLMServingSpec, accelerators_per_server: int = 8) -> ServerSKU:
    """The server SKU backing a genai serving tier."""
    if accelerators_per_server < 1:
        raise UnitError(
            f"accelerators_per_server must be at least 1, got {accelerators_per_server}"
        )
    return ServerSKU(
        "genai-serving", CPU_SERVER, spec.accelerator,
        accelerators_per_server, GPU_SERVER_EMBODIED,
    )


def serving_fleet(
    spec: LLMServingSpec,
    context: AccountingContext | None = None,
    config: AutoScalerConfig | None = None,
    accelerators_per_server: int = 8,
) -> ServingFleetResult:
    """Autoscale a serving tier sized for the spec's peak QPS.

    The tier is provisioned so peak demand is covered at the autoscaler's
    target utilization; off-peak, powered-down servers fall out of the
    operational bill, while the *fleet's* embodied carbon keeps accruing
    calendar-time amortization for every server owned — which is exactly
    why the embodied share of an over-provisioned accelerator fleet grows
    (the paper's Figure 9 argument at fleet scale).
    """
    context = context or default_genai_context()
    tier_servers = max(
        1, math.ceil(spec.accelerators_at_peak / accelerators_per_server)
    )
    sku = serving_sku(spec, accelerators_per_server)
    result = autoscale_tier(spec.demand_trace(), tier_servers, sku, config)
    assert result.autoscaled_watts is not None
    operational = context.operational(
        HourlySeries.from_power_watts(result.autoscaled_watts)
    )
    # Owned servers amortize manufacturing over calendar time, powered or
    # not: embodied(window) = manufacturing * infra * servers * window/lifetime.
    policy = context.amortization
    window_fraction = spec.hours / policy.lifetime_hours
    embodied = Carbon(
        sku.embodied.kg
        * policy.infrastructure_factor
        * tier_servers
        * window_fraction
    )
    return ServingFleetResult(
        spec=spec,
        sku=sku,
        tier_servers=tier_servers,
        autoscale=result,
        operational=operational,
        embodied=embodied,
    )


# ---------------------------------------------------------------------------
# Training vs inference: the lifetime crossover
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LifetimeCrossover:
    """When cumulative inference carbon overtakes the one-time training cost."""

    training_total_kg: float
    serving_kg_per_day: float

    @property
    def crossover_days(self) -> float:
        """Days of serving after which inference matches training."""
        if self.serving_kg_per_day == 0:
            return math.inf
        return self.training_total_kg / self.serving_kg_per_day

    def inference_share_after(self, days: float) -> float:
        """Inference share of the cumulative footprint after ``days``."""
        if days < 0:
            raise UnitError(f"days must be non-negative, got {days}")
        inference = self.serving_kg_per_day * days
        total = inference + self.training_total_kg
        return inference / total if total else 0.0


def lifetime_crossover(
    training: LLMTrainingSpec,
    serving: LLMServingSpec,
    context: AccountingContext | None = None,
) -> LifetimeCrossover:
    """Training-vs-inference crossover under one accounting context.

    Serving carbon is linear in QPS (the additivity invariant), so
    doubling lifetime QPS halves the crossover — the metamorphic law the
    invariant registry pins.
    """
    context = context or default_genai_context()
    train = training_footprint(training, context)
    serve = serving_footprint(serving, context)
    per_day = serve.total.kg * (24.0 / serving.hours)
    return LifetimeCrossover(
        training_total_kg=train.total.kg, serving_kg_per_day=per_day
    )


# ---------------------------------------------------------------------------
# The model inventory
# ---------------------------------------------------------------------------

#: A compute-ladder of LLM families: Chinchilla-proportioned small/mid/large
#: models plus a GPT-3-era under-trained giant for contrast.  Token budgets
#: are ~20 tokens/param except the giant (300B tokens at 175B params).
MODEL_INVENTORY: tuple[LLMTrainingSpec, ...] = (
    LLMTrainingSpec("llm-1b", n_params=1.3e9, n_tokens=2.6e10, n_accelerators=128),
    LLMTrainingSpec("llm-7b", n_params=7.0e9, n_tokens=1.4e11, n_accelerators=512),
    LLMTrainingSpec("llm-70b", n_params=7.0e10, n_tokens=1.4e12, n_accelerators=2048),
    LLMTrainingSpec(
        "llm-175b", n_params=1.75e11, n_tokens=3.0e11, n_accelerators=4096, mfu=0.30
    ),
)

_INVENTORY_BY_NAME = {spec.name: spec for spec in MODEL_INVENTORY}


def inventory_spec(name: str) -> LLMTrainingSpec:
    """Look up a model-inventory training spec by family name."""
    try:
        return _INVENTORY_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_INVENTORY_BY_NAME))
        raise UnitError(f"unknown model family {name!r}; known: {known}") from None


def default_serving_spec(
    n_params: float = 7.0e9, peak_qps: float = 100.0, **overrides
) -> LLMServingSpec:
    """A serving deployment for an inventory-scale model."""
    kwargs = {
        "name": "llm-serving",
        "n_params": n_params,
        "peak_qps": peak_qps,
    }
    kwargs.update(overrides)
    return LLMServingSpec(**kwargs)


def scale_qps(spec: LLMServingSpec, factor: float) -> LLMServingSpec:
    """The same deployment at ``factor`` x the peak QPS."""
    _positive("factor", factor)
    return replace(spec, peak_qps=spec.peak_qps * factor)
