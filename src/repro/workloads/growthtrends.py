"""Growth trend models for Figure 2 and the Key Takeaways.

The paper quantifies, for 2019-2021 (and 18 months for capacity):

* recommendation training data grew **2.4x** (use case A) and **1.9x**
  (use case B), driving a **3.2x** increase in ingestion bandwidth;
* recommendation model sizes grew **20x**;
* AI training capacity grew **2.9x** and inference capacity **2.5x** over
  1.5 years, with trillions of daily inferences more than doubling in 3
  years;
* accelerator memory grew **<2x per 2 years** (V100 32 GB 2018 -> A100
  80 GB 2021) — the resource gap motivating system innovation.

Growth is modeled as exponential between two observations, exposing the
implied annual rate and interpolated series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class GrowthTrend:
    """Exponential growth fitted to (value=1 at t=0, value=factor at t=span)."""

    name: str
    factor: float
    span_years: float

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise UnitError(f"growth factor must be positive, got {self.factor}")
        if self.span_years <= 0:
            raise UnitError(f"span must be positive, got {self.span_years}")

    @property
    def annual_rate(self) -> float:
        """Implied multiplicative growth per year."""
        return float(self.factor ** (1.0 / self.span_years))

    def value_at(self, years: float) -> float:
        """Relative value ``years`` after the baseline observation."""
        return float(self.annual_rate**years)

    def values_at(self, years: np.ndarray) -> np.ndarray:
        """:meth:`value_at` over an array of year offsets.

        Deliberately evaluates scalar ``rate ** year`` per element rather
        than array ``rate ** years``: numpy's SIMD pow kernel rounds
        differently from its scalar path by 1 ULP for some inputs
        (observed at ``1.378404875209022 ** 2.0``), which would break
        bit-exactness with :meth:`value_at` and the golden baselines.
        """
        rate = self.annual_rate
        return np.array([rate**y for y in np.asarray(years, dtype=float).tolist()])

    def series(self, n_points: int = 25) -> tuple[np.ndarray, np.ndarray]:
        """(years, relative value) sampled across the observation span."""
        if n_points < 2:
            raise UnitError("need at least two points")
        t = np.linspace(0.0, self.span_years, n_points)
        return t, self.annual_rate**t

    def doubling_time_years(self) -> float:
        """Years to double at the implied rate (inf if not growing)."""
        rate = self.annual_rate
        if rate <= 1.0:
            return float("inf")
        return float(np.log(2.0) / np.log(rate))


# -- Figure 2(b): data growth ------------------------------------------------
DATA_GROWTH_RM_A = GrowthTrend("recsys data (use case A)", 2.4, 2.0)
DATA_GROWTH_RM_B = GrowthTrend("recsys data (use case B)", 1.9, 2.0)
INGESTION_BANDWIDTH_GROWTH = GrowthTrend("data ingestion bandwidth", 3.2, 2.0)

# -- Figure 2(c): model growth ------------------------------------------------
MODEL_SIZE_GROWTH = GrowthTrend("recsys model size", 20.0, 2.0)

# -- Figure 2(d): infrastructure growth ---------------------------------------
TRAINING_CAPACITY_GROWTH = GrowthTrend("AI training capacity", 2.9, 1.5)
INFERENCE_CAPACITY_GROWTH = GrowthTrend("AI inference capacity", 2.5, 1.5)
INFERENCE_DEMAND_GROWTH = GrowthTrend("daily inference count", 2.0, 3.0)

# -- hardware counter-trend ----------------------------------------------------
ACCELERATOR_MEMORY_GROWTH = GrowthTrend("accelerator memory (V100->A100)", 80.0 / 32.0, 3.0)

ALL_TRENDS: tuple[GrowthTrend, ...] = (
    DATA_GROWTH_RM_A,
    DATA_GROWTH_RM_B,
    INGESTION_BANDWIDTH_GROWTH,
    MODEL_SIZE_GROWTH,
    TRAINING_CAPACITY_GROWTH,
    INFERENCE_CAPACITY_GROWTH,
    INFERENCE_DEMAND_GROWTH,
    ACCELERATOR_MEMORY_GROWTH,
)


def scaling_gap(model_trend: GrowthTrend, hardware_trend: GrowthTrend, years: float) -> float:
    """How much faster demand grows than hardware supply over ``years``.

    ``scaling_gap(MODEL_SIZE_GROWTH, ACCELERATOR_MEMORY_GROWTH, 2.0)`` is
    the paper's "resource requirements for strong AI scaling clearly
    outpace system hardware" claim as a single number (>1 = gap widening).
    """
    if years <= 0:
        raise UnitError("years must be positive")
    return model_trend.value_at(years) / hardware_trend.value_at(years)
