"""Synthetic arXiv publication-growth model (Figure 1).

Figure 1 plots, per scientific category, the cumulative number of arXiv
articles by month, showing machine learning's curve overtaking the other
disciplines.  The real figure is built from the public arXiv metadata
dump; offline we synthesize monthly submission counts per category from
two-parameter exponential models (base monthly volume + monthly growth
rate).  ML's rate is set to its well-documented ~2-year doubling; mature
fields grow slowly from larger bases, so the *crossing* behaviour is
reproduced structurally, not hard-coded.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class CategoryGrowthModel:
    """Monthly submissions: base * (1 + monthly_rate)^t, with noise."""

    name: str
    base_monthly: float
    monthly_rate: float

    def __post_init__(self) -> None:
        if self.base_monthly <= 0:
            raise UnitError("base monthly volume must be positive")
        if self.monthly_rate < 0:
            raise UnitError("monthly growth rate must be non-negative")

    def monthly_counts(self, months: int, seed: int = 0, noise: float = 0.08) -> np.ndarray:
        """Synthetic monthly submission counts."""
        if months <= 0:
            raise UnitError("months must be positive")
        # crc32, not hash(): str hashing is randomized per process
        # (PYTHONHASHSEED), which silently broke run-to-run reproducibility.
        rng = np.random.default_rng(seed ^ zlib.crc32(self.name.encode()) & 0xFFFF)
        t = np.arange(months)
        expected = self.base_monthly * (1.0 + self.monthly_rate) ** t
        jitter = rng.normal(1.0, noise, size=months)
        return np.maximum(0.0, expected * jitter)

    def cumulative_counts(self, months: int, seed: int = 0) -> np.ndarray:
        return np.cumsum(self.monthly_counts(months, seed))


#: Machine learning doubles roughly every 24 months (~2.93%/month).
MACHINE_LEARNING = CategoryGrowthModel("machine learning", 220.0, 0.0293)
#: Established disciplines: larger bases, modest growth.
CONDENSED_MATTER = CategoryGrowthModel("condensed matter", 1350.0, 0.0030)
ASTROPHYSICS = CategoryGrowthModel("astrophysics", 1250.0, 0.0028)
HIGH_ENERGY_PHYSICS = CategoryGrowthModel("high energy physics", 1400.0, 0.0018)
MATHEMATICS = CategoryGrowthModel("mathematics", 2000.0, 0.0042)
QUANTITATIVE_BIOLOGY = CategoryGrowthModel("quantitative biology", 180.0, 0.0058)
ECONOMICS = CategoryGrowthModel("economics", 60.0, 0.0125)
STATISTICS = CategoryGrowthModel("statistics", 260.0, 0.0150)

DEFAULT_CATEGORIES: tuple[CategoryGrowthModel, ...] = (
    MACHINE_LEARNING,
    CONDENSED_MATTER,
    ASTROPHYSICS,
    HIGH_ENERGY_PHYSICS,
    MATHEMATICS,
    QUANTITATIVE_BIOLOGY,
    ECONOMICS,
    STATISTICS,
)


def cumulative_by_category(
    months: int = 144, categories: tuple[CategoryGrowthModel, ...] = DEFAULT_CATEGORIES, seed: int = 0
) -> dict[str, np.ndarray]:
    """Cumulative article counts per category over ``months`` months."""
    return {c.name: c.cumulative_counts(months, seed) for c in categories}


def ml_overtakes_at_month(
    months: int = 144, categories: tuple[CategoryGrowthModel, ...] = DEFAULT_CATEGORIES, seed: int = 0
) -> dict[str, int | None]:
    """Month index at which ML's cumulative count passes each category.

    ``None`` means ML has not overtaken that category within the window.
    This is the quantitative statement behind Figure 1's visual.
    """
    curves = cumulative_by_category(months, categories, seed)
    ml = curves["machine learning"]
    result: dict[str, int | None] = {}
    for name, series in curves.items():
        if name == "machine learning":
            continue
        ahead = np.nonzero(ml > series)[0]
        # Require ML to *stay* ahead through the end of the window.
        crossing: int | None = None
        for idx in ahead:
            if np.all(ml[idx:] > series[idx:]):
                crossing = int(idx)
                break
        result[name] = crossing
    return result
