"""Facebook production ML task models: LM and RM1-RM5 (Figure 4).

The paper reports *relative* facts about these six tasks:

* the six account for the vast majority of inference compute at FB;
* the fleet-average training-side footprint is 1.8x Meena (~173.5 tCO2e)
  and roughly 1/3 of GPT-3's;
* for RM1-RM5 the training : inference carbon split is roughly 50 : 50;
* for LM, inference dominates: 65% inference vs 35% training;
* operational training carbon is split across offline training
  (experimentation + historical-data training), online training
  (recommendation models only), and inference.

Absolute per-model numbers are private, so this module *calibrates*
per-phase device-hours against the analyzer's own energy/carbon constants
to satisfy every stated relation exactly.  The calibrated tasks then flow
through the same accounting code paths a user would apply to real
telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analyzer import FootprintAnalyzer, PhaseWorkload, TaskDescription
from repro.core.footprint import Phase
from repro.core.quantities import Carbon
from repro.errors import CalibrationError
from repro.workloads.oss_models import fb_average_training_target


@dataclass(frozen=True, slots=True)
class ProductionTaskProfile:
    """Relative sizing of one production task.

    ``training_weight`` scales the task's training-side footprint relative
    to the fleet average (weights average to 1 across the six tasks);
    ``inference_fraction`` is inference's share of operational carbon.
    """

    name: str
    training_weight: float
    inference_fraction: float
    online_share_of_training: float
    experimentation_share_of_training: float = 0.15

    def __post_init__(self) -> None:
        if self.training_weight <= 0:
            raise CalibrationError("training weight must be positive")
        if not (0 <= self.inference_fraction < 1):
            raise CalibrationError("inference fraction must be in [0, 1)")
        shares = self.online_share_of_training + self.experimentation_share_of_training
        if not (0 <= shares < 1):
            raise CalibrationError("training sub-shares must leave room for offline")


#: The six tasks.  Weights are chosen to span the spread Figure 4 shows
#: while averaging to exactly 1.0; RMs split ~50/50 with inference, LM 35/65.
PRODUCTION_PROFILES: tuple[ProductionTaskProfile, ...] = (
    ProductionTaskProfile("LM", 0.70, 0.65, 0.0, 0.20),
    ProductionTaskProfile("RM1", 0.78, 0.50, 0.30),
    ProductionTaskProfile("RM2", 0.92, 0.50, 0.30),
    ProductionTaskProfile("RM3", 1.07, 0.50, 0.30),
    ProductionTaskProfile("RM4", 1.26, 0.50, 0.30),
    ProductionTaskProfile("RM5", 1.27, 0.50, 0.30),
)


def _carbon_per_device_hour(
    analyzer: FootprintAnalyzer, utilization: float
) -> float:
    """Operational kgCO2e of one device-hour, location-based.

    Calibration is always against location-based intensity because the
    paper's stated relations (1.8x Meena etc.) are location-based; the
    caller may still *analyze* the returned tasks market-based.
    """
    from repro.carbon.intensity import AccountingMethod

    probe = TaskDescription(
        name="probe",
        workloads=(PhaseWorkload(Phase.OFFLINE_TRAINING, 1.0, utilization),),
    )
    located = analyzer.with_accounting(AccountingMethod.LOCATION_BASED)
    return located.operational_footprint(probe).carbon.kg


def production_tasks(
    analyzer: FootprintAnalyzer | None = None,
    average_training_carbon: Carbon | None = None,
    training_utilization: float = 0.60,
    inference_utilization: float = 0.55,
) -> list[TaskDescription]:
    """The six calibrated production tasks.

    Device-hours per phase are solved so that, when analyzed by
    ``analyzer`` (location-based accounting), each task's operational
    carbon satisfies the paper's stated relations.
    """
    analyzer = analyzer or FootprintAnalyzer()
    target_avg = (average_training_carbon or fb_average_training_target()).kg

    kg_per_hour_train = _carbon_per_device_hour(analyzer, training_utilization)
    kg_per_hour_inf = _carbon_per_device_hour(analyzer, inference_utilization)
    if kg_per_hour_train <= 0 or kg_per_hour_inf <= 0:
        raise CalibrationError(
            "analyzer yields zero operational carbon per device-hour; "
            "calibrate with location-based accounting"
        )

    tasks = []
    for profile in PRODUCTION_PROFILES:
        training_kg = target_avg * profile.training_weight
        inference_kg = training_kg * profile.inference_fraction / (
            1.0 - profile.inference_fraction
        )

        exp_kg = training_kg * profile.experimentation_share_of_training
        online_kg = training_kg * profile.online_share_of_training
        offline_kg = training_kg - exp_kg - online_kg

        workloads = [
            PhaseWorkload(
                Phase.EXPERIMENTATION, exp_kg / kg_per_hour_train, training_utilization
            ),
            PhaseWorkload(
                Phase.OFFLINE_TRAINING,
                offline_kg / kg_per_hour_train,
                training_utilization,
            ),
        ]
        if online_kg > 0:
            workloads.append(
                PhaseWorkload(
                    Phase.ONLINE_TRAINING,
                    online_kg / kg_per_hour_train,
                    training_utilization,
                )
            )
        workloads.append(
            PhaseWorkload(
                Phase.INFERENCE, inference_kg / kg_per_hour_inf, inference_utilization
            )
        )
        tasks.append(
            TaskDescription(
                name=profile.name, device=tasks_device(), workloads=tuple(workloads)
            )
        )
    return tasks


def tasks_device():
    """Device used for the calibrated production tasks (V100 fleet)."""
    from repro.energy.devices import V100

    return V100
