"""ML development life cycle: job models, cadence, data pipeline, end-to-end."""

from repro.lifecycle.cadence import (
    Cadence,
    RECOMMENDATION_CADENCE,
    RetrainingPolicy,
    SEARCH_CADENCE,
    TRANSLATION_CADENCE,
)
from repro.lifecycle.datapipeline import DataPipelineSpec
from repro.lifecycle.ingestion_sim import (
    DisaggregationDerived,
    IngestionPipelineSpec,
    PipelineSimResult,
    derive_disaggregation_gain,
    simulate_pipeline,
    workers_to_saturate,
)
from repro.lifecycle.jobs import (
    EXPERIMENTATION_JOBS,
    JobDurationModel,
    PRODUCTION_TRAINING_JOBS,
    TRILLION_PARAM_THRESHOLD_GPU_DAYS,
    expected_cluster_gpu_days,
)
from repro.lifecycle.pipeline import FleetCapacitySplit, PipelineSpec

__all__ = [
    "Cadence",
    "DataPipelineSpec",
    "DisaggregationDerived",
    "EXPERIMENTATION_JOBS",
    "IngestionPipelineSpec",
    "PipelineSimResult",
    "derive_disaggregation_gain",
    "simulate_pipeline",
    "workers_to_saturate",
    "FleetCapacitySplit",
    "JobDurationModel",
    "PRODUCTION_TRAINING_JOBS",
    "PipelineSpec",
    "RECOMMENDATION_CADENCE",
    "RetrainingPolicy",
    "SEARCH_CADENCE",
    "TRANSLATION_CADENCE",
    "TRILLION_PARAM_THRESHOLD_GPU_DAYS",
    "expected_cluster_gpu_days",
]
