"""A mechanistic data-ingestion pipeline simulator (Appendix B, [44]).

The anchored disaggregation number (+56% training throughput) comes from
Zhao et al.'s production study; this simulator *derives* that class of
result from pipeline mechanics:

``storage read -> transform workers -> bounded batch queue -> trainer``

Co-located deployments steal transform CPU from the trainer host, so the
queue runs dry and accelerators stall; disaggregated deployments scale
transform workers independently until the trainer is the bottleneck.
The simulator is a discrete-time queue model (per-second steps) exposing
throughput, stall fraction, and the worker count needed to saturate a
trainer — the sizing question a capacity planner actually asks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError, UnitError


@dataclass(frozen=True, slots=True)
class IngestionPipelineSpec:
    """Rates of the three pipeline stages, in batches per second."""

    storage_read_rate: float = 400.0
    transform_rate_per_worker: float = 12.5
    trainer_consume_rate: float = 100.0
    queue_capacity_batches: int = 64
    #: Transform workers a co-located deployment can host without
    #: degrading the trainer (spare host cores).
    colocated_worker_limit: int = 5

    def __post_init__(self) -> None:
        if min(
            self.storage_read_rate,
            self.transform_rate_per_worker,
            self.trainer_consume_rate,
        ) <= 0:
            raise UnitError("stage rates must be positive")
        if self.queue_capacity_batches <= 0 or self.colocated_worker_limit <= 0:
            raise UnitError("queue and worker limits must be positive")


@dataclass(frozen=True, slots=True)
class PipelineSimResult:
    """Steady-state behaviour of one pipeline configuration."""

    n_workers: int
    throughput_batches_per_s: float
    trainer_stall_fraction: float
    mean_queue_depth: float

    @property
    def trainer_utilization(self) -> float:
        return 1.0 - self.trainer_stall_fraction


def simulate_pipeline(
    spec: IngestionPipelineSpec,
    n_workers: int,
    duration_s: int = 600,
    jitter: float = 0.25,
    seed: int = 0,
) -> PipelineSimResult:
    """Per-second queue simulation of the pipeline at ``n_workers``.

    Transform output per second is noisy (lognormal ``jitter``); the
    trainer consumes from the bounded queue and stalls when it is empty.
    """
    if n_workers <= 0 or duration_s <= 0:
        raise UnitError("workers and duration must be positive")
    if jitter < 0:
        raise UnitError("jitter must be non-negative")
    rng = np.random.default_rng(seed)

    supply_rate = min(
        spec.storage_read_rate, n_workers * spec.transform_rate_per_worker
    )
    # Batch the per-second jitter draws (one RNG call instead of one per
    # step — the stream is identical); only the queue recursion itself is
    # inherently sequential.
    if jitter:
        produced = supply_rate * rng.lognormal(0.0, jitter, size=duration_s)
    else:
        produced = np.full(duration_s, supply_rate)
    takes = np.empty(duration_s)
    depths = np.empty(duration_s)
    queue = 0.0
    for second in range(duration_s):
        # Fresh batches flow straight through; only the *surplus* is
        # buffered (and capped) — the queue bounds backlog, not flow.
        available = queue + produced[second]
        take = min(available, spec.trainer_consume_rate)
        queue = min(spec.queue_capacity_batches, available - take)
        takes[second] = take
        depths[second] = queue
    shortfall = 1.0 - takes / spec.trainer_consume_rate
    stalled_seconds = float(
        np.sum(shortfall[takes < spec.trainer_consume_rate - 1e-9])
    )
    return PipelineSimResult(
        n_workers=n_workers,
        throughput_batches_per_s=float(np.sum(takes)) / duration_s,
        trainer_stall_fraction=stalled_seconds / duration_s,
        mean_queue_depth=float(np.sum(depths)) / duration_s,
    )


def workers_to_saturate(
    spec: IngestionPipelineSpec,
    target_utilization: float = 0.99,
    max_workers: int = 64,
    seed: int = 0,
) -> int:
    """Smallest worker count keeping the trainer above ``target_utilization``."""
    if not (0 < target_utilization <= 1):
        raise UnitError("target utilization must be in (0, 1]")
    for n in range(1, max_workers + 1):
        result = simulate_pipeline(spec, n, seed=seed)
        if result.trainer_utilization >= target_utilization:
            return n
    raise SimulationError(
        f"{max_workers} workers cannot reach {target_utilization:.0%} "
        "trainer utilization; raise storage or transform rates"
    )


@dataclass(frozen=True, slots=True)
class DisaggregationDerived:
    """Co-located vs disaggregated throughput, derived from the queues."""

    colocated: PipelineSimResult
    disaggregated: PipelineSimResult

    @property
    def throughput_gain(self) -> float:
        return (
            self.disaggregated.throughput_batches_per_s
            / self.colocated.throughput_batches_per_s
            - 1.0
        )


def derive_disaggregation_gain(
    spec: IngestionPipelineSpec | None = None, seed: int = 0
) -> DisaggregationDerived:
    """Run both deployments of the same pipeline.

    Co-located: capped at the host's spare cores (under-provisioned
    transforms starve the trainer).  Disaggregated: workers scaled until
    the trainer saturates.  With the default spec the derived gain lands
    near the paper's +56%.
    """
    spec = spec or IngestionPipelineSpec()
    colocated = simulate_pipeline(spec, spec.colocated_worker_limit, seed=seed)
    n_needed = workers_to_saturate(spec, seed=seed)
    disaggregated = simulate_pipeline(spec, n_needed, seed=seed)
    return DisaggregationDerived(colocated=colocated, disaggregated=disaggregated)
