"""Retraining cadence: how training frequency multiplies footprint.

Section II-A: "models supporting Facebook's Search service were trained at
an hourly cadence whereas the Language Translation models were trained
weekly."  Recommendation models additionally train *online*, continuously
consuming resources while serving.

The cadence model answers: given a per-run footprint and a cadence, what
is the footprint per unit time — which is what makes "frequency of
training ... matter", one of the paper's key messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro import units
from repro.core.quantities import Carbon, Energy
from repro.errors import UnitError


class Cadence(Enum):
    """Retraining frequency, expressed as runs per year."""

    HOURLY = units.HOURS_PER_YEAR
    DAILY = units.DAYS_PER_YEAR
    WEEKLY = units.DAYS_PER_YEAR / 7.0
    MONTHLY = units.MONTHS_PER_YEAR
    QUARTERLY = 4.0
    YEARLY = 1.0
    ONCE = 0.0  # a one-off model: trained once, never refreshed

    @property
    def runs_per_year(self) -> float:
        return float(self.value)


@dataclass(frozen=True, slots=True)
class RetrainingPolicy:
    """Cadence plus an optional continuous online-training stream.

    ``online_fraction_of_offline`` expresses online training's annual cost
    as a fraction of one offline run's cost per retraining interval — the
    paper reports online training as a first-class slice of the
    recommendation models' footprint (Figure 4).
    """

    cadence: Cadence
    online_fraction_of_offline: float = 0.0

    def __post_init__(self) -> None:
        if self.online_fraction_of_offline < 0:
            raise UnitError("online fraction must be non-negative")

    def annual_offline_runs(self) -> float:
        return self.cadence.runs_per_year

    def annual_carbon(self, per_run: Carbon) -> Carbon:
        """Total annual training carbon (offline runs + online stream)."""
        offline = per_run * self.cadence.runs_per_year
        online = offline * self.online_fraction_of_offline
        return offline + online

    def annual_energy(self, per_run: Energy) -> Energy:
        offline = per_run * self.cadence.runs_per_year
        online = offline * self.online_fraction_of_offline
        return offline + online


#: Cadences called out in the paper.
SEARCH_CADENCE = RetrainingPolicy(Cadence.HOURLY)
TRANSLATION_CADENCE = RetrainingPolicy(Cadence.WEEKLY)
RECOMMENDATION_CADENCE = RetrainingPolicy(Cadence.MONTHLY, online_fraction_of_offline=1.0)
