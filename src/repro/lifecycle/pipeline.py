"""End-to-end ML pipeline footprint: Data -> Experimentation/Training -> Inference.

Combines the data pipeline, job duration models, retraining cadence, and
serving demand of one ML task into per-phase energy over an analysis
window, producing the splits of Figure 3:

* (a) fleet power capacity devoted to Experimentation : Training :
  Inference ≈ 10 : 20 : 70;
* (b) RM1 end-to-end energy ≈ 31 : 29 : 40 over Data : Exp/Train :
  Inference.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.core.footprint import Phase
from repro.core.quantities import Energy, Power
from repro.energy.devices import DeviceSpec, V100
from repro.energy.power_model import PowerModel
from repro.errors import UnitError
from repro.lifecycle.cadence import RetrainingPolicy
from repro.lifecycle.datapipeline import DataPipelineSpec


@dataclass(frozen=True, slots=True)
class PipelineSpec:
    """One ML task's end-to-end pipeline sizing.

    ``experimentation_gpu_hours_per_year`` and
    ``training_gpu_hours_per_run`` describe the research sweep and one
    production training run; inference is a continuously provisioned
    serving tier described by its average power.
    """

    name: str
    data: DataPipelineSpec
    experimentation_gpu_hours_per_year: float
    training_gpu_hours_per_run: float
    retraining: RetrainingPolicy
    inference_devices: float
    device: DeviceSpec = V100
    training_utilization: float = 0.60
    experimentation_utilization: float = 0.40
    inference_utilization: float = 0.55
    host_overhead_watts: float = 75.0

    def __post_init__(self) -> None:
        if self.experimentation_gpu_hours_per_year < 0:
            raise UnitError("experimentation hours must be non-negative")
        if self.training_gpu_hours_per_run < 0:
            raise UnitError("training hours must be non-negative")
        if self.inference_devices < 0:
            raise UnitError("inference device count must be non-negative")

    def _device_watts(self, utilization: float) -> float:
        model = PowerModel(self.device)
        return model.power_at(utilization).watts + self.host_overhead_watts

    def phase_energy_over_year(self) -> dict[Phase, Energy]:
        """IT energy per phase over one year of operating this task."""
        hours_per_year = units.HOURS_PER_YEAR

        data_energy = self.data.energy_over_hours(hours_per_year)

        exp_energy = Energy(
            self._device_watts(self.experimentation_utilization)
            * self.experimentation_gpu_hours_per_year
            / 1e3
        )

        annual_training_hours = (
            self.training_gpu_hours_per_run * self.retraining.annual_offline_runs()
        )
        offline_energy = Energy(
            self._device_watts(self.training_utilization) * annual_training_hours / 1e3
        )
        online_energy = offline_energy * self.retraining.online_fraction_of_offline

        inference_energy = Energy(
            self._device_watts(self.inference_utilization)
            * self.inference_devices
            * hours_per_year
            / 1e3
        )

        return {
            Phase.DATA: data_energy,
            Phase.EXPERIMENTATION: exp_energy,
            Phase.OFFLINE_TRAINING: offline_energy,
            Phase.ONLINE_TRAINING: online_energy,
            Phase.INFERENCE: inference_energy,
        }

    def energy_split(self) -> dict[str, float]:
        """The Figure-3b three-way split: Data / Exp+Training / Inference."""
        per_phase = self.phase_energy_over_year()
        data = per_phase[Phase.DATA].kwh
        training = (
            per_phase[Phase.EXPERIMENTATION].kwh
            + per_phase[Phase.OFFLINE_TRAINING].kwh
            + per_phase[Phase.ONLINE_TRAINING].kwh
        )
        inference = per_phase[Phase.INFERENCE].kwh
        total = data + training + inference
        if total == 0:
            return {"data": 0.0, "experimentation/training": 0.0, "inference": 0.0}
        return {
            "data": data / total,
            "experimentation/training": training / total,
            "inference": inference / total,
        }


@dataclass(frozen=True, slots=True)
class FleetCapacitySplit:
    """Fleet AI power capacity devoted to each phase (Figure 3a).

    The paper's breakdown is 10:20:70 for Experimentation : Training :
    Inference.
    """

    experimentation: float = 0.10
    training: float = 0.20
    inference: float = 0.70

    def __post_init__(self) -> None:
        total = self.experimentation + self.training + self.inference
        if abs(total - 1.0) > 1e-9:
            raise UnitError(f"capacity split must sum to 1, got {total}")
        if min(self.experimentation, self.training, self.inference) < 0:
            raise UnitError("capacity shares must be non-negative")

    def allocate(self, total_ai_power: Power) -> dict[str, Power]:
        return {
            "experimentation": total_ai_power * self.experimentation,
            "training": total_ai_power * self.training,
            "inference": total_ai_power * self.inference,
        }
