"""Training job duration models calibrated to the paper's percentiles.

Section II-A reports:

* research **experimentation**: p50 = 1.5 GPU-days, p99 = 24 GPU-days,
  with a tail of trillion-parameter runs exceeding 500 GPU-days;
* **production training** workflows: p50 = 2.96 GPU-days, p99 = 125
  GPU-days.

A lognormal is the natural fit for job-duration distributions (durations
are positive and heavy-tailed).  Given two quantiles (p50, p99), the
lognormal parameters are determined exactly::

    median = exp(mu)          ->  mu = ln(p50)
    p99    = exp(mu + z99*s)  ->  sigma = ln(p99 / p50) / z99
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro import units
from repro.errors import CalibrationError


@dataclass(frozen=True, slots=True)
class JobDurationModel:
    """Lognormal GPU-day duration distribution fit to (p50, p99)."""

    mu: float
    sigma: float
    name: str = "jobs"

    @classmethod
    def from_percentiles(
        cls, p50_gpu_days: float, p99_gpu_days: float, name: str = "jobs"
    ) -> "JobDurationModel":
        """Fit from the two percentiles the paper reports."""
        if p50_gpu_days <= 0 or p99_gpu_days <= 0:
            raise CalibrationError("percentile durations must be positive")
        if p99_gpu_days <= p50_gpu_days:
            raise CalibrationError(
                f"p99 ({p99_gpu_days}) must exceed p50 ({p50_gpu_days})"
            )
        z99 = stats.norm.ppf(0.99)
        mu = float(np.log(p50_gpu_days))
        sigma = float(np.log(p99_gpu_days / p50_gpu_days) / z99)
        return cls(mu=mu, sigma=sigma, name=name)

    def quantile(self, q: float) -> float:
        """GPU-days at quantile ``q`` in (0, 1)."""
        if not (0 < q < 1):
            raise CalibrationError(f"quantile must be in (0, 1), got {q}")
        return float(np.exp(self.mu + self.sigma * stats.norm.ppf(q)))

    @property
    def median_gpu_days(self) -> float:
        return float(np.exp(self.mu))

    @property
    def mean_gpu_days(self) -> float:
        return float(np.exp(self.mu + self.sigma**2 / 2.0))

    def sample_gpu_days(self, n: int, seed: int = 0) -> np.ndarray:
        """Draw ``n`` job durations (GPU-days)."""
        if n < 0:
            raise CalibrationError(f"sample count must be non-negative, got {n}")
        rng = np.random.default_rng(seed)
        return np.exp(rng.normal(self.mu, self.sigma, size=n))

    def sample_gpu_hours(self, n: int, seed: int = 0) -> np.ndarray:
        return self.sample_gpu_days(n, seed) * units.HOURS_PER_DAY

    def exceedance_fraction(self, gpu_days: float) -> float:
        """Fraction of jobs longer than ``gpu_days``."""
        if gpu_days <= 0:
            return 1.0
        z = (np.log(gpu_days) - self.mu) / self.sigma
        return float(stats.norm.sf(z))


#: Research-cluster experimentation workflows (p50 1.5 / p99 24 GPU-days).
EXPERIMENTATION_JOBS = JobDurationModel.from_percentiles(1.5, 24.0, "experimentation")
#: Production training workflows (p50 2.96 / p99 125 GPU-days).
PRODUCTION_TRAINING_JOBS = JobDurationModel.from_percentiles(
    2.96, 125.0, "production-training"
)
#: GPU-day threshold of the paper's "large-scale, trillion parameter" runs.
TRILLION_PARAM_THRESHOLD_GPU_DAYS = 500.0


def expected_cluster_gpu_days(model: JobDurationModel, jobs_per_period: int) -> float:
    """Expected total GPU-days consumed by ``jobs_per_period`` jobs."""
    if jobs_per_period < 0:
        raise CalibrationError("job count must be non-negative")
    return model.mean_gpu_days * jobs_per_period
