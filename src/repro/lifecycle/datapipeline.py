"""Data storage and ingestion pipeline energy model.

The paper: "data storage and the ingestion pipeline accounts for a
significant portion of the infrastructure and power capacity compared to
ML training" — for RM1 the end-to-end energy split is roughly
**31 : 29 : 40** over Data : Experimentation/Training : Inference
(Figure 3b).

The model decomposes the Data phase into:

* **storage** — exabyte-scale feature stores kept on powered storage
  servers (W per PB, continuous);
* **ingestion** — streaming extract/transform/load compute scaling with
  ingestion bandwidth (W per GB/s of sustained bandwidth).

Defaults are calibrated so an RM1-like pipeline reproduces the 31:29:40
split; both coefficients are explicit knobs a user would measure on their
own fleet.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quantities import Energy, Power
from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class DataPipelineSpec:
    """Sizing of one ML task's data storage + ingestion pipeline."""

    stored_petabytes: float
    ingestion_gb_per_s: float
    #: Continuous storage power per petabyte (disks + storage server share).
    storage_watts_per_pb: float = 450.0
    #: Continuous ETL compute power per GB/s of sustained ingestion.
    ingestion_watts_per_gbps: float = 220.0

    def __post_init__(self) -> None:
        if self.stored_petabytes < 0 or self.ingestion_gb_per_s < 0:
            raise UnitError("pipeline sizing must be non-negative")
        if self.storage_watts_per_pb < 0 or self.ingestion_watts_per_gbps < 0:
            raise UnitError("pipeline power coefficients must be non-negative")

    @property
    def storage_power(self) -> Power:
        return Power(self.stored_petabytes * self.storage_watts_per_pb)

    @property
    def ingestion_power(self) -> Power:
        return Power(self.ingestion_gb_per_s * self.ingestion_watts_per_gbps)

    @property
    def total_power(self) -> Power:
        return self.storage_power + self.ingestion_power

    def energy_over_hours(self, hours: float) -> Energy:
        """Data-phase energy over an analysis window (pipeline runs 24/7)."""
        return self.total_power.over_hours(hours)

    def scaled(self, data_factor: float) -> "DataPipelineSpec":
        """Pipeline after the dataset grows by ``data_factor``.

        Storage scales linearly with data volume; ingestion bandwidth
        historically grows *faster* than data volume (the paper: 2.4x
        data -> 3.2x bandwidth, i.e. exponent ~1.33) because richer
        features are read more often per byte stored.
        """
        if data_factor <= 0:
            raise UnitError(f"data factor must be positive, got {data_factor}")
        bandwidth_exponent = 1.33
        return DataPipelineSpec(
            stored_petabytes=self.stored_petabytes * data_factor,
            ingestion_gb_per_s=self.ingestion_gb_per_s * data_factor**bandwidth_exponent,
            storage_watts_per_pb=self.storage_watts_per_pb,
            ingestion_watts_per_gbps=self.ingestion_watts_per_gbps,
        )
