"""Injectable faults for hardening the parallel experiment runner.

Faults are declared in the :data:`FAULTS_ENV_VAR` environment variable
(which ``ProcessPoolExecutor`` workers inherit), so the production runner
code path is exercised unchanged — no test-only branches in the runner
beyond one :func:`inject` call per experiment execution.

Directive grammar (semicolon-separated)::

    mode:target[:param][@attempts]

* ``mode`` — ``raise`` (worker raises :class:`~repro.errors.InjectedFault`),
  ``crash`` (worker hard-exits, breaking the process pool), ``timeout``
  (worker sleeps ``param`` seconds, default 30), or ``corrupt-memo``
  (every substrate produced by the memo cache is scaled by ``1 + param``,
  default 0.01 — drift the golden verifier must catch).
* ``target`` — an experiment id, or ``*`` for all.  For ``corrupt-memo``
  the target names a memoized substrate function (or ``*``).
* ``attempts`` — comma-separated 0-based attempt numbers the fault fires
  on (default ``*`` = every attempt).  ``crash:fig7@0`` crashes only the
  first attempt, so retry-with-reseed recovers.

Example::

    SUSTAINABLE_AI_FAULTS="crash:fig7@0;timeout:fig8:2.0" \
        sustainable-ai verify --jobs 4 --retries 1 --timeout 1
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import InjectedFault

#: Environment variable holding the fault plan.
FAULTS_ENV_VAR = "SUSTAINABLE_AI_FAULTS"

#: Process exit status used by ``crash`` faults (mirrors SIGKILL's 128+9
#: convention closely enough to be recognizable in worker post-mortems).
CRASH_EXIT_STATUS = 137

_MODES = ("raise", "crash", "timeout", "corrupt-memo")
_DEFAULT_PARAMS = {"timeout": 30.0, "corrupt-memo": 0.01}


@dataclass(frozen=True)
class Fault:
    """One parsed fault directive."""

    mode: str
    target: str
    param: float
    attempts: tuple[int, ...] | None  # None = every attempt

    def matches(self, target: str, attempt: int) -> bool:
        """Whether this fault fires for ``target`` on 0-based ``attempt``."""
        if self.target not in ("*", target):
            return False
        return self.attempts is None or attempt in self.attempts


@dataclass(frozen=True)
class FaultPlan:
    """The full set of active fault directives."""

    faults: tuple[Fault, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.faults)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a semicolon-separated directive string."""
        faults = []
        for directive in spec.split(";"):
            directive = directive.strip()
            if directive:
                faults.append(_parse_directive(directive))
        return cls(tuple(faults))

    @classmethod
    def from_env(cls) -> "FaultPlan":
        """The plan declared in :data:`FAULTS_ENV_VAR` (empty if unset)."""
        return cls.from_spec(os.environ.get(FAULTS_ENV_VAR, ""))

    def first_match(self, mode: str, target: str, attempt: int) -> Fault | None:
        """First directive of ``mode`` firing for (target, attempt)."""
        for fault in self.faults:
            if fault.mode == mode and fault.matches(target, attempt):
                return fault
        return None


def _parse_directive(directive: str) -> Fault:
    body, _, attempts_part = directive.partition("@")
    parts = body.split(":")
    if len(parts) not in (2, 3):
        raise ValueError(
            f"bad fault directive {directive!r}; expected mode:target[:param][@attempts]"
        )
    mode, target = parts[0].strip(), parts[1].strip()
    if mode not in _MODES:
        raise ValueError(f"unknown fault mode {mode!r}; known: {', '.join(_MODES)}")
    if not target:
        raise ValueError(f"fault directive {directive!r} has an empty target")
    param = _DEFAULT_PARAMS.get(mode, 0.0)
    if len(parts) == 3:
        param = float(parts[2])
    attempts: tuple[int, ...] | None = None
    if attempts_part.strip() not in ("", "*"):
        attempts = tuple(int(a) for a in attempts_part.split(","))
    return Fault(mode=mode, target=target, param=param, attempts=attempts)


def inject(experiment_id: str, attempt: int = 0, hard_exit: bool = True) -> None:
    """Fire any env-declared fault for this experiment execution.

    Called by the runner's worker body before dispatching an experiment.
    ``hard_exit=False`` (the sequential in-process path) downgrades
    ``crash`` to ``raise`` so the CLI process itself survives.
    """
    plan = FaultPlan.from_env()
    if not plan:
        return
    fault = plan.first_match("crash", experiment_id, attempt)
    if fault is not None:
        if hard_exit:
            os._exit(CRASH_EXIT_STATUS)
        raise InjectedFault(
            f"injected crash for {experiment_id} (attempt {attempt})"
        )
    fault = plan.first_match("timeout", experiment_id, attempt)
    if fault is not None:
        time.sleep(fault.param)
    fault = plan.first_match("raise", experiment_id, attempt)
    if fault is not None:
        raise InjectedFault(
            f"injected failure for {experiment_id} (attempt {attempt})"
        )


def _corrupt(value: object, epsilon: float) -> object:
    """Rebuild ``value`` with every reachable float array perturbed.

    The perturbation alternates ``1+eps, 1-eps, ...`` element-wise rather
    than scaling uniformly: many of the paper's headline metrics are
    ratios that are *provably invariant* under uniform scaling (see the
    ``saving-invariant-under-intensity-scaling`` invariant), so a uniform
    corruption would cancel out instead of surfacing as golden drift.
    """
    if isinstance(value, np.ndarray):
        if np.issubdtype(value.dtype, np.floating):
            arr = np.asarray(value)
            signs = np.where(np.arange(arr.size) % 2 == 0, 1.0, -1.0)
            return arr * (1.0 + epsilon * signs.reshape(arr.shape))
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        changes = {}
        for field in dataclasses.fields(value):
            original = getattr(value, field.name)
            corrupted = _corrupt(original, epsilon)
            if corrupted is not original:
                changes[field.name] = corrupted
        return dataclasses.replace(value, **changes) if changes else value
    if isinstance(value, tuple):
        return tuple(_corrupt(item, epsilon) for item in value)
    if isinstance(value, list):
        return [_corrupt(item, epsilon) for item in value]
    return value


def install_memo_corruption() -> bool:
    """Install the env-declared ``corrupt-memo`` hook into the memo cache.

    Returns True when a corruptor was installed.  Idempotent; clears any
    previous hook when no corrupt-memo directive is active.
    """
    from repro.core import memo

    plan = FaultPlan.from_env()
    directives = [f for f in plan.faults if f.mode == "corrupt-memo"]
    if not directives:
        memo.set_substrate_corruptor(None)
        return False

    def corruptor(qualname: str, value: object) -> object:
        for fault in directives:
            if fault.target in ("*", qualname):
                return _corrupt(value, fault.param)
        return value

    memo.set_substrate_corruptor(corruptor)
    return True
