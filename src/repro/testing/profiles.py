"""Registered Hypothesis settings profiles for the property suite.

Two profiles, both registered by :func:`register_profiles`:

* ``repro-deterministic`` — the CI/tier-1 default: derandomized (the
  example stream is a pure function of the test, not of a random seed or
  an example database), a bounded example budget, and ``deadline=None``
  (wall-clock deadlines are a flakiness source on shared CI runners).
* ``repro-thorough`` — a larger randomized budget for local deep runs:
  ``HYPOTHESIS_PROFILE=repro-thorough pytest -m property``.

``tests/conftest.py`` calls :func:`load_default_profile` at collection
time, so plain ``pytest`` runs are reproducible without any environment
setup.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

#: Name of the profile loaded when ``HYPOTHESIS_PROFILE`` is unset.
DEFAULT_PROFILE = "repro-deterministic"

#: Environment variable that overrides the profile choice.
PROFILE_ENV_VAR = "HYPOTHESIS_PROFILE"


def register_profiles() -> tuple[str, ...]:
    """Register both profiles; returns their names (idempotent)."""
    settings.register_profile(
        "repro-deterministic",
        derandomize=True,
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile(
        "repro-thorough",
        derandomize=False,
        max_examples=300,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    return ("repro-deterministic", "repro-thorough")


def load_default_profile() -> str:
    """Register profiles and load the env-selected (or default) one."""
    register_profiles()
    name = os.environ.get(PROFILE_ENV_VAR, DEFAULT_PROFILE)
    settings.load_profile(name)
    return name
