"""Hypothesis strategies for valid accounting substrates.

Every strategy here produces objects that satisfy the library's own
validation (non-negative finite hourly values, PUE >= 1, deadlines that
fit durations, ...), so property tests explore the *interior* of the
valid input space instead of fighting constructor errors.  The property
suite in ``tests/test_invariants_property.py`` maps the named invariants
of :mod:`repro.testing.invariants` over these generators.

Magnitudes are bounded (hourly values up to ~1e6 kWh, horizons up to a
few hundred hours) so a single example stays microseconds-cheap; the laws
being checked are scale-free, so bounded magnitudes lose no generality.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.carbon.embodied import AmortizationPolicy
from repro.carbon.grid import GridTrace, constant_grid_trace, synthesize_grid_trace
from repro.carbon.intensity import CarbonIntensity
from repro.carbon.stream import StreamSpec, Tick, simulate_tick_trace
from repro.core.context import AccountingContext
from repro.core.series import HourlySeries
from repro.edge.devices import DevicePopulation
from repro.edge.selection import ClientPopulation, synthesize_population
from repro.fleet.growth import OptimizationArea
from repro.lifecycle.jobs import EXPERIMENTATION_JOBS
from repro.scheduling.jobs import DeferrableJob
from repro.workloads.growthtrends import GrowthTrend
from repro.workloads.traces import ExperimentStream, experiment_arrivals

#: Bounds shared by the value-level strategies.
MAX_HOURS = 240
MAX_KWH_PER_HOUR = 1e6
MAX_INTENSITY = 1.5  # kgCO2e/kWh — dirtier than any real grid


def finite_floats(
    min_value: float = 0.0, max_value: float = MAX_KWH_PER_HOUR
) -> st.SearchStrategy[float]:
    """Finite, non-NaN floats in ``[min_value, max_value]``."""
    return st.floats(
        min_value=min_value,
        max_value=max_value,
        allow_nan=False,
        allow_infinity=False,
    )


def hour_counts(
    min_hours: int = 1, max_hours: int = MAX_HOURS
) -> st.SearchStrategy[int]:
    """Series/trace lengths in hours."""
    return st.integers(min_value=min_hours, max_value=max_hours)


@st.composite
def hourly_arrays(
    draw,
    min_hours: int = 1,
    max_hours: int = MAX_HOURS,
    min_value: float = 0.0,
    max_value: float = MAX_KWH_PER_HOUR,
) -> np.ndarray:
    """A 1-D array of valid hourly magnitudes."""
    n = draw(hour_counts(min_hours, max_hours))
    values = draw(
        st.lists(finite_floats(min_value, max_value), min_size=n, max_size=n)
    )
    return np.array(values, dtype=float)


@st.composite
def hourly_series(
    draw,
    min_hours: int = 1,
    max_hours: int = MAX_HOURS,
    max_value: float = MAX_KWH_PER_HOUR,
) -> HourlySeries:
    """A valid :class:`~repro.core.series.HourlySeries`."""
    return HourlySeries(draw(hourly_arrays(min_hours, max_hours, 0.0, max_value)))


@st.composite
def aligned_series(
    draw, count: int = 2, min_hours: int = 1, max_hours: int = MAX_HOURS
) -> tuple[HourlySeries, ...]:
    """``count`` series sharing one horizon (safe to add elementwise)."""
    n = draw(hour_counts(min_hours, max_hours))
    return tuple(
        HourlySeries(draw(hourly_arrays(n, n))) for _ in range(count)
    )


def carbon_intensities(
    min_value: float = 1e-3, max_value: float = MAX_INTENSITY
) -> st.SearchStrategy[CarbonIntensity]:
    """Static grid intensities (kgCO2e/kWh), strictly positive."""
    return finite_floats(min_value, max_value).map(
        lambda kg: CarbonIntensity(kg, "generated")
    )


@st.composite
def grid_traces(
    draw,
    min_hours: int = 1,
    max_hours: int = MAX_HOURS,
    kind: str = "any",
) -> GridTrace:
    """An hourly grid trace.

    ``kind`` selects the generator family: ``"raw"`` draws an arbitrary
    positive intensity array (widest coverage), ``"synthetic"`` uses the
    seeded solar/wind synthesizer (realistic structure), ``"constant"``
    the flat baseline, and ``"any"`` mixes all three.
    """
    if kind == "any":
        kind = draw(st.sampled_from(("raw", "synthetic", "constant")))
    if kind == "raw":
        intensity = draw(hourly_arrays(min_hours, max_hours, 1e-3, MAX_INTENSITY))
        zeros = np.zeros(len(intensity))
        return GridTrace(
            solar_share=zeros, wind_share=zeros, intensity_kg_per_kwh=intensity
        )
    hours = draw(hour_counts(min_hours, max_hours))
    if kind == "synthetic":
        return synthesize_grid_trace(hours, seed=draw(st.integers(0, 2**16)))
    if kind == "constant":
        return constant_grid_trace(draw(carbon_intensities()), hours)
    raise ValueError(f"unknown grid kind {kind!r}")


def amortization_policies() -> st.SearchStrategy[AmortizationPolicy]:
    """Valid embodied-amortization policies."""
    return st.builds(
        AmortizationPolicy,
        lifetime_years=finite_floats(0.5, 10.0),
        average_utilization=finite_floats(0.05, 1.0),
        devices_per_server=finite_floats(1.0, 16.0),
        infrastructure_factor=finite_floats(1.0, 2.0),
    )


@st.composite
def accounting_contexts(
    draw,
    min_hours: int = 1,
    max_hours: int = MAX_HOURS,
    source: str = "any",
) -> AccountingContext:
    """A valid context: grid XOR static intensity, PUE >= 1, a policy.

    ``source`` forces the operational driver: ``"grid"``, ``"static"``,
    or ``"any"``.
    """
    if source == "any":
        source = draw(st.sampled_from(("grid", "static")))
    kwargs: dict[str, object] = {
        "pue": draw(finite_floats(1.0, 2.5)),
        "amortization": draw(amortization_policies()),
    }
    if source == "grid":
        kwargs["grid"] = draw(grid_traces(min_hours, max_hours))
    else:
        kwargs["intensity"] = draw(carbon_intensities())
    return AccountingContext(**kwargs)


@st.composite
def deferrable_jobs(
    draw,
    horizon_hours: int = 168,
    min_jobs: int = 1,
    max_jobs: int = 12,
) -> list[DeferrableJob]:
    """A batch of valid deferrable jobs fitting inside ``horizon_hours``."""
    n = draw(st.integers(min_jobs, max_jobs))
    jobs = []
    for i in range(n):
        duration = draw(st.integers(1, max(1, horizon_hours // 4)))
        submit = draw(st.integers(0, horizon_hours - duration))
        deadline = draw(st.integers(submit + duration, horizon_hours))
        jobs.append(
            DeferrableJob(
                job_id=i,
                submit_hour=submit,
                duration_hours=duration,
                power_kw=draw(finite_floats(0.5, 500.0)),
                deadline_hour=deadline,
            )
        )
    return jobs


@st.composite
def experiment_streams(
    draw,
    max_jobs_per_day: int = 40,
    max_days: int = 5,
) -> ExperimentStream:
    """A seeded Poisson research-job arrival stream (may be empty)."""
    return experiment_arrivals(
        EXPERIMENTATION_JOBS,
        jobs_per_day=draw(st.integers(1, max_jobs_per_day)),
        days=draw(st.integers(1, max_days)),
        seed=draw(st.integers(0, 2**16)),
    )


# -- kernel-equivalence generators -------------------------------------------
# Inputs for the bit-exactness suite in ``tests/test_vectorized_kernels.py``:
# each generator draws a *seed* and synthesizes the numeric payload with a
# seeded Generator, so values are continuous (no accidental float ties
# beyond what the quantized generators produce deliberately) and every
# example costs microseconds.


@st.composite
def client_populations(
    draw, min_clients: int = 8, max_clients: int = 400
) -> ClientPopulation:
    """A heterogeneous FL client population (lognormal compute/comm)."""
    return synthesize_population(
        n_clients=draw(st.integers(min_clients, max_clients)),
        seed=draw(st.integers(0, 2**16)),
    )


@st.composite
def quantized_client_populations(
    draw, min_clients: int = 8, max_clients: int = 200
) -> ClientPopulation:
    """A tie-heavy population: durations drawn from a small value grid.

    Exercises the sort-tie handling of the selection kernels, which the
    continuous :func:`client_populations` almost never hits.
    """
    n = draw(st.integers(min_clients, max_clients))
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    levels = np.array([30.0, 60.0, 120.0, 240.0])
    return ClientPopulation(
        rng.choice(levels, size=n), rng.choice(levels / 4.0, size=n)
    )


@st.composite
def gpu_demand_arrays(
    draw, min_demands: int = 1, max_demands: int = 300
) -> np.ndarray:
    """Fractional-GPU demands in (0, 1] for the packing kernels."""
    n = draw(st.integers(min_demands, max_demands))
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    return np.clip(rng.beta(2.0, 3.0, n), 0.05, 0.95)


@st.composite
def device_populations(draw) -> DevicePopulation:
    """A valid client-device fleet for the straggler kernels."""
    return DevicePopulation(
        n_devices=draw(st.integers(2, 400)),
        speed_sigma=draw(finite_floats(0.0, 1.5)),
    )


@st.composite
def optimization_areas(
    draw, min_areas: int = 1, max_areas: int = 6
) -> tuple[OptimizationArea, ...]:
    """Optimization areas sharing one half-year axis (Figure 6 shape)."""
    n_areas = draw(st.integers(min_areas, max_areas))
    n_halves = draw(st.integers(1, 8))
    gains = st.lists(
        finite_floats(0.0, 0.3), min_size=n_halves, max_size=n_halves
    )
    return tuple(
        OptimizationArea(f"area-{i}", tuple(draw(gains))) for i in range(n_areas)
    )


def growth_trends() -> st.SearchStrategy[GrowthTrend]:
    """Exponential growth trends with sane factors and spans."""
    return st.builds(
        GrowthTrend,
        name=st.just("generated"),
        factor=finite_floats(0.1, 30.0),
        span_years=finite_floats(0.25, 8.0),
    )


@st.composite
def fleet_configs(draw) -> dict[str, int]:
    """Sizing knobs for :class:`~repro.fleet.simulator.FleetSimulator`.

    Returned as kwargs (``training_gpus``, ``inference_servers``) so the
    caller can compose them with SKU/datacenter/grid choices.
    """
    return {
        "training_gpus": draw(st.integers(8, 1024)),
        "inference_servers": draw(st.integers(1, 500)),
    }


@st.composite
def parameter_ranges(draw, name: str) -> "ParameterRange":
    """A valid :class:`~repro.core.sweep.ParameterRange` for ``name``."""
    from repro.core.sweep import PARAMETER_BOUNDS, ParameterRange

    bound_lo, bound_hi = PARAMETER_BOUNDS[name]
    lo = draw(finite_floats(bound_lo, bound_hi))
    hi = draw(finite_floats(lo, bound_hi))
    return ParameterRange(name, lo, hi, points=draw(st.integers(1, 4)))


@st.composite
def sweep_specs(draw, max_axes: int = 3) -> "SweepSpec":
    """Valid, *small* :class:`~repro.core.sweep.SweepSpec` instances.

    Axis resolutions are capped at 4 points over at most ``max_axes`` of
    the six knobs (grid <= 64 points, Sobol <= 32), so the scalar
    reference path the bit-equality properties loop through stays cheap.
    """
    from repro.core.sweep import SWEEP_PARAMETERS, SweepSpec

    names = draw(
        st.lists(
            st.sampled_from(SWEEP_PARAMETERS),
            min_size=1,
            max_size=max_axes,
            unique=True,
        )
    )
    return SweepSpec(
        busy_device_hours=draw(finite_floats(0.0, 1e6)),
        ranges=tuple(draw(parameter_ranges(name)) for name in names),
        sampling=draw(st.sampled_from(["grid", "sobol"])),
        n_points=draw(st.integers(1, 32)),
        seed=draw(st.integers(0, 2**16)),
        intensity_kg_per_kwh=draw(finite_floats(0.0, MAX_INTENSITY)),
        devices_per_server=draw(st.integers(1, 8)),
    )


@st.composite
def stream_specs(
    draw,
    min_hours: int = 48,
    max_hours: int = 120,
) -> StreamSpec:
    """A valid live-stream spec spanning the feed's failure modes.

    Late-arrival, revision, and stall probabilities are drawn across
    their full valid ranges (including 0, the clean-feed degenerate
    case), so the property suite exercises in-order feeds, heavy
    out-of-order reordering, revision storms, and stalled feeds alike.
    Horizons stay short (a few days) — the streaming laws are
    horizon-free, and :func:`~repro.carbon.stream.simulate_tick_trace`
    is O(hours) per example.
    """
    return StreamSpec(
        hours=draw(hour_counts(min_hours, max_hours)),
        grid_seed=draw(st.integers(0, 2**16)),
        feed_seed=draw(st.integers(0, 2**16)),
        load_kw=draw(finite_floats(0.5, 1e4)),
        load_diurnal_fraction=draw(finite_floats(0.0, 0.9)),
        pue=draw(finite_floats(1.0, 2.5)),
        window_hours=draw(st.sampled_from((1, 6, 24, 48))),
        late_probability=draw(finite_floats(0.0, 0.6)),
        max_late_hours=draw(st.integers(1, 12)),
        revision_probability=draw(finite_floats(0.0, 0.8)),
        max_revision_lag_hours=draw(st.integers(1, 48)),
        revision_noise=draw(finite_floats(0.0, 0.3)),
        stall_probability=draw(finite_floats(0.0, 0.2)),
        max_stall_hours=draw(st.integers(1, 24)),
    )


@st.composite
def tick_streams(
    draw,
    min_hours: int = 48,
    max_hours: int = 120,
) -> tuple[StreamSpec, tuple[Tick, ...]]:
    """``(spec, ticks)``: a seeded live intensity feed and its event log.

    The tick trace carries everything a streaming consumer must survive:
    out-of-order/late arrivals, revisions of recently-observed hours, and
    stall-then-catch-up bursts.  Property tests fold prefixes of it and
    pin the incremental accounting against batch replay.
    """
    spec = draw(stream_specs(min_hours, max_hours))
    return spec, simulate_tick_trace(spec)


def ring_node_names() -> st.SearchStrategy[str]:
    """Plausible replica names: short printable identifiers."""
    return st.text(
        alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-"),
        min_size=1,
        max_size=12,
    )


def ring_node_sets(
    min_size: int = 1, max_size: int = 16
) -> st.SearchStrategy[tuple[str, ...]]:
    """Distinct node-name tuples for :class:`~repro.service.hashring.HashRing`.

    Sized like real fleets (the balance bound is stated for up to 16
    nodes at the default virtual-node count).
    """
    return st.lists(
        ring_node_names(), min_size=min_size, max_size=max_size, unique=True
    ).map(tuple)


def ring_keys() -> st.SearchStrategy[str]:
    """Arbitrary routing keys (canonical query keys are a subset)."""
    return st.text(min_size=0, max_size=64)


@st.composite
def llm_training_specs(draw) -> "LLMTrainingSpec":
    """Valid LLM training runs across the realistic envelope.

    Parameter counts span 100M–200B and token budgets 1B–10T —
    generously past both ends of the published scaling-law ladder — with
    MFU, overheads, and reliability knobs drawn across their full valid
    ranges.  The genai energy laws are scale-free, so these bounds lose
    no generality while keeping each example analytic-cheap.
    """
    from repro.workloads.genai import LLMTrainingSpec

    return LLMTrainingSpec(
        name="generated",
        n_params=draw(finite_floats(1e8, 2e11)),
        n_tokens=draw(finite_floats(1e9, 1e13)),
        mfu=draw(finite_floats(0.05, 0.6)),
        n_accelerators=draw(st.integers(8, 4096)),
        board_power_fraction=draw(finite_floats(0.3, 0.99)),
        checkpoint_interval_hours=draw(finite_floats(0.05, 24.0)),
        checkpoint_cost_hours=draw(finite_floats(0.0, 0.5)),
        mtbf_hours=draw(finite_floats(10.0, 1e4)),
        failed_run_fraction=draw(finite_floats(0.0, 0.5)),
    )


@st.composite
def llm_serving_specs(draw, max_hours: int = 72) -> "LLMServingSpec":
    """Valid LLM serving deployments whose KV cache fits the accelerator.

    Restricted to the 80 GB tensor-core SKU with parameter counts <= 20B
    and contexts <= 4096 so the weights + one request's KV cache always
    fit device memory (the constructor rejects anything else); horizons
    stay at a few diurnal days so ``it_series`` is O(hours) per example.
    """
    from repro.workloads.genai import LLMServingSpec

    return LLMServingSpec(
        name="generated",
        n_params=draw(finite_floats(1e8, 2e10)),
        peak_qps=draw(finite_floats(0.1, 1e4)),
        tokens_per_request=draw(finite_floats(1.0, 2048.0)),
        context_tokens=draw(finite_floats(64.0, 4096.0)),
        batch_size=draw(st.integers(1, 32)),
        peak_tokens_per_s=draw(finite_floats(100.0, 2e4)),
        half_saturation_batch=draw(finite_floats(1.0, 32.0)),
        board_power_fraction=draw(finite_floats(0.3, 0.99)),
        hours=draw(st.integers(24, max_hours)),
        trough_fraction=draw(finite_floats(0.1, 0.95)),
        demand_seed=draw(st.integers(0, 2**16)),
    )
