"""Named, machine-checkable physical laws of the carbon accounting.

The paper's accounting rests on a small set of physical invariants —
energy is conserved under composition, emissions are linear in energy and
in grid intensity, PUE only amplifies, ``total = operational + embodied``
— and after PR 2 funneled every ``kWh x intensity`` multiplication
through ``repro.core``, one latent engine bug would skew all experiments
at once.  This module makes those laws *executable* in two forms:

* **Substrate invariants** (:data:`SUBSTRATE_INVARIANTS`): named functions
  over concrete accounting substrates (series, grids, contexts, job
  batches).  Each raises :class:`InvariantViolation` when the law fails.
  The Hypothesis property suite (``tests/test_invariants_property.py``)
  maps them over the generators in :mod:`repro.testing.strategies`.
* **Result invariants** (:data:`RESULT_INVARIANTS`): checks over one
  :class:`~repro.experiments.base.ExperimentResult` — finiteness,
  dimensional sign conventions, payload round-trip stability.  The CLI
  flag ``sustainable-ai run/verify --check-invariants`` sweeps them over
  every registered experiment's headline metrics.

Both registries are keyed by a stable kebab-case name so reports, docs,
and tests refer to one vocabulary (``docs/TESTING.md`` lists them).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

import numpy as np

from repro.core.report import format_table
from repro.errors import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.carbon.embodied import AmortizationPolicy
    from repro.carbon.grid import GridTrace
    from repro.carbon.intensity import CarbonIntensity
    from repro.carbon.stream import StreamSpec
    from repro.core.context import AccountingContext
    from repro.core.series import HourlySeries
    from repro.core.sweep import SweepSpec
    from repro.experiments.base import ExperimentResult
    from repro.scheduling.jobs import DeferrableJob
    from repro.workloads.traces import ExperimentStream

__all__ = [
    "InvariantViolation",
    "InvariantReport",
    "Violation",
    "REL_TOL",
    "SUBSTRATE_INVARIANTS",
    "RESULT_INVARIANTS",
    "substrate_invariant",
    "result_invariant",
    "substrate_invariant_names",
    "result_invariant_names",
    "check_result",
    "check_results",
]


#: Relative tolerance for "equal" floating-point comparisons.  The laws
#: are exact in real arithmetic; 1e-9 absorbs vectorization reordering.
REL_TOL = 1e-9

SUBSTRATE_INVARIANTS: dict[str, Callable] = {}
RESULT_INVARIANTS: dict[str, Callable[["ExperimentResult"], list["Violation"]]] = {}


def substrate_invariant(name: str) -> Callable[[Callable], Callable]:
    """Register a named physical law over accounting substrates."""

    def register(func: Callable) -> Callable:
        if name in SUBSTRATE_INVARIANTS:
            raise ValueError(f"duplicate substrate invariant {name!r}")
        func.invariant_name = name  # type: ignore[attr-defined]
        SUBSTRATE_INVARIANTS[name] = func
        return func

    return register


def result_invariant(name: str) -> Callable[[Callable], Callable]:
    """Register a named check over one experiment result."""

    def register(func: Callable) -> Callable:
        if name in RESULT_INVARIANTS:
            raise ValueError(f"duplicate result invariant {name!r}")
        func.invariant_name = name  # type: ignore[attr-defined]
        RESULT_INVARIANTS[name] = func
        return func

    return register


def substrate_invariant_names() -> tuple[str, ...]:
    """All registered substrate-invariant names, sorted."""
    return tuple(sorted(SUBSTRATE_INVARIANTS))


def result_invariant_names() -> tuple[str, ...]:
    """All registered result-invariant names, sorted."""
    return tuple(sorted(RESULT_INVARIANTS))


def _require(condition: bool, name: str, detail: str) -> None:
    if not condition:
        raise InvariantViolation(f"invariant {name!r} violated: {detail}")


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=1e-12)


# ---------------------------------------------------------------------------
# Substrate invariants: conservation and additivity
# ---------------------------------------------------------------------------


@substrate_invariant("energy-conservation-additivity")
def check_energy_additivity(a: "HourlySeries", b: "HourlySeries") -> None:
    """Integrating a sum equals the sum of integrals (energy conserves)."""
    _require(
        _close((a + b).integrate().kwh, a.integrate().kwh + b.integrate().kwh),
        "energy-conservation-additivity",
        f"integrate(a+b)={(a + b).integrate().kwh} != "
        f"{a.integrate().kwh} + {b.integrate().kwh}",
    )


@substrate_invariant("emissions-additivity")
def check_emissions_additivity(
    a: "HourlySeries", b: "HourlySeries", grid: "GridTrace"
) -> None:
    """Emissions of a summed load equal the sum of per-load emissions."""
    combined = (a + b).emissions(grid).kg
    split = a.emissions(grid).kg + b.emissions(grid).kg
    _require(
        _close(combined, split),
        "emissions-additivity",
        f"emissions(a+b)={combined} != emissions(a)+emissions(b)={split}",
    )


@substrate_invariant("operational-embodied-additivity")
def check_total_footprint_additivity(
    context: "AccountingContext",
    it_series: "HourlySeries",
    manufacturing_kg: float,
    server_hours: float,
) -> None:
    """``total = operational + embodied`` — the paper's central identity."""
    from repro.core.quantities import Carbon

    operational = context.operational(it_series)
    embodied = context.amortized_embodied(Carbon(manufacturing_kg), server_hours)
    total = operational + embodied
    _require(
        _close(total.kg, operational.kg + embodied.kg),
        "operational-embodied-additivity",
        f"total={total.kg} != operational={operational.kg} + embodied={embodied.kg}",
    )


@substrate_invariant("embodied-amortization-linearity")
def check_amortization_linearity(
    policy: "AmortizationPolicy",
    manufacturing_kg: float,
    hours_a: float,
    hours_b: float,
) -> None:
    """Amortized embodied carbon is additive (and monotone) in hours."""
    from repro.core.quantities import Carbon

    manufacturing = Carbon(manufacturing_kg)
    rate = policy.rate_per_utilized_hour(manufacturing)
    combined = rate * (hours_a + hours_b)
    split = rate * hours_a + rate * hours_b
    _require(
        _close(combined, split),
        "embodied-amortization-linearity",
        f"amortized(h1+h2)={combined} != amortized(h1)+amortized(h2)={split}",
    )
    _require(
        combined + 1e-12 >= rate * hours_a,
        "embodied-amortization-linearity",
        "amortized carbon decreased when hours increased",
    )


# ---------------------------------------------------------------------------
# Substrate invariants: linearity and monotonicity
# ---------------------------------------------------------------------------


@substrate_invariant("emissions-linearity-in-load")
def check_emissions_linear_in_load(
    series: "HourlySeries", grid: "GridTrace", factor: float
) -> None:
    """Scaling the load scales emissions by the same factor."""
    base = series.emissions(grid).kg
    scaled = series.scale(factor).emissions(grid).kg
    _require(
        _close(scaled, factor * base),
        "emissions-linearity-in-load",
        f"emissions({factor}*s)={scaled} != {factor}*emissions(s)={factor * base}",
    )


@substrate_invariant("emissions-linearity-in-intensity")
def check_emissions_linear_in_intensity(
    series: "HourlySeries", grid: "GridTrace", factor: float
) -> None:
    """Scaling every hour's grid intensity scales emissions identically."""
    from repro.carbon.grid import GridTrace

    scaled_grid = GridTrace(
        solar_share=grid.solar_share,
        wind_share=grid.wind_share,
        intensity_kg_per_kwh=np.asarray(grid.intensity_kg_per_kwh) * factor,
        params=grid.params,
    )
    base = series.emissions(grid).kg
    scaled = series.emissions(scaled_grid).kg
    _require(
        _close(scaled, factor * base),
        "emissions-linearity-in-intensity",
        f"emissions on {factor}x grid = {scaled} != {factor * base}",
    )


@substrate_invariant("emissions-monotone-in-intensity")
def check_emissions_monotone_in_intensity(
    series: "HourlySeries", grid: "GridTrace", bump: np.ndarray
) -> None:
    """A pointwise-dirtier grid never lowers emissions."""
    from repro.carbon.grid import GridTrace

    intensity = np.asarray(grid.intensity_kg_per_kwh)
    bump = np.abs(np.asarray(bump, dtype=float))[: len(intensity)]
    padded = np.zeros(len(intensity))
    padded[: len(bump)] = bump
    dirtier = GridTrace(
        solar_share=grid.solar_share,
        wind_share=grid.wind_share,
        intensity_kg_per_kwh=intensity + padded,
        params=grid.params,
    )
    lo, hi = series.emissions(grid).kg, series.emissions(dirtier).kg
    _require(
        hi >= lo - abs(lo) * REL_TOL,
        "emissions-monotone-in-intensity",
        f"dirtier grid lowered emissions: {hi} < {lo}",
    )


@substrate_invariant("emissions-monotone-in-load")
def check_emissions_monotone_in_load(
    series: "HourlySeries", extra: "HourlySeries", grid: "GridTrace"
) -> None:
    """A pointwise-larger load never lowers emissions."""
    lo = series.emissions(grid).kg
    hi = (series + extra).emissions(grid).kg
    _require(
        hi >= lo - abs(lo) * REL_TOL,
        "emissions-monotone-in-load",
        f"larger load lowered emissions: {hi} < {lo}",
    )


@substrate_invariant("pue-amplification")
def check_pue_amplification(
    context: "AccountingContext", it_series: "HourlySeries"
) -> None:
    """PUE >= 1 scales operational carbon by exactly PUE, never below IT."""
    from dataclasses import replace

    operational = context.operational(it_series).kg
    unit_pue = replace(context, pue=1.0).operational(it_series).kg
    _require(
        _close(operational, context.pue * unit_pue),
        "pue-amplification",
        f"operational={operational} != pue*it-level={context.pue * unit_pue}",
    )
    _require(
        operational >= unit_pue - abs(unit_pue) * REL_TOL,
        "pue-amplification",
        f"facility carbon {operational} below IT-level carbon {unit_pue}",
    )


# ---------------------------------------------------------------------------
# Substrate invariants: unit-dimension consistency
# ---------------------------------------------------------------------------


@substrate_invariant("static-grid-equivalence")
def check_static_grid_equivalence(
    series: "HourlySeries", intensity: "CarbonIntensity"
) -> None:
    """A flat grid trace and a static intensity are the same physics."""
    from repro.carbon.grid import constant_grid_trace
    from repro.core.context import AccountingContext

    grid = constant_grid_trace(intensity, len(series))
    via_trace = series.emissions(grid).kg
    via_static = AccountingContext(intensity=intensity).operational(series).kg
    via_product = series.total() * intensity.kg_per_kwh
    _require(
        _close(via_trace, via_product) and _close(via_static, via_product),
        "static-grid-equivalence",
        f"trace={via_trace}, static={via_static}, product={via_product} disagree",
    )


@substrate_invariant("integration-exactness")
def check_integration_exactness(series: "HourlySeries") -> None:
    """The hourly Riemann sum is exact: integrate == sum of hourly kWh."""
    _require(
        _close(series.integrate().kwh, float(np.sum(series.values))),
        "integration-exactness",
        f"integrate()={series.integrate().kwh} != sum={float(np.sum(series.values))}",
    )


@substrate_invariant("emissions-bounded-by-intensity-extremes")
def check_emissions_bounds(series: "HourlySeries", grid: "GridTrace") -> None:
    """Emissions lie within [min, max] intensity times total energy."""
    intensity = np.asarray(grid.intensity_kg_per_kwh)
    total = series.total()
    kg = series.emissions(grid).kg
    lo = float(np.min(intensity)) * total
    hi = float(np.max(intensity)) * total
    _require(
        lo - abs(lo) * REL_TOL - 1e-12 <= kg <= hi + abs(hi) * REL_TOL + 1e-12,
        "emissions-bounded-by-intensity-extremes",
        f"emissions {kg} outside [{lo}, {hi}]",
    )


# ---------------------------------------------------------------------------
# Substrate invariants: metamorphic relations
# ---------------------------------------------------------------------------


@substrate_invariant("trace-doubling-doubles-energy")
def check_trace_doubling(series: "HourlySeries", grid: "GridTrace") -> None:
    """Doubling a trace doubles integrated kWh — and, when the grid spans
    exactly the series horizon, doubles emissions too."""
    doubled = series.tile_to(2 * len(series))
    _require(
        _close(doubled.integrate().kwh, 2.0 * series.integrate().kwh),
        "trace-doubling-doubles-energy",
        f"tile_to(2n) energy {doubled.integrate().kwh} != "
        f"2x{series.integrate().kwh}",
    )
    if len(grid) == len(series):
        _require(
            _close(doubled.emissions(grid).kg, 2.0 * series.emissions(grid).kg),
            "trace-doubling-doubles-energy",
            "doubling a horizon-aligned trace did not double emissions",
        )


@substrate_invariant("carbon-aware-never-worse")
def check_carbon_aware_never_worse(
    jobs: list["DeferrableJob"], grid: "GridTrace", horizon_hours: int
) -> None:
    """Uncapacitated carbon-aware scheduling never emits more than FIFO.

    With unlimited capacity the immediate start is always feasible, so the
    greedy per-job minimum is bounded by the immediate placement.
    """
    from repro.scheduling.carbon_aware import schedule_carbon_aware, schedule_immediate

    fifo = schedule_immediate(jobs, grid, horizon_hours).total_carbon.kg
    aware = schedule_carbon_aware(jobs, grid, horizon_hours).total_carbon.kg
    _require(
        aware <= fifo + abs(fifo) * REL_TOL,
        "carbon-aware-never-worse",
        f"carbon-aware schedule emitted more than FIFO: {aware} > {fifo}",
    )


@substrate_invariant("saving-invariant-under-intensity-scaling")
def check_saving_scale_invariance(
    jobs: list["DeferrableJob"], grid: "GridTrace", horizon_hours: int, factor: float
) -> None:
    """Uniformly scaling the grid leaves the *fractional* saving unchanged
    (emissions are linear in intensity, so the ratio cancels)."""
    from repro.carbon.grid import GridTrace
    from repro.scheduling.carbon_aware import (
        carbon_saving,
        schedule_carbon_aware,
        schedule_immediate,
    )

    scaled_grid = GridTrace(
        solar_share=grid.solar_share,
        wind_share=grid.wind_share,
        intensity_kg_per_kwh=np.asarray(grid.intensity_kg_per_kwh) * factor,
        params=grid.params,
    )
    base = carbon_saving(
        schedule_immediate(jobs, grid, horizon_hours),
        schedule_carbon_aware(jobs, grid, horizon_hours),
    )
    scaled = carbon_saving(
        schedule_immediate(jobs, scaled_grid, horizon_hours),
        schedule_carbon_aware(jobs, scaled_grid, horizon_hours),
    )
    _require(
        math.isclose(base, scaled, rel_tol=1e-6, abs_tol=1e-9),
        "saving-invariant-under-intensity-scaling",
        f"saving changed under uniform intensity scaling: {base} -> {scaled}",
    )


@substrate_invariant("fifo-busy-gpu-conservation")
def check_fifo_busy_conservation(
    stream: "ExperimentStream", total_gpus: int, horizon_hours: int
) -> None:
    """Scheduled busy-GPU hours equal the GPU-hours of placed jobs.

    Energy conservation across fleet -> scheduler: every busy GPU-hour the
    cluster reports must be attributable to exactly one placed job record
    (clipped to the horizon), and utilization can never exceed capacity.
    """
    from repro.fleet.scheduler import schedule_fifo

    schedule = schedule_fifo(stream, total_gpus, horizon_hours)
    busy_total = float(np.sum(schedule.busy_gpus))
    attributed = sum(
        record.n_gpus * max(0.0, min(record.end_hour, float(horizon_hours)) - record.start_hour)
        for record in schedule.records
    )
    # Busy hours are sampled at integer hours while jobs end at fractional
    # hours, so per-record attribution uses the sampled convention: a GPU
    # is busy during hour h iff start <= h < end.
    sampled = sum(
        record.n_gpus
        * sum(
            1
            for h in range(horizon_hours)
            if record.start_hour <= h < record.end_hour
        )
        for record in schedule.records
    )
    _require(
        _close(busy_total, float(sampled)),
        "fifo-busy-gpu-conservation",
        f"busy GPU-hours {busy_total} != attributed job hours {sampled} "
        f"(continuous attribution {attributed})",
    )
    _require(
        float(np.max(schedule.busy_gpus, initial=0.0)) <= total_gpus + 1e-9,
        "fifo-busy-gpu-conservation",
        "busy GPUs exceeded cluster capacity",
    )


# ---------------------------------------------------------------------------
# Substrate invariants: the stacked sweep engine
# ---------------------------------------------------------------------------


def _sweep_axis(spec: "SweepSpec", name: str, points: int = 16) -> np.ndarray:
    """A sorted probe axis for ``name``: the spec's own range when swept,
    the full spec-level bounds otherwise."""
    from repro.core.sweep import PARAMETER_BOUNDS

    lo, hi = next(
        ((r.lo, r.hi) for r in spec.ranges if r.name == name),
        PARAMETER_BOUNDS[name],
    )
    return np.linspace(lo, hi, points)


@substrate_invariant("sweep-matches-scalar-path")
def check_sweep_matches_scalar_path(spec: "SweepSpec") -> None:
    """The stacked kernel is **bit-equal** to the scalar reference loop.

    No tolerance: identical IEEE 754 operation ordering must give
    identical bits on every point of the spec's sample set.
    """
    from repro.core.sweep import (
        _reference_evaluate_stacked,
        evaluate_work_stacked,
        sample_points,
    )

    points = sample_points(spec)
    base = spec.base_scenario()
    fast = evaluate_work_stacked(spec.busy_device_hours, base, points)
    slow = _reference_evaluate_stacked(spec.busy_device_hours, base, points)
    for field in ("energy_kwh", "operational_kg", "embodied_kg", "total_kg"):
        stacked, reference = getattr(fast, field), getattr(slow, field)
        _require(
            bool(np.array_equal(stacked, reference)),
            "sweep-matches-scalar-path",
            f"{field} diverged from the scalar path at point(s) "
            f"{np.flatnonzero(stacked != reference)[:5].tolist()}",
        )


@substrate_invariant("sweep-monotone-in-pue")
def check_sweep_monotone_in_pue(spec: "SweepSpec") -> None:
    """Raising PUE (all else fixed) never lowers the total footprint."""
    from repro.core.sweep import evaluate_work_stacked

    axis = _sweep_axis(spec, "pue")
    total = evaluate_work_stacked(
        spec.busy_device_hours, spec.base_scenario(), {"pue": axis}
    ).total_kg
    _require(
        bool(np.all(np.diff(total) >= -np.abs(total[:-1]) * REL_TOL)),
        "sweep-monotone-in-pue",
        f"total fell as PUE rose: {total.tolist()}",
    )


@substrate_invariant("sweep-monotone-in-intensity")
def check_sweep_monotone_in_intensity(spec: "SweepSpec") -> None:
    """A dirtier grid (larger intensity scale) never lowers the total."""
    from repro.core.sweep import evaluate_work_stacked

    axis = _sweep_axis(spec, "intensity_scale")
    total = evaluate_work_stacked(
        spec.busy_device_hours, spec.base_scenario(), {"intensity_scale": axis}
    ).total_kg
    _require(
        bool(np.all(np.diff(total) >= -np.abs(total[:-1]) * REL_TOL)),
        "sweep-monotone-in-intensity",
        f"total fell as grid intensity rose: {total.tolist()}",
    )


@substrate_invariant("sweep-inverse-utilization-scaling")
def check_sweep_inverse_utilization_scaling(spec: "SweepSpec") -> None:
    """Both footprint components scale ~1/utilization, so ``total x u``
    is constant across a utilization axis (the Figure 9 mechanism)."""
    from repro.core.sweep import evaluate_work_stacked

    axis = _sweep_axis(spec, "utilization")
    total = evaluate_work_stacked(
        spec.busy_device_hours, spec.base_scenario(), {"utilization": axis}
    ).total_kg
    product = total * axis
    _require(
        bool(np.all(np.isclose(product, product[0], rtol=REL_TOL, atol=1e-12))),
        "sweep-inverse-utilization-scaling",
        f"total x utilization is not constant: {product.tolist()}",
    )


@substrate_invariant("sweep-embodied-additivity")
def check_sweep_embodied_additivity(spec: "SweepSpec") -> None:
    """``total = operational + embodied`` pointwise, and both components
    are linear in the work quantum (halving the work halves each)."""
    from repro.core.sweep import evaluate_work_stacked, sample_points

    points = sample_points(spec)
    base = spec.base_scenario()
    whole = evaluate_work_stacked(spec.busy_device_hours, base, points)
    _require(
        bool(
            np.array_equal(
                whole.total_kg, whole.operational_kg + whole.embodied_kg
            )
        ),
        "sweep-embodied-additivity",
        "total_kg is not operational + embodied",
    )
    half = evaluate_work_stacked(spec.busy_device_hours / 2.0, base, points)
    for field in ("operational_kg", "embodied_kg"):
        twice = getattr(half, field) * 2.0
        _require(
            bool(
                np.all(
                    np.isclose(
                        twice, getattr(whole, field), rtol=REL_TOL, atol=1e-12
                    )
                )
            ),
            "sweep-embodied-additivity",
            f"{field} is not linear in the work quantum",
        )


# ---------------------------------------------------------------------------
# Substrate invariants: streaming incremental accounting
# ---------------------------------------------------------------------------


@substrate_invariant("stream-matches-batch-replay")
def check_stream_matches_batch_replay(spec: "StreamSpec", cut_fraction: float) -> None:
    """The O(Δ) incremental fold is **bit-equal** to batch replay.

    At an arbitrary mid-stream checkpoint and at the end of the feed,
    the running :class:`~repro.core.incremental.IncrementalAccounting`
    snapshot must ``==`` a full
    :func:`~repro.core.incremental.reference_replay` of the same tick
    prefix — exact float equality, no tolerance, late arrivals and
    revisions included.
    """
    from repro.carbon.stream import load_profile, simulate_tick_trace
    from repro.core.incremental import IncrementalAccounting, reference_replay

    ticks = simulate_tick_trace(spec)
    load = load_profile(spec)
    acc = IncrementalAccounting(load, pue=spec.pue, window_hours=spec.window_hours)
    cut = int(round(min(max(cut_fraction, 0.0), 1.0) * len(ticks)))
    folded = 0
    for point in sorted({cut, len(ticks)}):
        for tick in ticks[folded:point]:
            acc.fold(tick.hour, tick.intensity_kg_per_kwh)
        folded = point
        snap = acc.snapshot()
        ref = reference_replay(
            load,
            [(t.hour, t.intensity_kg_per_kwh) for t in ticks[:point]],
            pue=spec.pue,
            window_hours=spec.window_hours,
        )
        _require(
            snap == ref,
            "stream-matches-batch-replay",
            f"incremental fold diverged from replay at tick {point}/"
            f"{len(ticks)}: {snap} != {ref}",
        )


@substrate_invariant("stream-revision-rollback-exact")
def check_stream_revision_rollback(spec: "StreamSpec") -> None:
    """A revision leaves no residue: the state after observe-then-revise
    is bit-equal to one that only ever saw each hour's final value.

    This is the O(1-window) rollback claim — overwriting a preliminary
    intensity must reproduce exactly the aggregates of a feed that was
    never wrong, not merely approximate them.
    """
    from dataclasses import replace

    from repro.carbon.stream import load_profile, simulate_tick_trace
    from repro.core.incremental import IncrementalAccounting

    ticks = simulate_tick_trace(spec)
    load = load_profile(spec)
    noisy = IncrementalAccounting(load, pue=spec.pue, window_hours=spec.window_hours)
    noisy.fold_many((t.hour, t.intensity_kg_per_kwh) for t in ticks)
    final_values: dict[int, float] = {}
    for tick in ticks:
        final_values[tick.hour] = tick.intensity_kg_per_kwh
    clean = IncrementalAccounting(load, pue=spec.pue, window_hours=spec.window_hours)
    clean.fold_many(sorted(final_values.items()))
    snap, ideal = noisy.snapshot(), clean.snapshot()
    _require(
        replace(snap, ticks_folded=ideal.ticks_folded) == ideal,
        "stream-revision-rollback-exact",
        f"revised stream left residue: {snap} != {ideal} "
        "(modulo tick count)",
    )
    for hour in final_values:
        _require(
            noisy.intensity_at(hour) == clean.intensity_at(hour),
            "stream-revision-rollback-exact",
            f"hour {hour} retained a pre-revision intensity "
            f"{noisy.intensity_at(hour)} != {clean.intensity_at(hour)}",
        )


# ---------------------------------------------------------------------------
# Substrate invariants: the fabric's consistent-hash ring
# ---------------------------------------------------------------------------


@substrate_invariant("ring-balance")
def check_ring_balance(nodes: tuple) -> None:
    """At :data:`~repro.service.hashring.DEFAULT_VNODES` virtual points the
    largest arc share stays under 2x the mean and the smallest above an
    eighth of it — no replica is a hotspot or a ghost."""
    from repro.service.hashring import HashRing

    shares = HashRing(nodes).shares()
    mean = 1.0 / len(shares)
    _require(
        _close(sum(shares.values()), 1.0),
        "ring-balance",
        f"shares sum to {sum(shares.values())}, not 1.0",
    )
    _require(
        max(shares.values()) <= 2.0 * mean,
        "ring-balance",
        f"largest share {max(shares.values())} exceeds 2x the mean {mean}",
    )
    _require(
        min(shares.values()) >= mean / 8.0,
        "ring-balance",
        f"smallest share {min(shares.values())} is below mean/8 ({mean / 8.0})",
    )


@substrate_invariant("ring-minimal-disruption-join")
def check_ring_minimal_disruption_join(
    nodes: tuple, new_node: str, keys: Iterable[str]
) -> None:
    """Adding a node remaps a key only if the new node now owns it —
    every other key keeps its owner (and its warm caches)."""
    from repro.service.hashring import HashRing

    before = HashRing(nodes)
    after = HashRing(nodes)
    after.add(new_node)
    for key in keys:
        old_owner, new_owner = before.owner(key), after.owner(key)
        _require(
            new_owner == old_owner or new_owner == new_node,
            "ring-minimal-disruption-join",
            f"key {key!r} moved {old_owner!r} -> {new_owner!r} when "
            f"{new_node!r} joined (only moves *to* the joiner are lawful)",
        )


@substrate_invariant("ring-minimal-disruption-leave")
def check_ring_minimal_disruption_leave(
    nodes: tuple, victim: str, keys: Iterable[str]
) -> None:
    """Removing a node remaps only the keys it owned; every surviving
    node keeps its entire shard."""
    from repro.service.hashring import HashRing

    before = HashRing(nodes)
    after = HashRing(nodes)
    after.remove(victim)
    for key in keys:
        old_owner = before.owner(key)
        if old_owner != victim:
            new_owner = after.owner(key)
            _require(
                new_owner == old_owner,
                "ring-minimal-disruption-leave",
                f"key {key!r} moved {old_owner!r} -> {new_owner!r} though "
                f"only {victim!r} left the ring",
            )


@substrate_invariant("ring-preference-distinct")
def check_ring_preference_distinct(nodes: tuple, key: str) -> None:
    """A key's preference list is a permutation of the nodes with its
    owner first — the failover order visits everyone exactly once."""
    from repro.service.hashring import HashRing

    ring = HashRing(nodes)
    order = ring.preference(key)
    _require(
        len(order) == len(ring) and set(order) == set(ring.nodes),
        "ring-preference-distinct",
        f"preference {order!r} is not a permutation of {ring.nodes!r}",
    )
    _require(
        order[0] == ring.owner(key),
        "ring-preference-distinct",
        f"preference head {order[0]!r} is not the owner {ring.owner(key)!r}",
    )


# ---------------------------------------------------------------------------
# Substrate invariants: GenAI training and serving workloads
# ---------------------------------------------------------------------------


@substrate_invariant("genai-training-energy-monotone-in-tokens")
def check_genai_tokens_monotone(spec, factor: float) -> None:
    """Training energy is exactly linear in the token budget: scaling
    ``n_tokens`` by ``factor > 1`` scales IT energy by the same factor
    (the FLOPs model is 6 * params * tokens and everything downstream is
    proportional)."""
    from dataclasses import replace

    base = spec.it_energy.joules
    scaled = replace(spec, n_tokens=spec.n_tokens * factor).it_energy.joules
    _require(
        scaled > base,
        "genai-training-energy-monotone-in-tokens",
        f"{factor}x tokens did not increase energy ({base} -> {scaled})",
    )
    _require(
        _close(scaled, base * factor),
        "genai-training-energy-monotone-in-tokens",
        f"energy is not linear in tokens: {scaled} != {factor} * {base}",
    )


@substrate_invariant("genai-training-energy-inverse-in-mfu")
def check_genai_mfu_inverse(spec, factor: float) -> None:
    """Halving achieved MFU doubles device-hours and therefore energy:
    ``E(mfu / f) == f * E(mfu)`` for ``f > 1`` — utilization only changes
    how long the accelerators run, never the work itself."""
    from dataclasses import replace

    base = spec.it_energy.joules
    degraded = replace(spec, mfu=spec.mfu / factor).it_energy.joules
    _require(
        degraded > base,
        "genai-training-energy-inverse-in-mfu",
        f"lower MFU did not increase energy ({base} -> {degraded})",
    )
    _require(
        _close(degraded, base * factor),
        "genai-training-energy-inverse-in-mfu",
        f"energy is not inverse in MFU: {degraded} != {factor} * {base}",
    )


@substrate_invariant("genai-checkpoint-overhead-vanishes")
def check_genai_checkpoint_overhead(spec) -> None:
    """Checkpoint overhead is non-negative, monotone non-increasing in the
    write component as the interval stretches, and vanishes in the
    infinite-interval limit (write overhead is ``cost / interval``)."""
    from dataclasses import replace

    _require(
        spec.restart_overhead_fraction >= 0.0,
        "genai-checkpoint-overhead-vanishes",
        f"negative checkpoint overhead {spec.restart_overhead_fraction}",
    )
    stretched = replace(
        spec, checkpoint_interval_hours=spec.checkpoint_interval_hours * 10.0
    )
    _require(
        stretched.checkpoint_write_overhead <= spec.checkpoint_write_overhead,
        "genai-checkpoint-overhead-vanishes",
        "write overhead grew when the interval stretched "
        f"({spec.checkpoint_write_overhead} -> "
        f"{stretched.checkpoint_write_overhead})",
    )
    limit = replace(spec, checkpoint_interval_hours=1e12)
    _require(
        limit.checkpoint_write_overhead <= 1e-9,
        "genai-checkpoint-overhead-vanishes",
        "write overhead did not vanish as interval -> inf "
        f"(got {limit.checkpoint_write_overhead})",
    )


@substrate_invariant("genai-serving-energy-additive-in-qps")
def check_genai_serving_additive(spec, split: float) -> None:
    """Splitting a serving fleet's traffic across two deployments conserves
    IT energy: ``E(q) == E(s * q) + E((1 - s) * q)`` for any split
    ``s`` in (0, 1) — the diurnal shape is shared, so tokens (and joules)
    partition exactly."""
    from repro.workloads.genai import scale_qps

    whole = spec.it_series().integrate().joules
    left = scale_qps(spec, split).it_series().integrate().joules
    right = scale_qps(spec, 1.0 - split).it_series().integrate().joules
    _require(
        _close(whole, left + right),
        "genai-serving-energy-additive-in-qps",
        f"QPS split {split} is not additive: {left} + {right} != {whole}",
    )


@substrate_invariant("genai-crossover-metamorphic")
def check_genai_crossover_metamorphic(
    training_spec, serving_spec, context, factor: float
) -> None:
    """Doubling lifetime traffic moves the training-vs-inference crossover
    earlier — and, because serving carbon is linear in QPS, scaling QPS by
    ``factor > 1`` divides the crossover day count by exactly ``factor``."""
    from repro.workloads.genai import lifetime_crossover, scale_qps

    base = lifetime_crossover(training_spec, serving_spec, context)
    scaled = lifetime_crossover(
        training_spec, scale_qps(serving_spec, factor), context
    )
    _require(
        scaled.crossover_days < base.crossover_days,
        "genai-crossover-metamorphic",
        f"{factor}x QPS did not move the crossover earlier "
        f"({base.crossover_days} -> {scaled.crossover_days})",
    )
    _require(
        _close(scaled.crossover_days * factor, base.crossover_days),
        "genai-crossover-metamorphic",
        f"crossover is not inverse in QPS: {scaled.crossover_days} * "
        f"{factor} != {base.crossover_days}",
    )


# ---------------------------------------------------------------------------
# Result invariants: swept over every registered experiment
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Violation:
    """One result-invariant violation on one experiment."""

    experiment_id: str
    invariant: str
    metric: str = ""
    detail: str = ""


#: Headline-name fragments that denote a physical, sign-definite quantity.
_NONNEGATIVE_PATTERN = re.compile(
    r"(_kg\b|_kg_|_tonnes\b|_kwh\b|_mwh\b|share|fraction|utilization|_hours\b)"
)

#: Fragments denoting a dimensionless proportion bounded by 1.
_UNIT_INTERVAL_PATTERN = re.compile(r"(share|fraction|utilization)")


@result_invariant("finite-headline-metrics")
def check_finite_headline(result: "ExperimentResult") -> list[Violation]:
    """Every headline metric is a finite number."""
    return [
        Violation(
            result.experiment_id,
            "finite-headline-metrics",
            metric,
            f"non-finite value {value!r}",
        )
        for metric, value in result.headline.items()
        if not math.isfinite(value)
    ]


@result_invariant("nonnegative-physical-metrics")
def check_nonnegative_metrics(result: "ExperimentResult") -> list[Violation]:
    """Metrics naming a mass/energy/share dimension are never negative."""
    return [
        Violation(
            result.experiment_id,
            "nonnegative-physical-metrics",
            metric,
            f"negative physical quantity {value!r}",
        )
        for metric, value in result.headline.items()
        if _NONNEGATIVE_PATTERN.search(metric)
        and math.isfinite(value)
        and value < 0.0
    ]


@result_invariant("shares-bounded-by-one")
def check_shares_bounded(result: "ExperimentResult") -> list[Violation]:
    """Shares, fractions, and utilizations are proportions in [0, 1]."""
    return [
        Violation(
            result.experiment_id,
            "shares-bounded-by-one",
            metric,
            f"proportion {value!r} outside [0, 1]",
        )
        for metric, value in result.headline.items()
        if _UNIT_INTERVAL_PATTERN.search(metric)
        and math.isfinite(value)
        and not (-1e-9 <= value <= 1.0 + 1e-9)
    ]


@result_invariant("payload-round-trip")
def check_payload_round_trip(result: "ExperimentResult") -> list[Violation]:
    """``from_payload(to_payload(r))`` preserves id, headline, and shape."""
    from repro.experiments.base import ExperimentResult

    restored = ExperimentResult.from_payload(result.to_payload())
    violations = []
    if restored.experiment_id != result.experiment_id:
        violations.append(
            Violation(result.experiment_id, "payload-round-trip", detail="id changed")
        )
    if restored.headline != result.headline:
        violations.append(
            Violation(
                result.experiment_id,
                "payload-round-trip",
                detail="headline metrics changed across serialization",
            )
        )
    if len(restored.rows) != len(result.rows) or list(restored.headers) != list(
        result.headers
    ):
        violations.append(
            Violation(
                result.experiment_id,
                "payload-round-trip",
                detail="table shape changed across serialization",
            )
        )
    return violations


@result_invariant("nonempty-identity")
def check_nonempty_identity(result: "ExperimentResult") -> list[Violation]:
    """Every result names itself and reports at least one headline metric."""
    violations = []
    if not result.experiment_id or not result.title:
        violations.append(
            Violation(
                result.experiment_id,
                "nonempty-identity",
                detail="missing experiment id or title",
            )
        )
    if not result.headline:
        violations.append(
            Violation(
                result.experiment_id,
                "nonempty-identity",
                detail="no headline metrics reported",
            )
        )
    return violations


@result_invariant("genai-scenario-consistency")
def check_genai_scenarios(result: "ExperimentResult") -> list[Violation]:
    """The genai experiments' headline metrics obey the workload laws:
    doubling lifetime QPS moves the crossover to exactly half the days,
    and the Young/Daly interval minimizes checkpoint overhead."""
    violations = []
    h = result.headline
    if result.experiment_id == "ext-genai-crossover":
        base, doubled = h["crossover_days_base"], h["crossover_days_2x_qps"]
        if not doubled < base:
            violations.append(
                Violation(
                    result.experiment_id,
                    "genai-scenario-consistency",
                    "crossover_days_2x_qps",
                    f"2x QPS did not move the crossover earlier "
                    f"({base} -> {doubled})",
                )
            )
        if not _close(doubled * 2.0, base):
            violations.append(
                Violation(
                    result.experiment_id,
                    "genai-scenario-consistency",
                    "crossover_days_2x_qps",
                    f"crossover is not inverse in QPS: {doubled} * 2 != {base}",
                )
            )
    if result.experiment_id == "ext-genai-checkpoint":
        if not h["overhead_fraction_at_optimum"] <= h["overhead_fraction_at_1h"]:
            violations.append(
                Violation(
                    result.experiment_id,
                    "genai-scenario-consistency",
                    "overhead_fraction_at_optimum",
                    "the Young/Daly interval does not minimize overhead",
                )
            )
    return violations


# ---------------------------------------------------------------------------
# Sweeping and reporting
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InvariantReport:
    """Outcome of sweeping the result invariants over a set of results."""

    violations: tuple[Violation, ...]
    n_experiments: int
    n_invariants: int

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        """Readable report: summary line plus one row per violation."""
        summary = (
            f"invariant sweep: {self.n_invariants} invariant(s) x "
            f"{self.n_experiments} experiment(s)"
        )
        if self.ok:
            return f"{summary}\nOK — all invariants hold"
        rows = [
            [v.experiment_id, v.invariant, v.metric or "-", v.detail]
            for v in self.violations
        ]
        table = format_table(["experiment", "invariant", "metric", "detail"], rows)
        return "\n".join(
            [summary, f"VIOLATED — {len(self.violations)} violation(s)", "", table]
        )


def check_result(result: "ExperimentResult") -> list[Violation]:
    """Run every registered result invariant against one result."""
    violations: list[Violation] = []
    for name in result_invariant_names():
        violations.extend(RESULT_INVARIANTS[name](result))
    return violations


def check_results(
    results: Mapping[str, "ExperimentResult"] | Iterable["ExperimentResult"],
) -> InvariantReport:
    """Sweep the result invariants over many results."""
    if isinstance(results, Mapping):
        results = results.values()
    results = list(results)
    violations: list[Violation] = []
    for result in results:
        violations.extend(check_result(result))
    return InvariantReport(
        violations=tuple(violations),
        n_experiments=len(results),
        n_invariants=len(RESULT_INVARIANTS),
    )
