"""First-class verification subsystem: strategies, invariants, faults.

Three layers of executable correctness guarantees for the accounting
engine and the experiment runner:

* :mod:`repro.testing.strategies` — a Hypothesis strategy library that
  generates valid accounting substrates (hourly series, grid traces,
  accounting contexts, deferrable-job batches, experiment streams) for
  property-based testing;
* :mod:`repro.testing.invariants` — a registry of named, machine-checkable
  physical laws (energy conservation, operational + embodied additivity,
  monotonicity, metamorphic relations).  Substrate invariants run as a
  Hypothesis property suite; result invariants sweep every registered
  experiment's headline metrics via ``sustainable-ai ... --check-invariants``;
* :mod:`repro.testing.faults` — an injectable fault harness (worker crash,
  raise, timeout, memo-cache corruption) for hardening the parallel runner.

Only :mod:`~repro.testing.strategies` and :mod:`~repro.testing.profiles`
require the ``hypothesis`` dev extra; the invariant registry and the fault
harness are importable with the runtime dependencies alone.
"""

from repro.testing.invariants import (
    InvariantViolation,
    InvariantReport,
    Violation,
    check_result,
    check_results,
    result_invariant_names,
    substrate_invariant_names,
)

__all__ = [
    "InvariantViolation",
    "InvariantReport",
    "Violation",
    "check_result",
    "check_results",
    "result_invariant_names",
    "substrate_invariant_names",
]
