"""Carbon-aware multi-objective model search (Section IV-B).

"Energy and carbon footprint can be directly incorporated into the cost
function as optimization objectives to enable discovery of
environmentally-friendly models."

A small working NSGA-style evolutionary search over a synthetic
architecture space with two objectives — prediction error and energy per
inference — plus a single-objective (accuracy-only) baseline.  The
comparison the paper argues for: the accuracy-only search lands on the
high-energy corner; the bi-objective search surfaces a frontier where
most of the accuracy is available at a fraction of the energy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import UnitError
from repro.models.scaling_laws import pareto_front as pareto_mask_2d


@dataclass(frozen=True, slots=True)
class ArchitectureSpace:
    """Synthetic design space: x in [0,1]^d maps to (error, energy).

    Error falls with "capacity" dimensions (diminishing returns); energy
    grows superlinearly with the same dimensions, and some dimensions are
    efficiency tricks that cut energy with only a small error penalty —
    giving the space a genuine Pareto frontier.
    """

    n_dims: int = 6
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_dims < 2:
            raise UnitError("space needs at least 2 dimensions")

    def _weights(self) -> tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng(self.seed)
        accuracy_w = rng.uniform(0.4, 1.0, self.n_dims)
        energy_w = rng.uniform(0.3, 1.2, self.n_dims)
        # The last dimensions are "efficiency tricks": they reduce energy
        # and barely hurt accuracy.
        k = max(1, self.n_dims // 3)
        accuracy_w[-k:] *= -0.05
        energy_w[-k:] *= -0.8
        return accuracy_w, energy_w

    def evaluate(self, x: np.ndarray) -> tuple[float, float]:
        """(error, energy per inference in J) of one design point."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.n_dims,):
            raise UnitError(f"expected a {self.n_dims}-vector")
        if np.any((x < 0) | (x > 1)):
            raise UnitError("design variables must be in [0, 1]")
        acc_w, en_w = self._weights()
        capacity = float(np.dot(acc_w, x))
        error = 0.08 + 0.30 * np.exp(-1.6 * capacity)
        energy = 0.4 + 2.2 * np.exp(0.9 * float(np.dot(en_w, x))) / np.e
        return float(error), float(energy)


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one multi-objective search run."""

    points: np.ndarray  # (n, 2): error, energy
    designs: np.ndarray  # (n, d)
    evaluations: int

    def front(self) -> np.ndarray:
        return self.points[pareto_mask_2d(self.points)]

    def best_error(self) -> float:
        return float(np.min(self.points[:, 0]))

    def min_energy_within(self, error_slack: float) -> float:
        """Lowest energy among designs within ``error_slack`` of the best."""
        threshold = self.best_error() + error_slack
        ok = self.points[:, 0] <= threshold
        return float(np.min(self.points[ok, 1]))


def nsga_lite(
    space: ArchitectureSpace,
    population: int = 40,
    generations: int = 25,
    mutation: float = 0.15,
    seed: int = 0,
) -> SearchResult:
    """A compact elitist evolutionary multi-objective search.

    Selection keeps the non-dominated set (padded with random survivors);
    offspring come from uniform crossover + Gaussian mutation.  Small and
    dependency-free rather than a full NSGA-II, which is all the
    demonstration needs.
    """
    if population < 4 or generations < 1:
        raise UnitError("population >= 4 and generations >= 1 required")
    rng = np.random.default_rng(seed)
    designs = rng.uniform(0, 1, (population, space.n_dims))
    evaluations = 0

    all_points: list[np.ndarray] = []
    all_designs: list[np.ndarray] = []

    for _ in range(generations):
        points = np.array([space.evaluate(x) for x in designs])
        evaluations += len(designs)
        all_points.append(points)
        all_designs.append(designs.copy())

        mask = pareto_mask_2d(points)
        elite = designs[mask]
        if len(elite) < 2:
            extra = designs[rng.choice(len(designs), 2, replace=False)]
            elite = np.vstack([elite, extra])

        children = []
        while len(children) < population:
            a, b = elite[rng.choice(len(elite), 2, replace=True)]
            pick = rng.random(space.n_dims) < 0.5
            child = np.where(pick, a, b)
            child = np.clip(child + rng.normal(0, mutation, space.n_dims), 0, 1)
            children.append(child)
        designs = np.array(children)

    return SearchResult(
        points=np.vstack(all_points),
        designs=np.vstack(all_designs),
        evaluations=evaluations,
    )


def accuracy_only_search(
    space: ArchitectureSpace, n_trials: int = 1000, seed: int = 0
) -> SearchResult:
    """Random search selecting purely on error (the status-quo workflow)."""
    if n_trials <= 0:
        raise UnitError("trial count must be positive")
    rng = np.random.default_rng(seed)
    designs = rng.uniform(0, 1, (n_trials, space.n_dims))
    points = np.array([space.evaluate(x) for x in designs])
    return SearchResult(points=points, designs=designs, evaluations=n_trials)


def carbon_aware_gain(
    space: ArchitectureSpace | None = None,
    error_slack: float = 0.01,
    seed: int = 0,
) -> dict[str, float]:
    """The paper's argument as numbers.

    Compares the energy of the accuracy-only pick against the
    multi-objective frontier's pick within ``error_slack`` of the best
    error.  Returns the energy saving factor.
    """
    space = space or ArchitectureSpace()
    mo = nsga_lite(space, seed=seed)
    so = accuracy_only_search(space, n_trials=mo.evaluations, seed=seed)

    # The accuracy-only workflow deploys its best-error design, whatever
    # that costs in energy.
    best_idx = int(np.argmin(so.points[:, 0]))
    so_energy = float(so.points[best_idx, 1])
    so_error = float(so.points[best_idx, 0])

    mo_energy = mo.min_energy_within(error_slack)
    return {
        "accuracy_only_error": so_error,
        "accuracy_only_energy": so_energy,
        "carbon_aware_energy": mo_energy,
        "energy_saving_factor": so_energy / mo_energy,
        "error_slack": error_slack,
    }
