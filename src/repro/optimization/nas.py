"""NAS / hyper-parameter search cost models and a working optimizer.

Section IV-B: "grid-search NAS can incur over 3000x environmental
footprint overhead" (Strubell et al.), while "much more sample-efficient
NAS and HPO methods translate directly into carbon footprint
improvement".

Two layers:

* **cost accounting** — trials x cost-per-trial for grid / random /
  Bayesian strategies, with the published grid-search overhead as anchor;
* **a working optimizer** — random search and a lightweight Bayesian
  optimizer (Gaussian-kernel surrogate + expected-improvement-style
  acquisition, no external dependencies) run against a synthetic response
  surface, demonstrating the sample-efficiency gap empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import UnitError

#: Strubell et al.'s evolved-transformer NAS overhead vs one training run.
GRID_SEARCH_OVERHEAD = 3000.0


@dataclass(frozen=True, slots=True)
class SearchCost:
    """Search footprint in units of one full training run."""

    strategy: str
    trials: int
    cost_per_trial: float = 1.0

    def __post_init__(self) -> None:
        if self.trials <= 0:
            raise UnitError("trial count must be positive")
        if self.cost_per_trial <= 0:
            raise UnitError("per-trial cost must be positive")

    @property
    def total_cost(self) -> float:
        return self.trials * self.cost_per_trial

    def overhead_vs(self, single_run_cost: float = 1.0) -> float:
        if single_run_cost <= 0:
            raise UnitError("single-run cost must be positive")
        return self.total_cost / single_run_cost


def grid_search_cost(points_per_dim: int, n_dims: int) -> SearchCost:
    """Full-factorial grid: trials explode exponentially in dimensions."""
    if points_per_dim <= 0 or n_dims <= 0:
        raise UnitError("grid dimensions must be positive")
    return SearchCost("grid", points_per_dim**n_dims)


# ---------------------------------------------------------------------------
# Working optimizers on a synthetic response surface
# ---------------------------------------------------------------------------
def default_response_surface(x: np.ndarray) -> float:
    """A smooth multi-modal loss over [0, 1]^d with one global optimum."""
    x = np.asarray(x, dtype=float)
    bowl = np.sum((x - 0.67) ** 2)
    ripple = 0.08 * np.sum(np.sin(9.0 * np.pi * x))
    return float(bowl + ripple + 0.15)


@dataclass(frozen=True)
class SearchOutcome:
    """Result of one search run."""

    strategy: str
    best_value: float
    best_x: np.ndarray
    evaluations: int
    history: np.ndarray  # best-so-far after each evaluation


def random_search(
    objective: Callable[[np.ndarray], float],
    n_dims: int,
    n_trials: int,
    seed: int = 0,
) -> SearchOutcome:
    """Uniform random search over [0, 1]^d."""
    if n_trials <= 0 or n_dims <= 0:
        raise UnitError("trials and dimensions must be positive")
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0.0, 1.0, size=(n_trials, n_dims))
    values = np.array([objective(x) for x in xs])
    history = np.minimum.accumulate(values)
    best = int(np.argmin(values))
    return SearchOutcome("random", float(values[best]), xs[best], n_trials, history)


def bayesian_search(
    objective: Callable[[np.ndarray], float],
    n_dims: int,
    n_trials: int,
    n_init: int = 8,
    n_candidates: int = 256,
    lengthscale: float = 0.2,
    explore: float = 1.2,
    seed: int = 0,
) -> SearchOutcome:
    """A minimal Bayesian optimizer (kernel-regression surrogate + LCB).

    The surrogate is Nadaraya-Watson regression with a Gaussian kernel; an
    uncertainty proxy (inverse kernel mass) drives a lower-confidence-bound
    acquisition.  Deliberately simple — the point is sample efficiency
    relative to random/grid, not SOTA BO.
    """
    if n_trials <= n_init:
        raise UnitError("need more trials than initial samples")
    rng = np.random.default_rng(seed)
    xs = list(rng.uniform(0.0, 1.0, size=(n_init, n_dims)))
    ys = [objective(x) for x in xs]

    for _ in range(n_trials - n_init):
        X = np.vstack(xs)
        y = np.array(ys)
        candidates = rng.uniform(0.0, 1.0, size=(n_candidates, n_dims))
        d2 = np.sum((candidates[:, None, :] - X[None, :, :]) ** 2, axis=2)
        weights = np.exp(-d2 / (2.0 * lengthscale**2))
        mass = weights.sum(axis=1)
        mu = np.where(mass > 1e-12, weights @ y / np.maximum(mass, 1e-12), y.mean())
        sigma = 1.0 / np.sqrt(1.0 + mass)
        acquisition = mu - explore * sigma * y.std()
        pick = candidates[int(np.argmin(acquisition))]
        xs.append(pick)
        ys.append(objective(pick))

    values = np.array(ys)
    history = np.minimum.accumulate(values)
    best = int(np.argmin(values))
    return SearchOutcome(
        "bayesian", float(values[best]), np.vstack(xs)[best], n_trials, history
    )


def trials_to_reach(outcome: SearchOutcome, threshold: float) -> int | None:
    """Evaluations needed for best-so-far <= threshold (None if never)."""
    hits = np.nonzero(outcome.history <= threshold)[0]
    return int(hits[0]) + 1 if len(hits) else None


def sample_efficiency_gain(
    objective: Callable[[np.ndarray], float] = default_response_surface,
    n_dims: int = 3,
    n_trials: int = 300,
    threshold: float = 0.02,
    n_seeds: int = 5,
) -> dict[str, float]:
    """Median trials-to-threshold for random vs Bayesian, plus the ratio.

    The paper's claim in miniature: sample-efficient search reaches the
    same quality with a fraction of the trials (== carbon).
    """
    random_trials, bayes_trials = [], []
    for seed in range(n_seeds):
        r = trials_to_reach(random_search(objective, n_dims, n_trials, seed), threshold)
        b = trials_to_reach(bayesian_search(objective, n_dims, n_trials, seed=seed), threshold)
        random_trials.append(r if r is not None else n_trials * 2)
        bayes_trials.append(b if b is not None else n_trials * 2)
    random_med = float(np.median(random_trials))
    bayes_med = float(np.median(bayes_trials))
    return {
        "random_trials": random_med,
        "bayesian_trials": bayes_med,
        "efficiency_gain": random_med / bayes_med,
    }
