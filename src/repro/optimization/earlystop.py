"""Early stopping of under-performing training workflows (Section IV-B).

"By detecting and stopping under-performing training workflows early,
unnecessary training cycles can be eliminated."

The model: a sweep of N workflows with synthetic learning curves (power-law
loss decay toward a per-workflow asymptote).  A monitor checkpoints every
``check_interval`` steps and kills workflows whose current loss trails the
current best-so-far final estimate by more than a tolerance.  Reported:
GPU-hours (and thus energy/carbon) saved, and whether the eventual best
workflow survived (regret).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class LearningCurveModel:
    """Synthetic sweep: loss_i(t) = floor_i + span_i * (1 + t/tau_i)^-p_i."""

    n_workflows: int = 64
    total_steps: int = 1000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_workflows <= 0 or self.total_steps <= 1:
            raise UnitError("sweep needs workflows and steps")

    def curves(self) -> np.ndarray:
        """(n_workflows, total_steps) loss trajectories."""
        rng = np.random.default_rng(self.seed)
        floors = rng.uniform(0.05, 0.50, self.n_workflows)
        spans = rng.uniform(0.5, 2.0, self.n_workflows)
        taus = rng.uniform(20.0, 200.0, self.n_workflows)
        powers = rng.uniform(0.4, 1.2, self.n_workflows)
        t = np.arange(self.total_steps)[None, :]
        curves = floors[:, None] + spans[:, None] * (
            1.0 + t / taus[:, None]
        ) ** (-powers[:, None])
        noise = rng.normal(0.0, 0.01, curves.shape)
        return curves + noise


@dataclass(frozen=True, slots=True)
class EarlyStopPolicy:
    """Kill workflows trailing the current leader by ``tolerance``.

    Checks happen every ``check_interval`` steps starting at
    ``warmup_steps`` (no one is killed before warm-up).
    """

    check_interval: int = 100
    warmup_steps: int = 100
    tolerance: float = 0.15

    def __post_init__(self) -> None:
        if self.check_interval <= 0 or self.warmup_steps < 0:
            raise UnitError("intervals must be positive")
        if self.tolerance < 0:
            raise UnitError("tolerance must be non-negative")


@dataclass(frozen=True)
class EarlyStopResult:
    """Outcome of running a policy over a sweep."""

    steps_used: np.ndarray
    total_steps: int
    best_survived: bool
    best_final_loss: float
    selected_final_loss: float

    @property
    def compute_saving_fraction(self) -> float:
        full = self.total_steps * len(self.steps_used)
        return 1.0 - float(np.sum(self.steps_used)) / full

    @property
    def regret(self) -> float:
        """Loss gap between the selected survivor and the true best."""
        return self.selected_final_loss - self.best_final_loss


def run_early_stopping(
    model: LearningCurveModel | None = None,
    policy: EarlyStopPolicy | None = None,
) -> EarlyStopResult:
    """Execute the early-stopping policy over a synthetic sweep."""
    model = model or LearningCurveModel()
    policy = policy or EarlyStopPolicy()
    curves = model.curves()
    n, total = curves.shape

    alive = np.ones(n, dtype=bool)
    steps_used = np.full(n, total)
    for step in range(policy.warmup_steps, total, policy.check_interval):
        current = curves[:, step]
        leader = float(np.min(current[alive]))
        to_kill = alive & (current > leader + policy.tolerance)
        steps_used[to_kill] = step
        alive &= ~to_kill
        if np.sum(alive) == 1:
            break

    final = curves[:, -1]
    best_idx = int(np.argmin(final))
    survivors = np.nonzero(alive)[0]
    # The selected model: best final loss among survivors (they ran fully).
    selected_idx = int(survivors[np.argmin(final[survivors])])
    return EarlyStopResult(
        steps_used=steps_used,
        total_steps=total,
        best_survived=bool(alive[best_idx]),
        best_final_loss=float(final[best_idx]),
        selected_final_loss=float(final[selected_idx]),
    )


def sweep_tolerance(
    tolerances: np.ndarray,
    model: LearningCurveModel | None = None,
) -> list[tuple[float, float, float]]:
    """(tolerance, compute saving, regret) triples — the ablation curve."""
    model = model or LearningCurveModel()
    out = []
    for tol in np.asarray(tolerances, dtype=float):
        result = run_early_stopping(model, EarlyStopPolicy(tolerance=float(tol)))
        out.append((float(tol), result.compute_saving_fraction, result.regret))
    return out
