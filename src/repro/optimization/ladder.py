"""The cross-stack optimization ladder (Figure 7).

For the Transformer-based universal language model (LM), the paper
reports a sequence of deployment optimizations that compound to reduce
the infrastructure needed to serve the task at fixed quality and traffic:

1. **platform-level caching** of pre-computed embeddings: 6.7x
2. **GPU acceleration** (specialized AI hardware): 10.1x
3. **low precision** (fp32 -> fp16 on the accelerator): 2.4x
4. **fused kernels** (custom single-kernel Transformer encoder): 5.0x

compounding to 6.7 * 10.1 * 2.4 * 5.0 ≈ 812x ("more than 800x"; the
takeaways round to 810x).  A ladder turns a baseline power footprint into
a step-by-step series — the exact bars of Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quantities import Energy, Power
from repro.errors import UnitError


@dataclass(frozen=True, slots=True)
class OptimizationStep:
    """One ladder rung: a named multiplicative efficiency gain (>1)."""

    name: str
    gain: float
    area: str = "platform"

    def __post_init__(self) -> None:
        if self.gain <= 0:
            raise UnitError(f"gain must be positive, got {self.gain}")


@dataclass(frozen=True)
class OptimizationLadder:
    """An ordered sequence of compounding optimization steps."""

    steps: tuple[OptimizationStep, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise UnitError("a ladder needs at least one step")

    @property
    def total_gain(self) -> float:
        gain = 1.0
        for step in self.steps:
            gain *= step.gain
        return gain

    def cumulative_gains(self) -> list[tuple[str, float]]:
        """(step name, cumulative gain after the step) pairs."""
        out = []
        gain = 1.0
        for step in self.steps:
            gain *= step.gain
            out.append((step.name, gain))
        return out

    def footprint_series(self, baseline: Power) -> list[tuple[str, Power]]:
        """Power footprint after each step, starting from the baseline.

        The returned series starts with ("baseline", baseline) and divides
        by each step's gain — the descending bars of Figure 7.
        """
        series = [("baseline", baseline)]
        for name, gain in self.cumulative_gains():
            series.append((name, baseline / gain))
        return series

    def energy_saved(self, baseline: Energy) -> Energy:
        """Energy avoided relative to serving at the baseline footprint."""
        return baseline * (1.0 - 1.0 / self.total_gain)


#: Figure 7's ladder for the LM task.
LM_LADDER = OptimizationLadder(
    steps=(
        OptimizationStep("platform-level caching", 6.7, "platform"),
        OptimizationStep("GPU acceleration", 10.1, "hardware"),
        OptimizationStep("low precision (fp16)", 2.4, "algorithm"),
        OptimizationStep("fused Transformer kernels", 5.0, "algorithm"),
    )
)

#: The paper's headline: the ladder exceeds 800x.
LM_LADDER_MINIMUM_GAIN = 800.0
