"""Optimization: ladders, Pareto tooling, early stopping, NAS/HPO costs."""

from repro.optimization.earlystop import (
    EarlyStopPolicy,
    EarlyStopResult,
    LearningCurveModel,
    run_early_stopping,
    sweep_tolerance,
)
from repro.optimization.ladder import (
    LM_LADDER,
    LM_LADDER_MINIMUM_GAIN,
    OptimizationLadder,
    OptimizationStep,
)
from repro.optimization.monas import (
    ArchitectureSpace,
    SearchResult,
    accuracy_only_search,
    carbon_aware_gain,
    nsga_lite,
)
from repro.optimization.nas import (
    GRID_SEARCH_OVERHEAD,
    SearchCost,
    SearchOutcome,
    bayesian_search,
    default_response_surface,
    grid_search_cost,
    random_search,
    sample_efficiency_gain,
    trials_to_reach,
)
from repro.optimization.pareto import (
    Candidate,
    hypervolume_2d,
    knee_point,
    pareto_front,
    pareto_mask,
    scalarize,
)

__all__ = [
    "ArchitectureSpace",
    "Candidate",
    "SearchResult",
    "accuracy_only_search",
    "carbon_aware_gain",
    "nsga_lite",
    "EarlyStopPolicy",
    "EarlyStopResult",
    "GRID_SEARCH_OVERHEAD",
    "LM_LADDER",
    "LM_LADDER_MINIMUM_GAIN",
    "LearningCurveModel",
    "OptimizationLadder",
    "OptimizationStep",
    "SearchCost",
    "SearchOutcome",
    "bayesian_search",
    "default_response_surface",
    "grid_search_cost",
    "hypervolume_2d",
    "knee_point",
    "pareto_front",
    "pareto_mask",
    "random_search",
    "run_early_stopping",
    "sample_efficiency_gain",
    "scalarize",
    "sweep_tolerance",
    "trials_to_reach",
]
