"""Multi-objective optimization tooling (Section IV-B).

"Multi-objective optimization explores the Pareto frontier of efficient
model quality and system resource trade-offs ... energy and carbon
footprint can be directly incorporated into the cost function."

Provides candidate records with arbitrary named objectives, Pareto-front
extraction, scalarization, hypervolume (2-D), and a knee-point selector —
the pieces an energy-aware model-selection workflow needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import UnitError


@dataclass(frozen=True)
class Candidate:
    """One design point: named objectives, all to be minimized.

    Maximization objectives (accuracy) should be negated or converted to
    error before constructing the candidate.
    """

    name: str
    objectives: dict[str, float]

    def vector(self, keys: tuple[str, ...]) -> np.ndarray:
        try:
            return np.array([self.objectives[k] for k in keys], dtype=float)
        except KeyError as exc:
            raise UnitError(f"candidate {self.name!r} lacks objective {exc}") from None


def objective_matrix(candidates: list[Candidate], keys: tuple[str, ...]) -> np.ndarray:
    """Stack candidates' objective vectors into an (n, k) matrix."""
    if not candidates:
        raise UnitError("need at least one candidate")
    return np.vstack([c.vector(keys) for c in candidates])


def pareto_mask(matrix: np.ndarray) -> np.ndarray:
    """Boolean mask of non-dominated rows (all columns minimized)."""
    pts = np.asarray(matrix, dtype=float)
    if pts.ndim != 2:
        raise UnitError("objective matrix must be 2-D")
    n = len(pts)
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        dominates_i = np.all(pts <= pts[i], axis=1) & np.any(pts < pts[i], axis=1)
        if np.any(dominates_i):
            mask[i] = False
    return mask


def pareto_front(
    candidates: list[Candidate], keys: tuple[str, ...]
) -> list[Candidate]:
    """Non-dominated candidates under the given minimized objectives."""
    mask = pareto_mask(objective_matrix(candidates, keys))
    return [c for c, keep in zip(candidates, mask) if keep]


def scalarize(
    candidates: list[Candidate], weights: dict[str, float]
) -> Candidate:
    """Best candidate under a weighted sum of normalized objectives.

    Each objective is min-max normalized across candidates before
    weighting, so weights express relative priorities, not units.
    """
    if not weights:
        raise UnitError("need at least one weight")
    keys = tuple(weights)
    matrix = objective_matrix(candidates, keys)
    lo = matrix.min(axis=0)
    hi = matrix.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    normalized = (matrix - lo) / span
    w = np.array([weights[k] for k in keys], dtype=float)
    if np.any(w < 0):
        raise UnitError("weights must be non-negative")
    scores = normalized @ w
    return candidates[int(np.argmin(scores))]


def hypervolume_2d(front: np.ndarray, reference: tuple[float, float]) -> float:
    """Hypervolume of a 2-D front against a reference (both minimized).

    Standard sweep: sort by the first objective and accumulate rectangles
    up to the reference point.  Points beyond the reference contribute
    nothing.
    """
    pts = np.asarray(front, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise UnitError("front must be (n, 2)")
    ref = np.asarray(reference, dtype=float)
    pts = pts[np.all(pts <= ref, axis=1)]
    if len(pts) == 0:
        return 0.0
    pts = pts[np.argsort(pts[:, 0])]
    volume = 0.0
    prev_y = ref[1]
    for x, y in pts:
        if y < prev_y:
            volume += (ref[0] - x) * (prev_y - y)
            prev_y = y
    return float(volume)


def knee_point(candidates: list[Candidate], keys: tuple[str, ...]) -> Candidate:
    """The front candidate closest (normalized L2) to the ideal point.

    A standard automatic pick when no explicit weights are given — the
    "judicious balance" selection.
    """
    front = pareto_front(candidates, keys)
    matrix = objective_matrix(front, keys)
    lo = matrix.min(axis=0)
    hi = matrix.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    normalized = (matrix - lo) / span
    distances = np.linalg.norm(normalized, axis=1)
    return front[int(np.argmin(distances))]
