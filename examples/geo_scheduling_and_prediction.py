"""Geo-distributed scheduling + predictive tracking working together.

First, a carbontracker-style prediction from five measured epochs decides
whether a run fits the carbon budget and when to start it; then the
deferrable training batch is placed across three regions with
complementary renewable profiles.

Run with::

    python examples/geo_scheduling_and_prediction.py
"""

import numpy as np

from repro.carbon.grid import synthesize_grid_trace
from repro.core.quantities import Carbon, Energy
from repro.scheduling.carbon_aware import schedule_carbon_aware
from repro.scheduling.geo import default_regions, schedule_geo
from repro.scheduling.jobs import synthesize_jobs
from repro.telemetry.predict import (
    EpochMeasurement,
    abort_recommendation,
    predict_training_cost,
    recommend_start_hour,
)


def main() -> None:
    # --- predictive tracking -------------------------------------------
    rng = np.random.default_rng(0)
    measured = [
        EpochMeasurement(i, Energy(2.0 + 0.04 * i + rng.normal(0, 0.03)), 1800.0)
        for i in range(5)
    ]
    prediction = predict_training_cost(measured, planned_epochs=60)
    print("After 5 measured epochs:")
    print(f"  predicted energy: {prediction.predicted_energy} "
          f"[{prediction.predicted_energy_low.kwh:.0f}"
          f"..{prediction.predicted_energy_high.kwh:.0f} kWh]")
    print(f"  predicted carbon: {prediction.predicted_carbon}")

    budget = Carbon(100.0)
    verdict = abort_recommendation(prediction, budget)
    print(f"  fits {budget} budget? {'no' if verdict['over_budget'] else 'yes'}")

    grid = synthesize_grid_trace(168, seed=2)
    start, now_carbon, best_carbon = recommend_start_hour(prediction, grid)
    print(f"  start now: {now_carbon}; start at hour {start}: {best_carbon} "
          f"({1 - best_carbon.kg / now_carbon.kg:.0%} cleaner)")

    # --- geo placement ---------------------------------------------------
    horizon = 168
    regions = default_regions(horizon, seed=0)
    jobs = synthesize_jobs(40, horizon, seed=0)
    home = regions[0]

    single = schedule_carbon_aware(jobs, home.grid, horizon, home.capacity_kw)
    geo = schedule_geo(jobs, regions, horizon)

    print("\nPlacing the weekly training batch:")
    print(f"  single-region (time shifting only): {single.total_carbon}")
    print(f"  geo + time shifting:                {geo.total_carbon} "
          f"({1 - geo.total_carbon.kg / single.total_carbon.kg:.0%} lower)")
    for region in regions:
        print(f"    {region.name:<12} carries {geo.region_share(region.name):.0%} "
              "of the energy")


if __name__ == "__main__":
    main()
