"""A sustainability-program view: scopes, capacity planning, leaderboards.

The "sustainability mindset" of Section IV as a workflow: inventory the
company's emissions by GHG scope, project the embodied-carbon pressure of
AI capacity growth, evaluate the MoE architecture trade, and rank model
candidates under a carbon budget.

Run with::

    python examples/sustainability_program.py
"""

from repro.carbon.scopes import ai_embodied_growth, hyperscaler_inventory
from repro.core.metrics import Leaderboard, RankingPolicy, Submission
from repro.core.quantities import Carbon, Energy
from repro.core.report import format_table
from repro.fleet.capacity_planning import consolidation_study, plan_capacity
from repro.models.moe import SWITCH_LIKE, compare_vs_quality_matched_dense


def main() -> None:
    inventory = hyperscaler_inventory()
    print("GHG inventory (market-based accounting):")
    print(f"  scope 1:                 {inventory.scope1}")
    print(f"  scope 2 (location):      {inventory.scope2_location}")
    print(f"  scope 2 (market):        {inventory.scope2_market}")
    print(f"  scope 3 (value chain):   {inventory.scope3_total}")
    print(f"  scope-3 share:           {inventory.scope3_share(market_based=True):.0%}"
          "  <- the paper's 'more than 50%'")

    grown = ai_embodied_growth(inventory, ai_capital_share=0.5, capacity_growth_factor=2.9)
    print(f"\nCapital goods after 2.9x AI capacity growth: {grown} "
          f"({grown.kg / inventory.capital_goods().kg:.2f}x)")

    plan = plan_capacity(initial_servers=10_000, horizon_years=3)
    rows = [
        [int(y), int(s), f"{p:.1f}", f"{plan.embodied_in_year(i).tonnes:,.0f}"]
        for i, (y, s, p) in enumerate(
            zip(plan.years, plan.servers_total, plan.it_power_mw)
        )
    ]
    print("\nAI training fleet buildout (2.9x capacity growth per 1.5 yr):")
    print(format_table(["year", "servers", "IT MW", "embodied added (t)"], rows))

    consolidation = consolidation_study()
    print(f"\nEfficiency of scale: the same throughput on accelerators needs "
          f"{consolidation.server_reduction:.0%} fewer servers "
          f"({consolidation.embodied_saving:.0%} less embodied carbon).")

    moe = compare_vs_quality_matched_dense(SWITCH_LIKE)
    print(f"\nSparse (MoE) vs quality-matched dense model:")
    print(f"  operational saving: {moe.operational_saving:.0%}")
    print(f"  embodied cost:      {moe.embodied_ratio:.1f}x "
          "<- the paper's embodied warning")

    board = Leaderboard(
        (
            Submission("mega-dense", 0.920, Energy.from_mwh(1200.0), Carbon.from_tonnes(515.0)),
            Submission("sparse-moe", 0.918, Energy.from_mwh(180.0), Carbon.from_tonnes(77.0)),
            Submission("distilled", 0.905, Energy.from_mwh(25.0), Carbon.from_tonnes(10.7)),
        )
    )
    print("\nModel selection under a 100 tCO2e carbon budget:")
    for policy, kwargs in (
        (RankingPolicy.QUALITY_ONLY, {}),
        (RankingPolicy.QUALITY_AT_BUDGET, {"carbon_budget": Carbon.from_tonnes(100.0)}),
    ):
        winner = board.winner(policy, **kwargs)
        print(f"  {policy.value:<18} -> {winner.name} "
              f"(quality {winner.quality:.3f}, {winner.carbon})")


if __name__ == "__main__":
    main()
