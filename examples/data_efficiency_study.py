"""Data-efficiency study: SVP sampling and data perishability (Section IV-A).

Trains three real recommenders (ItemPop, ItemKNN, BiasMF) on a synthetic
interaction world, shows that a 10% selection-via-proxy sample preserves
their relative ranking at a multi-x speedup, then measures how data loses
predictive value with age and derives an age-based retention schedule.

Run with::

    python examples/data_efficiency_study.py     # takes ~1 minute
"""

import numpy as np

from repro.core.report import format_table
from repro.dataeff import (
    LatentFactorWorld,
    fit_half_life,
    measure_value_decay,
    run_panel,
    sampling_study,
)


def main() -> None:
    world = LatentFactorWorld(n_users=1500, n_items=500, seed=1)
    data = world.sample(100_000, seed_offset=0)

    full = run_panel(data)
    print("Full-data algorithm ranking (NDCG@10):")
    for name, score in sorted(full.scores().items(), key=lambda kv: -kv[1]):
        print(f"  {name:<8} {score:.3f}")

    rows = []
    for row in sampling_study(data, rates=(0.1,), sampler_names=("random", "svp")):
        rows.append(
            [row.sampler, f"{row.rate:.0%}", f"{row.tau:.2f}",
             f"{row.speedup:.1f}x", row.ranking_preserved]
        )
    print("\n10% sub-sampling (paper: SVP preserves ranking at ~5.8x speedup):")
    print(format_table(["sampler", "rate", "tau", "speedup", "preserved"], rows))

    print("\nData perishability (drifting preferences):")
    ages, values = measure_value_decay()
    model = fit_half_life(ages, values)
    for age, value in zip(ages, values):
        print(f"  age {age:>3.1f} yr: relative predictive value {value:.2f}")
    print(f"  fitted half-life: {model.half_life_years:.2f} years")

    buckets = np.array([0.0, 1.0, 2.0, 4.0])
    schedule = model.retention_schedule(buckets, budget_fraction=0.5)
    print("\nAge-based retention at a 50% storage budget:")
    for age, rate in zip(buckets, schedule):
        print(f"  keep {rate:.0%} of data aged {age:g} years")
    print(f"  storage saving: {model.storage_saving(buckets, 0.5):.0%}")


if __name__ == "__main__":
    main()
