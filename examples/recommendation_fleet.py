"""Recommendation-model fleet study: the paper's RM storyline end-to-end.

1. Build a production-shaped DLRM and inspect where its bytes live.
2. Apply the paper's partial-fp16 quantization and measure size/bandwidth.
3. Compare TT-Rec / DHE memory-compression architectures.
4. Account the full pipeline (data -> training -> inference) and see the
   Figure-3b energy split.

Run with::

    python examples/recommendation_fleet.py
"""

from repro.core.report import format_table
from repro.experiments.fig03 import rm1_pipeline
from repro.models.compression import dhe, embodied_operational_tradeoff, tt_rec
from repro.models.dlrm import make_dlrm
from repro.models.quantization import RM2_SCHEME, apply_quantization


def main() -> None:
    model = make_dlrm("RM2")
    print(f"Model: {model.name}")
    print(f"  parameters:        {model.n_params / 1e9:.2f} B")
    print(f"  size:              {model.size_bytes / 1e9:.1f} GB")
    print(f"  embedding share:   {model.embedding_size_share:.2%} of bytes")
    print(f"  bytes/sample read: {model.embedding_bytes_per_sample / 1e3:.1f} KB")

    impact = apply_quantization(model, RM2_SCHEME)
    print("\nPartial fp16 quantization (hot 30% of embedding rows):")
    print(f"  size reduction:      {impact.size_reduction:.1%}  (paper: 15%)")
    print(f"  bandwidth reduction: {impact.bandwidth_reduction:.1%}  (paper: 20.7%)")

    table = model.tables[0]
    rows = []
    for result in (tt_rec(table), dhe(table)):
        tradeoff = embodied_operational_tradeoff(result)
        rows.append(
            [
                result.technique,
                f"{result.memory_reduction:,.0f}x",
                f"{result.training_time_factor:.2f}x",
                f"{tradeoff['extra_compute_kwh_per_run']:.1f}",
            ]
        )
    print("\nMemory-efficient embedding architectures (per table):")
    print(
        format_table(
            ["technique", "memory reduction", "training time", "extra kWh/run"], rows
        )
    )

    pipeline = rm1_pipeline()
    split = pipeline.energy_split()
    print("\nEnd-to-end annual energy split (paper Figure 3b: 31:29:40):")
    for stage, share in split.items():
        print(f"  {stage:<26} {share:.1%}")


if __name__ == "__main__":
    main()
