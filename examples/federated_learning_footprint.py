"""Federated-learning footprint analysis (Figure 11 + Appendix B).

Generates 90-day synthetic participation logs for two production-shaped
FL applications, applies the paper's energy methodology (3 W device,
7.5 W router), and compares against training Transformer_Big centrally —
including the embodied carbon of the client-device fleet and the
communication-compression lever.

Run with::

    python examples/federated_learning_footprint.py
"""

from repro.core.report import format_bar_chart
from repro.edge import (
    DevicePopulation,
    FL1,
    FL2,
    analyze_app,
    communication_optimization_gain,
    figure11_bars,
)


def main() -> None:
    bars = figure11_bars(days=90, seed=0)
    print("Figure 11 — carbon of FL apps vs centralized Transformer_Big:")
    print(
        format_bar_chart(
            [b.label for b in bars], [b.carbon.kg for b in bars], width=40
        )
    )

    for app in (FL1, FL2):
        fp = analyze_app(app, days=90, seed=0)
        print(f"\n{fp.app_name}: {fp.carbon} over {fp.days} days")
        print(f"  participations:       {fp.n_participations:,}")
        print(f"  compute energy:       {fp.compute_energy}")
        print(f"  communication energy: {fp.communication_energy} "
              f"({fp.communication_share:.0%} of total)")
        saved = communication_optimization_gain(fp, compression_ratio=4.0)
        print(f"  4x update compression would save {saved}")

    population = DevicePopulation(n_devices=50_000, speed_sigma=0.5)
    fp1 = analyze_app(FL1, days=90, seed=0)
    from repro.edge.logs import generate_logs

    logs = generate_logs(FL1, days=90, seed=0)
    embodied = population.fl_embodied_carbon(logs.total_compute_s)
    print(f"\nClient-fleet embodied carbon attributed to FL-1 compute: {embodied}")
    slowdown = population.straggler_slowdown(cohort_size=128, seed=0)
    print(f"Straggler round-time inflation at cohort size 128: {slowdown:.2f}x")


if __name__ == "__main__":
    main()
