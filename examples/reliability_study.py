"""Reliability and hardware-lifetime study (Appendix B).

Walks the reliability toolchain: optimal checkpointing, CPR-style
partial recovery, the carbon-optimal replacement age under wear-out, and
a live demonstration of silent data corruption destroying (and
algorithmic fault tolerance rescuing) a real recommender's accuracy.

Run with::

    python examples/reliability_study.py     # takes ~1 minute
"""

import numpy as np

from repro.core.report import format_table
from repro.dataeff.synthetic import LatentFactorWorld
from repro.reliability import (
    CheckpointPolicy,
    WearoutModel,
    carbon_optimal_lifetime,
    partial_recovery_benefit,
    sdc_study,
    simulate_training_run,
    young_daly_interval,
)


def main() -> None:
    # --- checkpointing ----------------------------------------------------
    mtbf = 48.0
    interval = young_daly_interval(mtbf, checkpoint_cost_hours=0.05)
    print(f"Young-Daly optimal checkpoint interval at {mtbf:.0f} h MTBF: "
          f"{interval:.2f} h")

    rows = []
    for label, factor in (("half-optimal", 0.5), ("optimal", 1.0), ("4x optimal", 4.0)):
        outcome = simulate_training_run(
            work_hours=500.0,
            mtbf_hours=mtbf,
            policy=CheckpointPolicy(interval * factor),
            seed=0,
        )
        rows.append([label, f"{outcome.overhead_fraction:.2%}", outcome.n_failures])
    print(format_table(["interval", "overhead", "failures"], rows))

    recovery = partial_recovery_benefit(seed=1)
    print(f"\nCPR-style partial recovery cuts failure overhead "
          f"{recovery['full_overhead']:.1%} -> {recovery['partial_overhead']:.1%}")

    # --- carbon-optimal lifetime -------------------------------------------
    best, lifetimes, annualized = carbon_optimal_lifetime(WearoutModel())
    print(f"\nCarbon-optimal server replacement age: {best:.1f} years")
    hardened, _, _ = carbon_optimal_lifetime(WearoutModel(), detection_coverage=0.9)
    print(f"With 90% algorithmic SDC coverage it extends to: {hardened:.1f} years")

    # --- live SDC injection --------------------------------------------------
    print("\nInjecting SDC into BiasMF training (synthetic interactions):")
    world = LatentFactorWorld(n_users=500, n_items=300, seed=2)
    data = world.sample(20_000, seed_offset=0)
    rows = []
    for result in sdc_study(data, fault_rates=(0.0, 2.0), seed=0):
        rows.append(
            [result.label, f"{result.ndcg:.3f}", result.cells_corrupted,
             result.rows_repaired]
        )
    print(format_table(["run", "NDCG@10", "cells corrupted", "rows repaired"], rows))


if __name__ == "__main__":
    main()
