"""Telemetry walkthrough: track a run, write reports, emit a model card.

The tracker polls simulated RAPL/NVML counters exactly as a real
CodeCarbon-style tracker polls hardware, integrates energy, converts to
carbon at the configured grid intensity, and feeds the carbon impact
statement / model card the paper calls for (Section V-A).

Run with::

    python examples/telemetry_and_model_card.py
"""

import tempfile
from pathlib import Path

from repro.carbon.intensity import US_AVERAGE
from repro.core.analyzer import FootprintAnalyzer, PhaseWorkload, TaskDescription
from repro.core.footprint import Phase
from repro.telemetry import (
    EmissionsTracker,
    HardwareDisclosure,
    ModelCard,
    SimulatedHost,
    aggregate,
    carbon_impact_statement,
    write_csv,
    write_json,
)


def main() -> None:
    # An 8-GPU training host; utilization varies over the "run".
    host = SimulatedHost(gpus=tuple([SimulatedHost().gpus[0]] * 8))
    tracker = EmissionsTracker(host, intensity=US_AVERAGE)

    with tracker:
        for phase_util in (0.2, 0.8, 0.9, 0.6):  # warmup, train, train, eval
            host.set_utilization(gpu=phase_util)
            for _ in range(30):
                host.advance(60.0)  # one minute per poll
                tracker.poll()

    report = tracker.report("xlmr-finetune")
    print("Tracked run:")
    for key, value in report.as_dict().items():
        print(f"  {key}: {value}")

    with tempfile.TemporaryDirectory() as tmp:
        json_path = write_json([report], Path(tmp) / "emissions.json")
        csv_path = write_csv([report], Path(tmp) / "emissions.csv")
        print(f"\nWrote {json_path.name} and {csv_path.name}")
        print("Aggregate:", aggregate([report]))

    disclosure = HardwareDisclosure(
        platform="NVIDIA V100",
        n_devices=8,
        total_runtime_hours=report.duration_s / 3600.0,
        region="us-average",
    )
    print()
    print(carbon_impact_statement(disclosure, report))

    # A full model card, with the holistic footprint attached.
    task = TaskDescription(
        name="xlmr-finetune",
        workloads=(PhaseWorkload(Phase.OFFLINE_TRAINING, device_hours=8 * 2.0),),
    )
    footprint = FootprintAnalyzer().analyze(task)
    card = ModelCard(
        model_name="xlmr-finetune",
        intended_use="Cross-lingual text classification.",
        training_data="Synthetic multilingual corpus (demo).",
        metrics={"accuracy": 0.871},
        footprint=footprint,
        disclosure=disclosure,
    )
    print()
    print(card.render())


if __name__ == "__main__":
    main()
