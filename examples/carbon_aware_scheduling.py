"""Carbon-aware scheduling scenario (Section IV-C).

Synthesizes a renewable-heavy grid week and a batch of deferrable
training jobs, then compares: immediate scheduling, carbon-aware
shifting, battery arbitrage, and the over-provisioning trade-off — and
scores annual matching vs 24/7 CFE.

Run with::

    python examples/carbon_aware_scheduling.py
"""

import numpy as np

from repro.carbon.grid import GridMixParams, synthesize_grid_trace
from repro.core.report import format_table
from repro.scheduling import (
    Battery,
    annual_matching_score,
    best_factor,
    carbon_saving,
    cfe_score,
    provisioning_sweep,
    run_arbitrage,
    schedule_carbon_aware,
    schedule_immediate,
    solar_procurement,
    synthesize_jobs,
)


def main() -> None:
    horizon = 168  # one week, hourly
    grid = synthesize_grid_trace(
        horizon,
        GridMixParams(solar_capacity_fraction=0.45, wind_capacity_fraction=0.25),
        seed=1,
    )
    jobs = synthesize_jobs(50, horizon, slack_factor=4.0, seed=1)
    capacity_kw = 2500.0

    baseline = schedule_immediate(jobs, grid, horizon, capacity_kw)
    aware = schedule_carbon_aware(jobs, grid, horizon, capacity_kw)
    print("Workload shifting:")
    print(f"  immediate:    {baseline.total_carbon}")
    print(f"  carbon-aware: {aware.total_carbon}  "
          f"(saving {carbon_saving(baseline, aware):.1%})")

    load = baseline.power_profile_kw
    storage = run_arbitrage(load, grid, Battery(4000.0, 1000.0))
    print(f"\nBattery arbitrage on the immediate schedule: "
          f"{storage.carbon_saving_fraction:.1%} carbon saving")

    procured = solar_procurement(load, grid, match_fraction=1.0)
    print("\nProcurement accounting for the same load:")
    print(f"  annual matching score: {annual_matching_score(load, procured):.0%}")
    print(f"  24/7 CFE score:        {cfe_score(load, procured):.0%}")

    factors = np.array([1.0, 1.25, 1.5, 2.0, 3.0])
    sweep = provisioning_sweep(jobs, grid, horizon, 900.0, factors)
    rows = [
        [p.factor, p.operational.kg, p.embodied_extra.kg, p.net.kg, p.deadline_misses]
        for p in sweep
    ]
    print("\nOver-provisioning trade-off (capacity factor vs net carbon):")
    print(
        format_table(
            ["factor", "operational kg", "extra embodied kg", "net kg", "misses"],
            rows,
        )
    )
    print(f"  best factor: {best_factor(sweep).factor:g}")


if __name__ == "__main__":
    main()
