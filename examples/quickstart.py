"""Quickstart: account for an ML task's operational + embodied carbon.

Run with::

    python examples/quickstart.py
"""

from repro import FootprintAnalyzer, Phase, PhaseWorkload, TaskDescription
from repro.carbon.intensity import AccountingMethod
from repro.core.equivalences import describe
from repro.core.report import footprint_report


def main() -> None:
    # Describe your ML task by the device-hours each life-cycle phase
    # consumed (numbers here: a mid-size production ranking model).
    task = TaskDescription(
        name="my-ranking-model",
        workloads=(
            PhaseWorkload(Phase.EXPERIMENTATION, device_hours=20_000, utilization=0.40),
            PhaseWorkload(Phase.OFFLINE_TRAINING, device_hours=80_000, utilization=0.60),
            PhaseWorkload(Phase.ONLINE_TRAINING, device_hours=40_000, utilization=0.60),
            PhaseWorkload(Phase.INFERENCE, device_hours=350_000, utilization=0.55),
        ),
    )

    # The default analyzer models the paper's fleet: V100 servers, PUE
    # 1.10, US-average location-based intensity, Mac-Pro-anchored embodied
    # carbon amortized over a 4-year life at 45% utilization.
    analyzer = FootprintAnalyzer()
    footprint = analyzer.analyze(task)

    print("=== Location-based accounting ===")
    print(footprint_report([footprint]))

    # Market-based accounting with 100% renewable matching zeroes the
    # operational part — embodied carbon is what remains.
    market = analyzer.with_accounting(AccountingMethod.MARKET_BASED)
    green = market.analyze(task)
    print("\n=== Market-based accounting (100% renewable matching) ===")
    print(green.describe())
    print(describe(green.carbon))


if __name__ == "__main__":
    main()
