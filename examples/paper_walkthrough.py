"""Whole-paper walkthrough: every figure's headline in one run.

Runs all twelve figure experiments (plus the in-text claims) and prints
a one-line digest per result — the fastest way to see the reproduction
end-to-end.  For full tables use ``sustainable-ai run all``.

Run with::

    python examples/paper_walkthrough.py     # takes ~1 minute
"""

from repro.experiments.registry import run_experiment

FIGURES = [f"fig{i}" for i in range(1, 13)]
TEXT_CLAIMS = ["text-gpudays", "text-quant", "text-sampling", "text-halflife"]

DIGEST = {
    "fig1": ("categories_overtaken_by_ml", "disciplines ML overtakes"),
    "fig2": ("bleu_at_1000x_model_size", "BLEU at 1000x model size (paper: 40)"),
    "fig3": ("rm1_data_share", "RM1 data-phase energy share (paper: 0.31)"),
    "fig4": ("fb_avg_vs_meena", "fleet avg training vs Meena (paper: 1.8x)"),
    "fig5": ("embodied_over_operational", "embodied/operational (paper: ~0.5)"),
    "fig6": ("average_half_gain", "optimization per half-year (paper: ~0.20)"),
    "fig7": ("total_gain", "LM ladder total (paper: >800x)"),
    "fig8": ("net_two_year_reduction", "net 2-yr power reduction (paper: 0.285)"),
    "fig9": ("reduction_30_to_80_util", "30->80% utilization gain (paper: ~3x)"),
    "fig10": ("fraction_in_30_50_band", "workflows at 30-50% GPU util"),
    "fig11": ("fl_vs_p100_ratio", "FL vs centralized Transformer_Big"),
    "fig12": ("star_energy_ratio", "green/yellow star energy (paper: 4x)"),
    "text-gpudays": ("production_p99", "production training p99 GPU-days (paper: 125)"),
    "text-quant": ("rm2_size_reduction", "RM2 fp16 size cut (paper: 0.15)"),
    "text-sampling": ("svp_tau_at_10pct", "SVP ranking tau at 10% data (paper: 1.0)"),
    "text-halflife": ("fitted_half_life_years", "fitted data half-life (years)"),
}


def main() -> None:
    print(f"{'experiment':<14} {'measured':>12}  description")
    print("-" * 72)
    for exp_id in FIGURES + TEXT_CLAIMS:
        result = run_experiment(exp_id)
        key, label = DIGEST[exp_id]
        value = result.headline[key]
        print(f"{exp_id:<14} {value:>12,.4g}  {label}")
    print("-" * 72)
    print("Full tables: `sustainable-ai run all`; extensions: `ext-*` ids.")


if __name__ == "__main__":
    main()
